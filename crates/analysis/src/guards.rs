//! Pass 2: guard satisfiability (`SA1xx`).
//!
//! Abstractly interprets every conditional-jump guard over the
//! [`crate::interval`] domain. A guard whose outcome is fixed makes the
//! check vacuous (`SA101`) — the runtime walk would accept either label
//! anyway — and any *trained* edge on the impossible side, or a switch
//! case outside the scrutinee's range, can only have entered the spec
//! through corruption or a bad merge (`SA102`).
//!
//! Guards whose outcome is synchronized from the device (`needs_sync`)
//! read externally tainted data the domain cannot bound; they are
//! skipped.

use sedspec::escfg::{gid, EdgeKey, Nbtd};
use sedspec::spec::ExecutionSpecification;
use sedspec_dbl::ir::{BufId, LocalId, VarId, Width};
use sedspec_devices::Device;

use crate::diag::Diagnostic;
use crate::interval::{eval, Iv, VarBounds};

/// Variable bounds from the device's control-structure declaration plus
/// the handler's declared local widths. Shared with the fixpoint engine,
/// which layers flow-sensitive ranges on top of these declared ceilings.
pub(crate) struct DeclBounds<'a> {
    pub(crate) device: Option<&'a Device>,
    pub(crate) locals: &'a [Width],
}

impl VarBounds for DeclBounds<'_> {
    fn var_range(&self, v: VarId) -> Iv {
        match self.device {
            Some(d) if (v.0 as usize) < d.control.vars().len() => {
                let decl = d.control.var_decl(v);
                Iv { lo: 0, hi: decl.width.mask(), signed_taint: decl.signed }
            }
            _ => Iv::TOP,
        }
    }

    fn buf_len(&self, b: BufId) -> Option<u64> {
        let d = self.device?;
        ((b.0 as usize) < d.control.buffers().len()).then(|| d.control.buf_decl(b).len as u64)
    }

    fn local_width(&self, l: LocalId) -> Option<Width> {
        self.locals.get(l.0 as usize).copied()
    }
}

pub fn run(spec: &ExecutionSpecification, device: Option<&Device>, out: &mut Vec<Diagnostic>) {
    for cfg in &spec.cfgs {
        let env = DeclBounds { device, locals: &cfg.locals };
        for (es, blk) in cfg.blocks.iter().enumerate() {
            let es = es as u32;
            match &blk.nbtd {
                Nbtd::Branch { cond, needs_sync: false } => {
                    let iv = eval(cond, &env);
                    let (fixed, dead_key) = if iv.always_true() {
                        (Some("true"), EdgeKey::NotTaken)
                    } else if iv.always_false() {
                        (Some("false"), EdgeKey::Taken)
                    } else {
                        (None, EdgeKey::Next)
                    };
                    let Some(outcome) = fixed else { continue };
                    out.push(
                        Diagnostic::new(
                            "SA101",
                            format!(
                                "guard of '{}' is always {outcome}; the branch check is vacuous",
                                blk.label
                            ),
                        )
                        .in_program(cfg.program, &cfg.name)
                        .at_gid(gid(cfg.program, es)),
                    );
                    if let Some(e) = cfg.edge(es, dead_key) {
                        out.push(
                            Diagnostic::new(
                                "SA102",
                                format!(
                                    "trained {dead_key:?} edge -> {} contradicts the always-\
                                     {outcome} guard of '{}'",
                                    e.to, blk.label
                                ),
                            )
                            .in_program(cfg.program, &cfg.name)
                            .at_gid(gid(cfg.program, es)),
                        );
                    }
                }
                Nbtd::Switch { scrutinee, needs_sync: false, .. } => {
                    let iv = eval(scrutinee, &env);
                    if iv == Iv::TOP || iv.signed_taint {
                        continue;
                    }
                    let Some(list) = cfg.edges.get(&es) else { continue };
                    for e in list {
                        if let EdgeKey::Case(v) = e.key {
                            if !iv.contains(v) {
                                out.push(
                                    Diagnostic::new(
                                        "SA102",
                                        format!(
                                            "trained case {v:#x} lies outside the scrutinee \
                                             range [{:#x}, {:#x}] of '{}'",
                                            iv.lo, iv.hi, blk.label
                                        ),
                                    )
                                    .in_program(cfg.program, &cfg.name)
                                    .at_gid(gid(cfg.program, es)),
                                );
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }
}
