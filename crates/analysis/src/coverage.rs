//! Pass 3: command-coverage audit (`SA2xx`).
//!
//! Cross-checks the trained [`CommandAccessTable`] against the device's
//! *static* command set — the arms of each command-decision block's
//! switch in the handler IR. Three families of findings:
//!
//! * `SA201`: a command the device decodes was never trained. In
//!   enhancement mode the checker synchronizes-and-continues on unknown
//!   commands, so every untrained command is an enforcement blind spot.
//! * `SA202`/`SA204`: the table names a command the decision cannot
//!   decode, or anchors on invalid block ids — table corruption.
//! * `SA203`: a *reset-class* command (one that bulk-reinitializes
//!   device state with constant stores) leaves stale some parameter
//!   that gates another command's control flow and that commands do
//!   write. This is the shape of CVE-2016-1568: the ESP RESET handler
//!   forgets `pending_op`/`xfer_count`, so a later TI acts on the
//!   previous command's pending transfer.

use std::collections::{BTreeMap, BTreeSet};

use sedspec::escfg::{gid, ungid, DsodOp, EdgeKey, Nbtd};
use sedspec::spec::ExecutionSpecification;
use sedspec_dbl::ir::{Expr, Stmt, Terminator, VarId};
use sedspec_devices::Device;
use serde::{Deserialize, Serialize};

use crate::diag::Diagnostic;

/// How many distinct selected parameters a command must constant-store
/// to classify as reset-class for the `SA203` staleness check.
const RESET_CLASS_MIN_CONST_WRITES: usize = 5;

/// Per-decision command coverage, reported alongside the diagnostics.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecisionCoverage {
    /// Handler program index of the decision block.
    pub program: usize,
    /// Handler name.
    pub handler: String,
    /// Decision block label.
    pub label: String,
    /// Global id of the decision block.
    pub gid: u64,
    /// Commands the device statically decodes at this decision.
    pub static_cmds: usize,
    /// Commands the table trained at this decision.
    pub trained_cmds: usize,
    /// Static command values never trained, ascending.
    pub untrained: Vec<u64>,
}

pub fn run(
    spec: &ExecutionSpecification,
    device: Option<&Device>,
    out: &mut Vec<Diagnostic>,
) -> Vec<DecisionCoverage> {
    let mut coverage = Vec::new();
    check_table_anchors(spec, out);
    if let Some(device) = device {
        coverage = audit_static_sets(spec, device, out);
    }
    let name_fn = device.map(|d| {
        move |v: VarId| -> String {
            if (v.0 as usize) < d.control.vars().len() {
                d.control.var_decl(v).name.clone()
            } else {
                format!("v{}", v.0)
            }
        }
    });
    match &name_fn {
        Some(f) => check_stale_reset_state(spec, Some(f), out),
        None => check_stale_reset_state(spec, None, out),
    }
    coverage
}

/// `SA204`: every id the table stores must resolve inside the spec.
fn check_table_anchors(spec: &ExecutionSpecification, out: &mut Vec<Diagnostic>) {
    let valid = |g: u64| {
        let (p, es) = ungid(g);
        spec.cfgs.get(p).is_some_and(|c| (es as usize) < c.blocks.len())
    };
    for entry in &spec.cmd_table.entries {
        if !valid(entry.decision) {
            out.push(Diagnostic::new(
                "SA204",
                format!(
                    "entry for cmd {:#x} anchors on decision gid {:#x}, which no block has",
                    entry.cmd, entry.decision
                ),
            ));
            continue;
        }
        let (p, es) = ungid(entry.decision);
        let blk = &spec.cfgs[p].blocks[es as usize];
        let is_decision = matches!(blk.nbtd, Nbtd::Switch { is_cmd_decision: true, .. });
        if !is_decision {
            out.push(
                Diagnostic::new(
                    "SA204",
                    format!(
                        "entry for cmd {:#x} anchors on '{}', which is not a command-decision \
                         block",
                        entry.cmd, blk.label
                    ),
                )
                .in_program(p, &spec.cfgs[p].name)
                .at_gid(entry.decision),
            );
        }
        for &g in &entry.allowed {
            if !valid(g) {
                out.push(
                    Diagnostic::new(
                        "SA204",
                        format!(
                            "allowed set of cmd {:#x} references gid {:#x}, which no block has",
                            entry.cmd, g
                        ),
                    )
                    .at_gid(entry.decision),
                );
            }
        }
    }
}

/// `SA201`/`SA202`: trained table vs the device's static switch arms.
fn audit_static_sets(
    spec: &ExecutionSpecification,
    device: &Device,
    out: &mut Vec<Diagnostic>,
) -> Vec<DecisionCoverage> {
    let mut coverage = Vec::new();
    for cfg in &spec.cfgs {
        let Some(prog) = device.programs().get(cfg.program) else { continue };
        for (es, blk) in cfg.blocks.iter().enumerate() {
            if !matches!(blk.nbtd, Nbtd::Switch { is_cmd_decision: true, .. }) {
                continue;
            }
            let g = gid(cfg.program, es as u32);
            let Some(pblk) = prog.blocks.get(blk.origin as usize) else { continue };
            let Terminator::Switch { arms, .. } = &pblk.term else { continue };
            let static_set: BTreeSet<u64> = arms.iter().map(|&(v, _)| v).collect();
            let trained: BTreeSet<u64> =
                spec.cmd_table.entries.iter().filter(|e| e.decision == g).map(|e| e.cmd).collect();
            let untrained: Vec<u64> = static_set.difference(&trained).copied().collect();
            for &v in &untrained {
                out.push(
                    Diagnostic::new(
                        "SA201",
                        format!(
                            "command {v:#x} decoded at '{}' was never trained; in enhancement \
                             mode it executes unchecked",
                            blk.label
                        ),
                    )
                    .in_program(cfg.program, &cfg.name)
                    .at_gid(g),
                );
            }
            for &v in trained.difference(&static_set) {
                // Non-arm commands can legitimately enter the table via
                // the switch's default arm; the observed Case edge is
                // the witness. A table entry with neither an arm nor an
                // observed decode is a phantom.
                if cfg.edge(es as u32, EdgeKey::Case(v)).is_some() {
                    continue;
                }
                out.push(
                    Diagnostic::new(
                        "SA202",
                        format!(
                            "table holds cmd {v:#x} at '{}', but the decision has no such arm \
                             and never decoded it",
                            blk.label
                        ),
                    )
                    .in_program(cfg.program, &cfg.name)
                    .at_gid(g),
                );
            }
            coverage.push(DecisionCoverage {
                program: cfg.program,
                handler: cfg.name.clone(),
                label: blk.label.clone(),
                gid: g,
                static_cmds: static_set.len(),
                trained_cmds: trained.intersection(&static_set).count(),
                untrained,
            });
        }
    }
    coverage
}

/// What one command's allowed blocks do to the selected parameters.
#[derive(Default)]
struct CmdEffects {
    /// Selected vars written (any right-hand side, or synced).
    writes: BTreeSet<VarId>,
    /// Selected vars written with a constant (reinitialized).
    const_writes: BTreeSet<VarId>,
    /// Selected vars its guards read.
    gates: BTreeSet<VarId>,
}

fn effects_of(spec: &ExecutionSpecification, allowed: &BTreeSet<u64>) -> CmdEffects {
    let mut fx = CmdEffects::default();
    for &g in allowed {
        let (p, es) = ungid(g);
        let Some(blk) = spec.cfgs.get(p).and_then(|c| c.blocks.get(es as usize)) else {
            continue;
        };
        for op in &blk.dsod {
            match op {
                DsodOp::Exec(Stmt::SetVar(v, rhs)) if spec.params.contains_var(*v) => {
                    fx.writes.insert(*v);
                    if matches!(rhs, Expr::Const(_)) {
                        fx.const_writes.insert(*v);
                    }
                }
                DsodOp::SyncVar(v) if spec.params.contains_var(*v) => {
                    fx.writes.insert(*v);
                }
                _ => {}
            }
        }
        let guard_vars = match &blk.nbtd {
            Nbtd::Branch { cond, .. } => cond.vars(),
            Nbtd::Switch { scrutinee, .. } => scrutinee.vars(),
            _ => Vec::new(),
        };
        for v in guard_vars {
            if spec.params.contains_var(v) {
                fx.gates.insert(v);
            }
        }
    }
    fx
}

fn block_writes(blk: &sedspec::escfg::EsBlock, x: VarId) -> bool {
    blk.dsod.iter().any(|op| match op {
        DsodOp::Exec(Stmt::SetVar(v, _)) | DsodOp::SyncVar(v) => *v == x,
        _ => false,
    })
}

fn block_gates(blk: &sedspec::escfg::EsBlock, x: VarId) -> bool {
    let vars = match &blk.nbtd {
        Nbtd::Branch { cond, .. } => cond.vars(),
        Nbtd::Switch { scrutinee, .. } => scrutinee.vars(),
        _ => return false,
    };
    vars.contains(&x)
}

/// Whether command `entry` can *read* `x` in a guard before any of its
/// own blocks wrote it — i.e. whether the value left behind by previous
/// commands actually matters to it.
///
/// Walks each program's slice of the allowed set from its scope entry
/// points (the decision's `Case(cmd)` target, plus any allowed block no
/// allowed block reaches), stopping at blocks that write `x`: within a
/// block, DSOD executes before the NBTD guard, so a writing block
/// shields both its own guard and everything behind it.
fn reads_stale(
    spec: &ExecutionSpecification,
    entry: &sedspec::escfg::CommandEntry,
    x: VarId,
) -> bool {
    let mut by_prog: BTreeMap<usize, BTreeSet<u32>> = BTreeMap::new();
    for &g in &entry.allowed {
        let (p, es) = ungid(g);
        if spec.cfgs.get(p).is_some_and(|c| (es as usize) < c.blocks.len()) {
            by_prog.entry(p).or_default().insert(es);
        }
    }
    let (dp, des) = ungid(entry.decision);
    for (&p, blocks) in &by_prog {
        let cfg = &spec.cfgs[p];
        let mut starts: Vec<u32> = Vec::new();
        if p == dp {
            if let Some(e) = cfg.edge(des, EdgeKey::Case(entry.cmd)) {
                starts.push(e.to);
            }
        }
        let mut has_pred: BTreeSet<u32> = BTreeSet::new();
        for &b in blocks {
            if let Some(list) = cfg.edges.get(&b) {
                for e in list {
                    if blocks.contains(&e.to) {
                        has_pred.insert(e.to);
                    }
                }
            }
        }
        starts.extend(blocks.iter().copied().filter(|b| !has_pred.contains(b)));
        let mut seen: BTreeSet<u32> = BTreeSet::new();
        let mut stack = starts;
        while let Some(b) = stack.pop() {
            if !blocks.contains(&b) || !seen.insert(b) {
                continue;
            }
            let blk = &cfg.blocks[b as usize];
            let writes = block_writes(blk, x);
            if block_gates(blk, x) && !writes {
                return true;
            }
            if writes {
                continue; // x is fresh past this block
            }
            if let Some(list) = cfg.edges.get(&b) {
                for e in list {
                    stack.push(e.to);
                }
            }
        }
    }
    false
}

/// `SA203`: reset-class commands that leave gating state stale.
fn check_stale_reset_state(
    spec: &ExecutionSpecification,
    var_name: Option<&dyn Fn(VarId) -> String>,
    out: &mut Vec<Diagnostic>,
) {
    let effects: Vec<CmdEffects> =
        spec.cmd_table.entries.iter().map(|e| effects_of(spec, &e.allowed)).collect();
    // A parameter is cross-command state if more than one command (or a
    // command other than the reset candidate) writes it.
    let mut writers: BTreeMap<VarId, Vec<usize>> = BTreeMap::new();
    for (i, fx) in effects.iter().enumerate() {
        for &v in &fx.writes {
            writers.entry(v).or_default().push(i);
        }
    }
    for (r, entry) in spec.cmd_table.entries.iter().enumerate() {
        if effects[r].const_writes.len() < RESET_CLASS_MIN_CONST_WRITES {
            continue;
        }
        // Every selected param gating a sibling command but neither
        // reinitialized by the reset nor written only by the reset.
        let mut stale: BTreeMap<VarId, Vec<u64>> = BTreeMap::new();
        for (c, peer) in spec.cmd_table.entries.iter().enumerate() {
            if c == r || peer.decision != entry.decision {
                continue;
            }
            for &x in &effects[c].gates {
                if effects[r].writes.contains(&x) {
                    continue; // the reset does reinitialize it
                }
                let written_elsewhere =
                    writers.get(&x).is_some_and(|ws| ws.iter().any(|&w| w != r));
                if written_elsewhere && reads_stale(spec, peer, x) {
                    stale.entry(x).or_default().push(peer.cmd);
                }
            }
        }
        for (x, gated) in stale {
            let (p, _) = ungid(entry.decision);
            let handler = spec.cfgs.get(p).map_or("?", |cfg| cfg.name.as_str());
            let name = var_name.map_or_else(|| format!("v{}", x.0), |f| f(x));
            let cmds: Vec<String> = gated.iter().map(|c| format!("{c:#x}")).collect();
            out.push(
                Diagnostic::new(
                    "SA203",
                    format!(
                        "reset-class cmd {:#x} reinitializes {} params but not '{name}', \
                         which gates cmd {} and is written by other commands; stale state \
                         survives the reset",
                        entry.cmd,
                        effects[r].const_writes.len(),
                        cmds.join("/")
                    ),
                )
                .in_program(p, handler)
                .at_gid(entry.decision),
            );
        }
    }
}
