//! Pass 4: shadow-write soundness (`SA3xx`).
//!
//! The checker re-executes DSOD ops against a shadow copy of the control
//! structure and undoes them through a [`CsJournal`] on rollback. That
//! machinery assumes every op's references are declared fields and that
//! writes stay inside the arena. This pass proves the *definite*
//! violations statically: an op naming an undeclared var/buffer
//! (`SA302`), a write whose least possible offset already escapes the
//! arena (`SA301`), and a constant in-arena write that lands past its
//! buffer's declared extent, aliasing the adjacent field (`SA303` —
//! legal C-layout spill, but it makes the journal undo granularity
//! field-crossing, so it is worth a warning). Anything merely *possible*
//! is left to the runtime parameter check, which is the component that
//! sees real values.
//!
//! [`CsJournal`]: sedspec_dbl::state::CsJournal

use sedspec::escfg::{gid, DsodOp};
use sedspec::spec::ExecutionSpecification;
use sedspec_dbl::ir::{BufId, Expr, LocalId, Stmt, VarId, Width};
use sedspec_devices::Device;

use crate::diag::Diagnostic;
use crate::interval::{eval, Iv, VarBounds};

struct ArenaBounds<'a> {
    device: &'a Device,
    locals: &'a [Width],
}

impl VarBounds for ArenaBounds<'_> {
    fn var_range(&self, v: VarId) -> Iv {
        if (v.0 as usize) < self.device.control.vars().len() {
            let decl = self.device.control.var_decl(v);
            Iv { lo: 0, hi: decl.width.mask(), signed_taint: decl.signed }
        } else {
            Iv::TOP
        }
    }
    fn buf_len(&self, b: BufId) -> Option<u64> {
        ((b.0 as usize) < self.device.control.buffers().len())
            .then(|| self.device.control.buf_decl(b).len as u64)
    }
    fn local_width(&self, l: LocalId) -> Option<Width> {
        self.locals.get(l.0 as usize).copied()
    }
}

pub fn run(spec: &ExecutionSpecification, device: Option<&Device>, out: &mut Vec<Diagnostic>) {
    let Some(device) = device else { return };
    let control = &device.control;
    let n_vars = control.vars().len() as u32;
    let n_bufs = control.buffers().len() as u32;
    let arena = control.arena_size() as u64;

    for cfg in &spec.cfgs {
        let env = ArenaBounds { device, locals: &cfg.locals };
        for (es, blk) in cfg.blocks.iter().enumerate() {
            let g = gid(cfg.program, es as u32);
            let mut diag = |code: &str, msg: String| {
                out.push(Diagnostic::new(code, msg).in_program(cfg.program, &cfg.name).at_gid(g));
            };
            for op in &blk.dsod {
                match op {
                    DsodOp::Exec(stmt) => {
                        check_stmt(stmt, control, n_vars, n_bufs, arena, &env, &mut diag);
                    }
                    DsodOp::SyncVar(v) => {
                        if v.0 >= n_vars {
                            diag("SA302", format!("sync of undeclared var v{}", v.0));
                        }
                    }
                    DsodOp::SyncBuf { buf, off, len } | DsodOp::CheckBufRead { buf, off, len } => {
                        check_buf_range(
                            *buf,
                            off,
                            Some(len),
                            control,
                            n_bufs,
                            arena,
                            &env,
                            &mut diag,
                        );
                    }
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn check_stmt(
    stmt: &Stmt,
    control: &sedspec_dbl::state::ControlStructure,
    n_vars: u32,
    n_bufs: u32,
    arena: u64,
    env: &dyn VarBounds,
    diag: &mut impl FnMut(&str, String),
) {
    match stmt {
        Stmt::SetVar(v, _) if v.0 >= n_vars => {
            diag("SA302", format!("write to undeclared var v{}", v.0));
        }
        Stmt::BufStore(b, idx, _) => {
            check_buf_range(*b, idx, None, control, n_bufs, arena, env, diag);
        }
        Stmt::BufFill(b, _) if b.0 >= n_bufs => {
            diag("SA302", format!("fill of undeclared buffer b{}", b.0));
        }
        Stmt::CopyPayload { buf, buf_off, len } => {
            check_buf_range(*buf, buf_off, Some(len), control, n_bufs, arena, env, diag);
        }
        _ => {}
    }
}

/// Checks a buffer access at `off` (optionally spanning `len` bytes).
///
/// * Undeclared buffer → `SA302`.
/// * Even the *smallest* possible offset escapes the arena → `SA301`
///   (the access faults on every execution).
/// * A constant offset that stays in the arena but starts past the
///   buffer's declared extent → `SA303`: it deterministically writes the
///   adjacent field.
#[allow(clippy::too_many_arguments)]
fn check_buf_range(
    b: BufId,
    off: &Expr,
    len: Option<&Expr>,
    control: &sedspec_dbl::state::ControlStructure,
    n_bufs: u32,
    arena: u64,
    env: &dyn VarBounds,
    diag: &mut impl FnMut(&str, String),
) {
    if b.0 >= n_bufs {
        diag("SA302", format!("access to undeclared buffer b{}", b.0));
        return;
    }
    let decl_len = control.buf_decl(b).len as u64;
    let base = control.buf_offset(b) as u64;
    let remaining = arena - base; // bytes from buffer start to arena end
    let off_iv = eval(off, env);
    if off_iv.signed_taint {
        return;
    }
    // Least bytes the access certainly touches past `off`.
    let min_extra = len.map_or(0, |l| eval(l, env).lo.saturating_sub(1));
    let min_end = off_iv.lo.saturating_add(min_extra);
    if off_iv.lo >= remaining || min_end >= remaining {
        diag(
            "SA301",
            format!(
                "access to '{}' at offset >= {} always escapes the {arena}-byte arena \
                 ({} bytes remain past the buffer start)",
                control.buf_decl(b).name,
                off_iv.lo,
                remaining
            ),
        );
        return;
    }
    if let Some(c) = off_iv.singleton() {
        if c >= decl_len {
            let victim = control
                .field_at((base + c) as usize)
                .map_or_else(|| "?".to_string(), |(name, _)| name.to_string());
            diag(
                "SA303",
                format!(
                    "constant offset {c} past '{}' (len {decl_len}) deterministically \
                     spills into field '{victim}'",
                    control.buf_decl(b).name
                ),
            );
        }
    }
}
