//! Pass 5: compile-preservation diff (`SA401`).
//!
//! [`CompiledSpec::compile`] lowers the interpreted [`EsCfg`]s into the
//! dense zero-allocation tables the hot path walks. This pass checks the
//! lowering preserved structure in *both* directions: every interpreted
//! edge resolves to the same target through the compiled tables, and the
//! compiled tables answer `None`/empty exactly where the interpreted
//! spec has nothing — so the enforced behaviour after `deploy_compiled`
//! is the behaviour that was trained.
//!
//! [`EsCfg`]: sedspec::escfg::EsCfg

use std::collections::BTreeSet;

use sedspec::compiled::CompiledSpec;
use sedspec::escfg::{gid, ungid, EdgeKey};
use sedspec::spec::ExecutionSpecification;

use crate::diag::Diagnostic;

pub fn run(spec: &ExecutionSpecification, compiled: &CompiledSpec, out: &mut Vec<Diagnostic>) {
    if compiled.program_count() != spec.cfgs.len() {
        out.push(Diagnostic::new(
            "SA401",
            format!(
                "compiled spec has {} programs, interpreted has {}",
                compiled.program_count(),
                spec.cfgs.len()
            ),
        ));
        return;
    }
    for cfg in &spec.cfgs {
        let p = cfg.program;
        let diverge = |es: u32, msg: String| {
            Diagnostic::new("SA401", msg).in_program(p, &cfg.name).at_gid(gid(p, es))
        };
        if compiled.entry_of(p) != cfg.entry {
            out.push(
                Diagnostic::new(
                    "SA401",
                    format!("entry {:?} compiled to {:?}", cfg.entry, compiled.entry_of(p)),
                )
                .in_program(p, &cfg.name),
            );
        }
        for (&from, list) in &cfg.edges {
            for e in list {
                let got = compiled.edge_target(p, from, e.key);
                if got != Some(e.to) {
                    out.push(diverge(
                        from,
                        format!("edge {:?} -> {} compiled to {:?}", e.key, e.to, got),
                    ));
                }
            }
        }
        for es in 0..cfg.blocks.len() as u32 {
            // Dense outcomes must answer None where nothing was trained.
            for key in [EdgeKey::Next, EdgeKey::Taken, EdgeKey::NotTaken] {
                if cfg.edge(es, key).is_none() {
                    if let Some(got) = compiled.edge_target(p, es, key) {
                        out.push(diverge(es, format!("phantom compiled {key:?} edge -> {got}")));
                    }
                }
            }
            let trained_cases = cfg
                .edges
                .get(&es)
                .map_or(0, |l| l.iter().filter(|e| matches!(e.key, EdgeKey::Case(_))).count());
            if compiled.case_count(p, es) != trained_cases {
                out.push(diverge(
                    es,
                    format!(
                        "{} compiled cases for {trained_cases} trained",
                        compiled.case_count(p, es)
                    ),
                ));
            }
            let flags = compiled.op_flags_of(p, es).len();
            if flags != cfg.blocks[es as usize].dsod.len() {
                out.push(diverge(
                    es,
                    format!(
                        "{flags} compiled op flags for {} DSOD ops",
                        cfg.blocks[es as usize].dsod.len()
                    ),
                ));
            }
        }
        // Pass-through resolution must agree on every program origin.
        for &origin in cfg.forward.keys() {
            if compiled.resolve_of(p, origin) != cfg.resolve(origin) {
                out.push(
                    Diagnostic::new(
                        "SA401",
                        format!(
                            "origin {origin} resolves to {:?} interpreted, {:?} compiled",
                            cfg.resolve(origin),
                            compiled.resolve_of(p, origin)
                        ),
                    )
                    .in_program(p, &cfg.name),
                );
            }
        }
        // The compiled fn table must carry exactly the statically
        // legitimate values, each with the trained target (or none).
        let compiled_fns = compiled.fn_entries(p);
        let compiled_vals: BTreeSet<u64> = compiled_fns.iter().map(|&(v, _)| v).collect();
        if compiled_vals != cfg.legit_fn_values {
            out.push(
                Diagnostic::new(
                    "SA401",
                    format!(
                        "compiled fn values {compiled_vals:?} != legitimate {:?}",
                        cfg.legit_fn_values
                    ),
                )
                .in_program(p, &cfg.name),
            );
        }
        for (v, to) in compiled_fns {
            let trained = cfg.fn_targets.get(&v).copied();
            if to != trained {
                out.push(
                    Diagnostic::new(
                        "SA401",
                        format!("fn value {v:#x} targets {trained:?} interpreted, {to:?} compiled"),
                    )
                    .in_program(p, &cfg.name),
                );
            }
        }
    }
    check_cmd_table(spec, compiled, out);
}

/// The compiled command keys/bitmaps against the interpreted table.
fn check_cmd_table(
    spec: &ExecutionSpecification,
    compiled: &CompiledSpec,
    out: &mut Vec<Diagnostic>,
) {
    let interp: Vec<(u64, u64)> =
        spec.cmd_table.entries.iter().map(|e| (e.decision, e.cmd)).collect();
    if compiled.cmd_keys() != interp.as_slice() {
        out.push(Diagnostic::new(
            "SA401",
            format!(
                "compiled command keys ({}) differ from the interpreted table ({})",
                compiled.cmd_keys().len(),
                interp.len()
            ),
        ));
        return;
    }
    for (i, entry) in spec.cmd_table.entries.iter().enumerate() {
        let mut missing = 0usize;
        for &g in &entry.allowed {
            let (p, es) = ungid(g);
            if p < compiled.program_count() && !compiled.cmd_mask_allows(i, p, es) {
                missing += 1;
            }
        }
        if missing > 0 || compiled.cmd_mask_popcount(i) as usize != entry.allowed.len() {
            out.push(
                Diagnostic::new(
                    "SA401",
                    format!(
                        "cmd {:#x} bitmap has {} bits for {} allowed blocks ({missing} \
                         trained ids unset)",
                        entry.cmd,
                        compiled.cmd_mask_popcount(i),
                        entry.allowed.len()
                    ),
                )
                .at_gid(entry.decision),
            );
        }
    }
}
