//! Static spec verifier and lint framework (`sedspec-analysis`).
//!
//! The training pipeline produces an [`ExecutionSpecification`] by
//! observation; nothing in that path proves the artifact is internally
//! consistent, let alone that it still matches the device build it will
//! police. This crate closes that gap with a fixed pass pipeline that
//! vets every ES-CFG *before* it can be deployed:
//!
//! 1. **structure** — reachability and referential integrity (`SA0xx`);
//! 2. **guards** — interval-domain satisfiability of conditional-jump
//!    guards (`SA1xx`);
//! 3. **coverage** — the trained command table against the device's
//!    static command set, including reset-staleness (`SA2xx`);
//! 4. **shadow** — DSOD writes against the declared control-structure
//!    arena (`SA3xx`);
//! 5. **preserve** — structural equivalence of
//!    [`CompiledSpec::compile`]'s output with the interpreted spec
//!    (`SA401`).
//!
//! [`analyze_deep`] appends the flow-sensitive passes on top: a
//! widening/narrowing worklist fixpoint over the ES-CFG
//! ([`fixpoint`]) feeding the `SA5xx` dataflow lints (dead shadow
//! writes, use-before-init locals, invariant-infeasible edges,
//! guest-pinnable loops, trained-range escapes).
//!
//! The [`diff`] module compares two spec *revisions* instead of one
//! spec against its device: every semantic difference becomes a typed
//! `SA6xx` delta with a loosening/tightening direction, which the fleet
//! registry uses to gate publishes.
//!
//! Every finding is a typed [`Diagnostic`] with a stable code and
//! reports are deterministically ordered, so the fleet registry can
//! gate publishes on error findings and CI can byte-diff runs against
//! an allowlist.
//!
//! # Examples
//!
//! ```
//! use sedspec::pipeline::{train, TrainingConfig};
//! use sedspec_analysis::{analyze_deep, diff::diff, AnalysisContext};
//! use sedspec_devices::{build_device, DeviceKind, QemuVersion};
//! use sedspec_vmm::{AddressSpace, IoRequest, VmContext};
//!
//! let mut device = build_device(DeviceKind::Fdc, QemuVersion::Patched);
//! let mut ctx = VmContext::new(0x10000, 64);
//! let samples = vec![vec![IoRequest::read(AddressSpace::Pmio, 0x3f4, 1)]];
//! let spec = train(&mut device, &mut ctx, &samples, &TrainingConfig::default()).unwrap();
//!
//! // Deep analysis: the fixed pipeline plus the SA5xx dataflow passes.
//! let report = analyze_deep(&spec, &AnalysisContext::for_device(&device));
//! assert!(!report.has_errors(), "{}", report.render_human());
//!
//! // Revision diff: a spec against itself is semantically empty.
//! assert!(diff(&spec, &spec).is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
pub mod diff;
pub mod fixpoint;
pub mod interval;

mod coverage;
mod dataflow;
mod guards;
mod preserve;
mod shadow;
mod structure;

use sedspec::compiled::CompiledSpec;
use sedspec::spec::ExecutionSpecification;
use sedspec_devices::{Device, DeviceKind, QemuVersion};
use serde::{Deserialize, Serialize};

pub use coverage::DecisionCoverage;
pub use diag::{Diagnostic, Severity};

/// What the analyzer may compare the spec against.
///
/// Every field is optional: with neither a device nor a compiled form,
/// only the spec-intrinsic passes (structure, guards without declared
/// widths, table anchors, reset staleness) run.
#[derive(Default, Clone, Copy)]
pub struct AnalysisContext<'a> {
    /// The device build the spec is intended to police. Enables the
    /// command-coverage audit, declared-width guard bounds, the
    /// shadow-write pass, and the device/version cross-check.
    pub device: Option<&'a Device>,
    /// The compiled form to diff against the interpreted spec.
    pub compiled: Option<&'a CompiledSpec>,
}

impl<'a> AnalysisContext<'a> {
    /// Context with a target device only.
    pub fn for_device(device: &'a Device) -> Self {
        AnalysisContext { device: Some(device), compiled: None }
    }

    /// Context with a target device and a compiled form.
    pub fn full(device: &'a Device, compiled: &'a CompiledSpec) -> Self {
        AnalysisContext { device: Some(device), compiled: Some(compiled) }
    }
}

/// The analyzer's output: findings plus per-decision coverage.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnalysisReport {
    /// Device the analyzed spec targets.
    pub device: String,
    /// Version string the analyzed spec targets.
    pub version: String,
    /// All findings, ordered by pass then location.
    pub diagnostics: Vec<Diagnostic>,
    /// Command coverage per decision block (needs a device context).
    pub coverage: Vec<DecisionCoverage>,
}

impl AnalysisReport {
    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.is_error()).count()
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Warning).count()
    }

    /// Whether any finding is error severity (the deploy-gate signal).
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(Diagnostic::is_error)
    }

    /// Findings carrying `code`.
    pub fn with_code(&self, code: &str) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.code == code).collect()
    }

    /// Multi-line human rendering: one line per finding plus a summary.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render());
            out.push('\n');
        }
        for c in &self.coverage {
            out.push_str(&format!(
                "coverage {}/'{}': {}/{} commands trained{}\n",
                c.handler,
                c.label,
                c.trained_cmds,
                c.static_cmds,
                if c.untrained.is_empty() {
                    String::new()
                } else {
                    format!(
                        " (untrained: {})",
                        c.untrained
                            .iter()
                            .map(|v| format!("{v:#x}"))
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                }
            ));
        }
        out.push_str(&format!(
            "{}/{}: {} error(s), {} warning(s)\n",
            self.device,
            self.version,
            self.error_count(),
            self.warning_count()
        ));
        out
    }

    /// JSON rendering (stable field names; suitable for CI diffing).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }
}

/// Parses the spec's own device/version strings back to a buildable
/// target, so callers can construct the matching [`Device`] without
/// out-of-band knowledge.
pub fn device_for_spec(spec: &ExecutionSpecification) -> Option<(DeviceKind, QemuVersion)> {
    let kind = DeviceKind::all().into_iter().find(|k| k.name() == spec.device)?;
    let version = QemuVersion::all().into_iter().find(|v| v.to_string() == spec.version)?;
    Some((kind, version))
}

/// Runs the full pass pipeline over `spec`.
pub fn analyze(spec: &ExecutionSpecification, ctx: &AnalysisContext<'_>) -> AnalysisReport {
    let mut diagnostics = Vec::new();
    if let Some(device) = ctx.device {
        if spec.device != device.name || spec.version != device.version.to_string() {
            diagnostics.push(Diagnostic::new(
                "SA008",
                format!(
                    "spec targets {}/{} but the deployment device is {}/{}",
                    spec.device, spec.version, device.name, device.version
                ),
            ));
        }
    }
    structure::run(spec, &mut diagnostics);
    guards::run(spec, ctx.device, &mut diagnostics);
    let coverage = coverage::run(spec, ctx.device, &mut diagnostics);
    shadow::run(spec, ctx.device, &mut diagnostics);
    if let Some(compiled) = ctx.compiled {
        preserve::run(spec, compiled, &mut diagnostics);
    }
    sort_diagnostics(&mut diagnostics);
    AnalysisReport {
        device: spec.device.clone(),
        version: spec.version.clone(),
        diagnostics,
        coverage,
    }
}

/// Canonical report order: `(code, program, gid, handler, message)`.
/// Passes append in pipeline order; sorting here makes the rendered and
/// JSON reports byte-identical across runs regardless of pass-internal
/// iteration details.
fn sort_diagnostics(diagnostics: &mut [Diagnostic]) {
    diagnostics.sort_by(|a, b| {
        (&a.code, a.program, a.gid, &a.handler, &a.message)
            .cmp(&(&b.code, b.program, b.gid, &b.handler, &b.message))
    });
}

/// Runs the full pass pipeline plus the flow-sensitive deep passes
/// (`SA5xx`): interval fixpoint over every ES-CFG, then the dataflow
/// lints it feeds (dead shadow writes, use-before-init locals,
/// invariant-infeasible edges, guest-pinnable loops, trained-range
/// escapes).
///
/// Strictly more expensive than [`analyze`] — the fixpoint iterates
/// every handler to convergence — but still well under a millisecond
/// for the device corpus, so `lint-spec --deep` runs it in CI.
pub fn analyze_deep(spec: &ExecutionSpecification, ctx: &AnalysisContext<'_>) -> AnalysisReport {
    let mut report = analyze(spec, ctx);
    dataflow::run(spec, ctx.device, &mut report.diagnostics);
    sort_diagnostics(&mut report.diagnostics);
    report
}

/// Convenience: analyze with a freshly compiled form and, when the
/// spec's device/version strings parse, a freshly built device.
pub fn analyze_full(spec: &ExecutionSpecification) -> AnalysisReport {
    let compiled = CompiledSpec::compile(std::sync::Arc::new(spec.clone()));
    match device_for_spec(spec) {
        Some((kind, version)) => {
            let device = sedspec_devices::build_device(kind, version);
            analyze(spec, &AnalysisContext { device: Some(&device), compiled: Some(&compiled) })
        }
        None => analyze(spec, &AnalysisContext { device: None, compiled: Some(&compiled) }),
    }
}

/// [`analyze_full`]'s deep counterpart: compiles the spec, rebuilds the
/// device when the spec's identity strings parse, and runs
/// [`analyze_deep`].
pub fn analyze_deep_full(spec: &ExecutionSpecification) -> AnalysisReport {
    let compiled = CompiledSpec::compile(std::sync::Arc::new(spec.clone()));
    match device_for_spec(spec) {
        Some((kind, version)) => {
            let device = sedspec_devices::build_device(kind, version);
            analyze_deep(
                spec,
                &AnalysisContext { device: Some(&device), compiled: Some(&compiled) },
            )
        }
        None => analyze_deep(spec, &AnalysisContext { device: None, compiled: Some(&compiled) }),
    }
}
