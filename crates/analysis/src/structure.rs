//! Pass 1: reachability and structural integrity (`SA0xx`).
//!
//! Re-derives the invariants [`EsCfg::validate`] asserts, but as
//! diagnostics instead of a hard failure, and adds a reachability sweep:
//! a block no path from the entry reaches is dead weight the checker can
//! never walk to — usually a sign the spec was merged or hand-edited
//! badly.

use std::collections::BTreeSet;

use sedspec::escfg::{gid, EsCfg, Nbtd};
use sedspec::spec::ExecutionSpecification;

use crate::diag::Diagnostic;

pub fn run(spec: &ExecutionSpecification, out: &mut Vec<Diagnostic>) {
    for cfg in &spec.cfgs {
        check_references(cfg, out);
        check_reachability(cfg, out);
    }
}

fn check_references(cfg: &EsCfg, out: &mut Vec<Diagnostic>) {
    let n = cfg.blocks.len() as u32;
    let p = cfg.program;
    for (&from, list) in &cfg.edges {
        if from >= n {
            out.push(
                Diagnostic::new("SA002", format!("edge list keyed by unknown block {from}"))
                    .in_program(p, &cfg.name),
            );
            continue;
        }
        for e in list {
            if e.to >= n {
                out.push(
                    Diagnostic::new(
                        "SA002",
                        format!("edge {:?} -> {} dangles ({n} blocks)", e.key, e.to),
                    )
                    .in_program(p, &cfg.name)
                    .at_gid(gid(p, from)),
                );
            }
        }
        for w in list.windows(2) {
            if (w[0].key, w[0].to) >= (w[1].key, w[1].to) {
                out.push(
                    Diagnostic::new("SA005", "edge list is not sorted by (key, to)")
                        .in_program(p, &cfg.name)
                        .at_gid(gid(p, from)),
                );
            } else if w[0].key == w[1].key {
                out.push(
                    Diagnostic::new(
                        "SA004",
                        format!(
                            "duplicate {:?} edges disagree on the target ({} vs {})",
                            w[0].key, w[0].to, w[1].to
                        ),
                    )
                    .in_program(p, &cfg.name)
                    .at_gid(gid(p, from)),
                );
            }
        }
    }
    for (&value, &target) in &cfg.fn_targets {
        if target >= n {
            out.push(
                Diagnostic::new("SA002", format!("fn target {value:#x} -> block {target} dangles"))
                    .in_program(p, &cfg.name),
            );
        }
        if !cfg.legit_fn_values.is_empty() && !cfg.legit_fn_values.contains(&value) {
            out.push(
                Diagnostic::new(
                    "SA003",
                    format!(
                        "observed fn-pointer value {value:#x} is not in the handler's \
                         static function table"
                    ),
                )
                .in_program(p, &cfg.name),
            );
        }
    }
    if cfg.by_origin.len() != cfg.blocks.len() {
        out.push(
            Diagnostic::new(
                "SA007",
                format!("by_origin has {} entries for {} blocks", cfg.by_origin.len(), n),
            )
            .in_program(p, &cfg.name),
        );
    }
    for (&origin, &es) in &cfg.by_origin {
        if es >= n {
            out.push(
                Diagnostic::new("SA007", format!("by_origin[{origin}] = {es} is out of range"))
                    .in_program(p, &cfg.name),
            );
        } else if cfg.blocks[es as usize].origin != origin {
            out.push(
                Diagnostic::new(
                    "SA007",
                    format!(
                        "by_origin[{origin}] = {es}, but block {es} originates from {}",
                        cfg.blocks[es as usize].origin
                    ),
                )
                .in_program(p, &cfg.name)
                .at_gid(gid(p, es)),
            );
        }
    }
    if let Some(entry) = cfg.entry {
        if entry >= n {
            out.push(
                Diagnostic::new("SA002", format!("entry {entry} is out of range"))
                    .in_program(p, &cfg.name),
            );
        }
    }
}

fn check_reachability(cfg: &EsCfg, out: &mut Vec<Diagnostic>) {
    let n = cfg.blocks.len() as u32;
    let p = cfg.program;
    let Some(entry) = cfg.entry.filter(|&e| e < n) else {
        if !cfg.blocks.is_empty() {
            // Untraced handler: report once instead of flooding SA001
            // for every block.
            out.push(
                Diagnostic::new(
                    "SA006",
                    format!("entry never traced, {} blocks unanchored", cfg.blocks.len()),
                )
                .in_program(p, &cfg.name),
            );
        }
        return;
    };
    let mut seen: BTreeSet<u32> = BTreeSet::new();
    let mut stack = vec![entry];
    while let Some(b) = stack.pop() {
        if !seen.insert(b) {
            continue;
        }
        if let Some(list) = cfg.edges.get(&b) {
            for e in list {
                if e.to < n {
                    stack.push(e.to);
                }
            }
        }
        // An indirect call continues at the return-resolution block once
        // the callee returns; that successor is not an explicit edge.
        if let Nbtd::Indirect { ret_origin, .. } = &cfg.blocks[b as usize].nbtd {
            if let Some(ret) = cfg.resolve(*ret_origin) {
                stack.push(ret);
            }
        }
    }
    for es in 0..n {
        if !seen.contains(&es) {
            out.push(
                Diagnostic::new(
                    "SA001",
                    format!("block '{}' unreachable from entry", cfg.blocks[es as usize].label),
                )
                .in_program(p, &cfg.name)
                .at_gid(gid(p, es)),
            );
        }
    }
}
