//! The recovery report: what a chaos run proves, rendered
//! deterministically.
//!
//! Everything in the report is derived from plan-deterministic state —
//! injector fire counts, batch verdicts, restart counts, final fleet
//! telemetry. Wall-clock measurements (recovery latencies) are
//! returned alongside the report by the runner but deliberately kept
//! out of [`RecoveryReport::render`], so two runs of the same plan
//! produce byte-identical reports.

use sedspec_fleet::FaultKind;

/// How one tenant came through the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantOutcome {
    /// The tenant id.
    pub tenant: u64,
    /// Whether the scenario scripted this tenant as CVE-compromised.
    pub cve: bool,
    /// Batches that completed (including quarantine rejections, which
    /// are a completed answer, not a failure).
    pub batches_ok: u32,
    /// Extra submit+wait attempts the retry budget absorbed.
    pub retries: u32,
    /// Batches refused outright after the retry budget was spent.
    pub refused: u32,
    /// Rounds flagged anomalous, summed over completed batch reports
    /// (so the count survives worker restarts).
    pub flagged: u64,
    /// Final quarantine state.
    pub quarantined: bool,
    /// Final warn-only degraded state.
    pub degraded: bool,
    /// Whether the post-fault steady-state batch completed cleanly
    /// (or, for a quarantined tenant, was rejected as it must be).
    pub steady: bool,
}

/// The outcome of one chaos run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Seed of the plan that drove the run.
    pub seed: u64,
    /// Faults injected per kind, dense-indexed like [`FaultKind::ALL`].
    pub faults_injected: [u64; 6],
    /// Worker respawns per shard.
    pub worker_restarts: Vec<u32>,
    /// Per-tenant outcomes, in tenant-id order.
    pub tenants: Vec<TenantOutcome>,
    /// Alert-stream events drained over the run.
    pub alerts: usize,
}

impl RecoveryReport {
    /// Benign tenants the run falsely halted (quarantined without a
    /// scripted attack) — must be zero.
    pub fn benign_false_halts(&self) -> usize {
        self.tenants.iter().filter(|t| !t.cve && t.quarantined).count()
    }

    /// Whether every CVE-compromised tenant ended quarantined despite
    /// the injected faults.
    pub fn cve_contained(&self) -> bool {
        self.tenants.iter().filter(|t| t.cve).all(|t| t.quarantined)
    }

    /// Whether the pool converged to steady state: every tenant's
    /// final batch answered within the retry budget, with no refusals
    /// left over.
    pub fn converged(&self) -> bool {
        self.tenants.iter().all(|t| t.steady && t.refused == 0)
    }

    /// Total faults injected.
    pub fn total_faults(&self) -> u64 {
        self.faults_injected.iter().sum()
    }

    /// The run's verdict: containment and convergence all held.
    pub fn ok(&self) -> bool {
        self.benign_false_halts() == 0 && self.cve_contained() && self.converged()
    }

    /// Renders the report as deterministic plain text: same plan, same
    /// bytes.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "chaos recovery report (seed {})", self.seed);
        let _ = writeln!(out, "faults injected: {}", self.total_faults());
        for kind in FaultKind::ALL {
            let n = self.faults_injected[kind.index()];
            if n > 0 {
                let _ = writeln!(out, "  {kind}: {n}");
            }
        }
        let _ = writeln!(
            out,
            "worker restarts: {} ({})",
            self.worker_restarts.iter().sum::<u32>(),
            self.worker_restarts
                .iter()
                .enumerate()
                .map(|(s, n)| format!("shard{s}={n}"))
                .collect::<Vec<_>>()
                .join(" ")
        );
        let _ = writeln!(out, "alerts: {}", self.alerts);
        let _ = writeln!(out, "tenants:");
        for t in &self.tenants {
            let role = if t.cve { "cve" } else { "benign" };
            let state = if t.quarantined {
                "QUARANTINED"
            } else if t.degraded {
                "DEGRADED"
            } else {
                "healthy"
            };
            let _ = writeln!(
                out,
                "  tenant {:>3} [{role:>6}] {state:<11} batches={} retries={} refused={} \
                 flagged={} steady={}",
                t.tenant, t.batches_ok, t.retries, t.refused, t.flagged, t.steady
            );
        }
        let _ = writeln!(
            out,
            "benign false halts: {}  cve contained: {}  converged: {}",
            self.benign_false_halts(),
            self.cve_contained(),
            self.converged()
        );
        let _ = writeln!(out, "verdict: {}", if self.ok() { "OK" } else { "FAILED" });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(tenant: u64, cve: bool, quarantined: bool) -> TenantOutcome {
        TenantOutcome {
            tenant,
            cve,
            batches_ok: 6,
            retries: 0,
            refused: 0,
            flagged: u64::from(cve) * 3,
            quarantined,
            degraded: false,
            steady: true,
        }
    }

    #[test]
    fn verdict_demands_containment_and_convergence() {
        let mut report = RecoveryReport {
            seed: 7,
            faults_injected: [1, 0, 2, 0, 0, 1],
            worker_restarts: vec![1, 0],
            tenants: vec![outcome(0, false, false), outcome(3, true, true)],
            alerts: 4,
        };
        assert!(report.ok());
        report.tenants[1].quarantined = false;
        assert!(!report.cve_contained());
        assert!(!report.ok());
        report.tenants[1].quarantined = true;
        report.tenants[0].quarantined = true;
        assert_eq!(report.benign_false_halts(), 1);
        assert!(!report.ok());
    }

    #[test]
    fn render_is_pure_in_the_report() {
        let report = RecoveryReport {
            seed: 7,
            faults_injected: [0; 6],
            worker_restarts: vec![0],
            tenants: vec![outcome(0, false, false)],
            alerts: 0,
        };
        assert_eq!(report.render(), report.render());
        assert!(report.render().contains("verdict: OK"));
    }
}
