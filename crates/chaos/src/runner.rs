//! The chaos scenario: a multi-tenant fleet driven through faults.
//!
//! One run hosts a mix of benign and CVE-compromised tenants on a
//! sharded pool with the fault seam attached, drives them through
//! benign batches, a registry hot-swap, and scripted attacks, then
//! checks the pool converged: benign tenants unharmed, compromised
//! tenants quarantined, every batch answered within the retry budget.
//!
//! Determinism contract: batches are submitted and awaited one tenant
//! at a time, in tenant-id order, so every fault site's invocation
//! counters advance identically on every run of the same plan — the
//! [`RecoveryReport`] renders byte-identical. Wall-clock recovery
//! latencies are measured but returned separately, outside the
//! deterministic report.

use std::sync::Arc;
use std::time::Instant;

use sedspec::pipeline::{train_script, TrainingConfig};
use sedspec_devices::{build_device, DeviceKind, QemuVersion};
use sedspec_fleet::{EnforcementPool, RecoveryConfig, SpecRegistry, TenantConfig, TenantId};
use sedspec_obs::ObsHub;
use sedspec_vmm::VmContext;
use sedspec_workloads::attacks::{poc, Cve};
use sedspec_workloads::generators::training_suite;

use crate::inject::FaultInjector;
use crate::plan::FaultPlan;
use crate::report::{RecoveryReport, TenantOutcome};

/// Shape of the chaos scenario (the fault schedule itself lives in the
/// [`FaultPlan`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Tenants hosted; every fourth (`id % 4 == 3`) is scripted as
    /// CVE-compromised (Venom against the 2.3.0 FDC).
    pub tenants: u64,
    /// Worker shards.
    pub shards: usize,
    /// Benign/attack rounds driven before the steady-state check. The
    /// last two rounds carry the attacks.
    pub batches: usize,
    /// Training-suite cases behind the published specs; the hot-swap
    /// republishes with two extra cases (a superset, so in-flight
    /// traffic stays legal under either revision).
    pub cases: usize,
    /// Seed of the benign traffic suite.
    pub suite_seed: u64,
    /// Round before which both channels are republished (the hot-swap
    /// the registry faults race against); `None` disables.
    pub hotswap_at: Option<usize>,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            tenants: 6,
            shards: 3,
            batches: 6,
            cases: 6,
            suite_seed: 11,
            hotswap_at: Some(2),
        }
    }
}

impl ChaosConfig {
    /// Whether the scenario scripts `tenant` as CVE-compromised.
    pub fn is_cve(&self, tenant: u64) -> bool {
        tenant % 4 == 3
    }
}

fn publish_channel(registry: &SpecRegistry, version: QemuVersion, cases: usize, seed: u64) {
    let kind = DeviceKind::Fdc;
    let mut device = build_device(kind, version);
    let mut ctx = VmContext::new(0x100000, 4096);
    let suite = training_suite(kind, cases, seed);
    let spec = train_script(&mut device, &mut ctx, &suite, &TrainingConfig::default())
        .expect("benign suite trains");
    registry.publish(kind, version, spec).expect("benign spec passes the publish gate");
}

/// Runs the scenario under `plan`. Returns the deterministic recovery
/// report plus the wall-clock recovery latencies (microseconds spent
/// on batches that needed at least one retry) — kept separate so the
/// report stays byte-identical per plan.
pub fn run_chaos(plan: &FaultPlan, cfg: &ChaosConfig) -> (RecoveryReport, Vec<u64>) {
    let registry = Arc::new(SpecRegistry::new());
    publish_channel(&registry, QemuVersion::Patched, cfg.cases, cfg.suite_seed);
    publish_channel(&registry, QemuVersion::V2_3_0, cfg.cases, cfg.suite_seed);

    let injector = Arc::new(FaultInjector::new(plan.clone()));
    let hub = Arc::new(ObsHub::new());
    let mut pool = EnforcementPool::with_obs(cfg.shards, Arc::clone(&registry), &hub)
        .with_recovery(RecoveryConfig {
            max_restarts_per_shard: 4,
            backoff_base_ms: 1,
            backoff_cap_ms: 16,
            batch_timeout_ms: Some(2000),
            submit_retries: 2,
            max_pending_per_shard: 1024,
        })
        .with_faults(Arc::clone(&injector) as Arc<dyn sedspec_fleet::FaultPoint>);

    for t in 0..cfg.tenants {
        let version = if cfg.is_cve(t) { QemuVersion::V2_3_0 } else { QemuVersion::Patched };
        let tenant = TenantConfig::new(t).with_devices(vec![(DeviceKind::Fdc, version)]);
        // A transient injected registry failure can fail an admission;
        // a few attempts ride it out (the site counters advance
        // deterministically either way).
        let mut admitted = false;
        for _ in 0..3 {
            if pool.add_tenant(tenant.clone()).is_ok() {
                admitted = true;
                break;
            }
        }
        assert!(admitted, "tenant {t} must admit within three attempts");
    }

    let suite = training_suite(DeviceKind::Fdc, cfg.cases, cfg.suite_seed);
    let venom = poc(Cve::Cve2015_3456);
    let mut outcomes: Vec<TenantOutcome> = (0..cfg.tenants)
        .map(|t| TenantOutcome {
            tenant: t,
            cve: cfg.is_cve(t),
            batches_ok: 0,
            retries: 0,
            refused: 0,
            flagged: 0,
            quarantined: false,
            degraded: false,
            steady: false,
        })
        .collect();
    let mut latencies_us: Vec<u64> = Vec::new();

    for round in 0..cfg.batches {
        if cfg.hotswap_at == Some(round) {
            publish_channel(&registry, QemuVersion::Patched, cfg.cases + 2, cfg.suite_seed);
            publish_channel(&registry, QemuVersion::V2_3_0, cfg.cases + 2, cfg.suite_seed);
        }
        for t in 0..cfg.tenants {
            let attack = cfg.is_cve(t) && round + 2 >= cfg.batches;
            let steps = if attack {
                venom.steps.clone()
            } else {
                suite[(t as usize + round) % suite.len()].clone()
            };
            let started = Instant::now();
            let result = pool.run_batch_reliable(TenantId(t), &steps);
            let outcome = &mut outcomes[t as usize];
            match result {
                Ok((report, attempts)) => {
                    outcome.batches_ok += 1;
                    outcome.retries += attempts;
                    outcome.flagged += report.flagged;
                    if attempts > 0 {
                        latencies_us.push(started.elapsed().as_micros() as u64);
                    }
                }
                Err(_) => outcome.refused += 1,
            }
        }
    }

    // Steady-state round: after the faults, every tenant must still be
    // answered — benign tenants cleanly, quarantined tenants with the
    // rejection quarantine demands.
    for t in 0..cfg.tenants {
        let steps = suite[t as usize % suite.len()].clone();
        match pool.run_batch_reliable(TenantId(t), &steps) {
            Ok((report, attempts)) => {
                let outcome = &mut outcomes[t as usize];
                outcome.batches_ok += 1;
                outcome.retries += attempts;
                outcome.flagged += report.flagged;
                outcome.steady = if report.quarantined {
                    report.rejected
                } else {
                    !report.rejected && report.flagged == 0
                };
            }
            Err(_) => outcomes[t as usize].refused += 1,
        }
    }

    // Final telemetry: revive anything still down so the report covers
    // every shard, then read end-state per tenant.
    for shard in 0..pool.shard_count() {
        let _ = pool.revive_shard(shard);
    }
    let fleet = pool.report();
    for status in fleet.tenants() {
        if let Some(outcome) = outcomes.get_mut(status.tenant.0 as usize) {
            outcome.quarantined = status.quarantined;
            outcome.degraded = status.degraded;
        }
    }
    let alerts = pool.drain_alerts().len();

    let report = RecoveryReport {
        seed: plan.seed,
        faults_injected: injector.fired_by_kind(),
        worker_restarts: pool.restart_counts().to_vec(),
        tenants: outcomes,
        alerts,
    };
    (report, latencies_us)
}
