//! Seeded, serializable fault schedules.
//!
//! A [`FaultPlan`] is the replayable artifact of a chaos run: commit
//! the JSON, and anyone can re-fire the exact same faults. Rules are
//! matched in order by the [`FaultInjector`](crate::inject::FaultInjector);
//! a rule fires when the site's invocation count hits one of its `at`
//! indices, or when the seeded per-invocation hash clears its
//! `probability` — bounded by `max_fires` either way.
//!
//! The JSON schema is deliberately explicit: every field of every rule
//! is present in the serialized form (no defaults filled in on read),
//! so a committed plan is self-describing.

use sedspec_fleet::FaultKind;
use serde::{Deserialize, Serialize};

/// One fault schedule entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultRule {
    /// The fault to inject.
    pub kind: FaultKind,
    /// Restrict to one tenant's sites (`null` = any site of this kind).
    pub tenant: Option<u64>,
    /// Zero-based site invocation counts at which the rule fires
    /// deterministically.
    pub at: Vec<u64>,
    /// Per-invocation firing probability in `[0, 1]`, decided by a
    /// splitmix64 hash of `(plan seed, rule, site, invocation)` — the
    /// same plan fires on the same invocations every run. `0.0`
    /// disables the probabilistic path (the `at` list still applies).
    pub probability: f64,
    /// Stall duration for stall-kind faults, in milliseconds (capped
    /// at [`MAX_STALL_MS`](sedspec_fleet::fault::MAX_STALL_MS) at
    /// injection time).
    pub stall_ms: u64,
    /// Upper bound on total fires of this rule across the run.
    pub max_fires: u64,
}

impl FaultRule {
    /// A rule that fires `kind` exactly once, at site invocation `n`.
    pub fn once_at(kind: FaultKind, tenant: Option<u64>, n: u64) -> Self {
        FaultRule { kind, tenant, at: vec![n], probability: 0.0, stall_ms: 2, max_fires: 1 }
    }
}

/// A complete, replayable fault schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for the probabilistic firing hash (and recorded in the
    /// recovery report, so a report names the plan that produced it).
    pub seed: u64,
    /// Rules, matched in order; the first rule that fires decides the
    /// action for an invocation.
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// A plan with no rules: attached, the injector holds every seam
    /// open but never fires — the chaos-equivalence baseline.
    pub fn empty(seed: u64) -> Self {
        FaultPlan { seed, rules: Vec::new() }
    }

    /// Serializes the plan as pretty JSON (the committed-artifact form).
    ///
    /// # Errors
    ///
    /// Propagates serializer errors (none for well-formed plans).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parses a plan from JSON. Every rule field must be present.
    ///
    /// # Errors
    ///
    /// Malformed JSON or missing fields.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Reads a plan from a JSON file.
    ///
    /// # Errors
    ///
    /// I/O failures and malformed plan JSON, as a rendered message.
    pub fn load(path: &str) -> Result<Self, String> {
        let json = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        Self::from_json(&json).map_err(|e| format!("{path}: {e:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_round_trip_through_json() {
        let plan = FaultPlan {
            seed: 42,
            rules: vec![
                FaultRule::once_at(FaultKind::WorkerPanic, Some(3), 1),
                FaultRule {
                    kind: FaultKind::RegistryStall,
                    tenant: None,
                    at: vec![0, 7],
                    probability: 0.25,
                    stall_ms: 5,
                    max_fires: 4,
                },
            ],
        };
        let json = plan.to_json().unwrap();
        let back = FaultPlan::from_json(&json).unwrap();
        assert_eq!(back, plan);
        // The committed form is explicit: every field appears.
        for field in ["kind", "tenant", "at", "probability", "stall_ms", "max_fires"] {
            assert!(json.contains(field), "serialized plan must carry `{field}`");
        }
    }

    #[test]
    fn missing_fields_are_rejected_not_defaulted() {
        let json = r#"{"seed": 1, "rules": [{"kind": "WorkerPanic", "at": [0]}]}"#;
        assert!(FaultPlan::from_json(json).is_err(), "partial rules must not parse");
    }
}
