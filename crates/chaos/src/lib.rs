//! Deterministic fault injection for the SEDSpec fleet runtime.
//!
//! The fleet's recovery machinery — supervised worker restart, bounded
//! submit retry, backpressure, warn-only engine degradation — is only
//! trustworthy if every path through it is exercised on demand, and
//! only debuggable if a failing run can be replayed exactly. This
//! crate provides both halves:
//!
//! * [`plan::FaultPlan`] — a seeded, serializable schedule of typed
//!   faults ([`FaultKind`](sedspec_fleet::FaultKind)): which site fires
//!   on which invocation, with what probability, how many times. Plans
//!   round-trip through JSON, so the exact plan a CI failure ran under
//!   is a committed artifact, not a lost RNG state.
//! * [`inject::FaultInjector`] — the plan's executor, implementing the
//!   fleet's [`FaultPoint`](sedspec_fleet::FaultPoint) seam. Decisions
//!   key on per-(rule, site) invocation counters plus a splitmix64
//!   hash of the seed, never on wall-clock or thread identity, so the
//!   same plan fires the same faults on every run.
//! * [`runner`] — a self-contained chaos scenario: a multi-tenant
//!   fleet (benign and CVE-compromised tenants side by side) driven
//!   through batches, a hot-swap, and the plan's faults, producing a
//!   [`report::RecoveryReport`] whose rendering is byte-identical for
//!   a given plan.
//!
//! The report asserts the three containment invariants chaos testing
//! exists to defend: no benign tenant is falsely halted by an injected
//! fault, every compromised tenant is still quarantined despite
//! concurrent faults, and the pool converges back to steady state
//! within its retry budget.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod inject;
pub mod plan;
pub mod report;
pub mod runner;

pub use inject::FaultInjector;
pub use plan::{FaultPlan, FaultRule};
pub use report::{RecoveryReport, TenantOutcome};
pub use runner::{run_chaos, ChaosConfig};
