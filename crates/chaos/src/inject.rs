//! The plan executor: a [`FaultPoint`] driven by a [`FaultPlan`].
//!
//! Determinism is the whole design. Every decision is a pure function
//! of (plan, per-site invocation count): sites are keyed by their most
//! specific coordinate (tenant, else device, else shard), each
//! matching rule keeps its own counter per site key, and the
//! probabilistic path hashes `(seed, rule, key, invocation)` through
//! splitmix64. Nothing reads the clock or thread identity, so a plan
//! replays bit-for-bit — which is what lets the chaos suite demand
//! byte-identical recovery reports for a fixed seed.

use std::collections::HashMap;

use parking_lot::Mutex;
use sedspec_fleet::{FaultAction, FaultKind, FaultPoint, FaultSite};

use crate::plan::FaultPlan;

/// Site key offsets keep tenant-, device- and shard-scoped sites from
/// colliding in one counter space.
const DEVICE_KEY_BASE: u64 = 1 << 40;
const SHARD_KEY_BASE: u64 = 1 << 41;

fn site_key(site: &FaultSite) -> u64 {
    if let Some(t) = site.tenant {
        t
    } else if let Some(d) = site.device {
        DEVICE_KEY_BASE + d as u64
    } else if let Some(s) = site.shard {
        SHARD_KEY_BASE + u64::from(s)
    } else {
        0
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[derive(Default)]
struct InjectorState {
    /// Invocation counter per (rule index, site key).
    counters: HashMap<(usize, u64), u64>,
    /// Fires per rule (bounds `max_fires`).
    fired_per_rule: Vec<u64>,
    /// Fires per fault kind, dense-indexed by [`FaultKind::index`].
    fired_per_kind: [u64; 6],
}

/// Executes a [`FaultPlan`] behind the fleet's fault seam.
pub struct FaultInjector {
    plan: FaultPlan,
    state: Mutex<InjectorState>,
}

impl FaultInjector {
    /// Builds an injector for `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        let rules = plan.rules.len();
        FaultInjector {
            plan,
            state: Mutex::new(InjectorState {
                counters: HashMap::new(),
                fired_per_rule: vec![0; rules],
                fired_per_kind: [0; 6],
            }),
        }
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Fires so far per fault kind, dense-indexed like
    /// [`FaultKind::ALL`].
    pub fn fired_by_kind(&self) -> [u64; 6] {
        self.state.lock().fired_per_kind
    }

    /// Fires so far per plan rule, in rule order.
    pub fn fired_by_rule(&self) -> Vec<u64> {
        self.state.lock().fired_per_rule.clone()
    }

    /// Total faults injected so far.
    pub fn total_fired(&self) -> u64 {
        self.fired_by_kind().iter().sum()
    }

    fn action_for(kind: FaultKind, stall_ms: u64) -> FaultAction {
        match kind {
            FaultKind::WorkerPanic => FaultAction::Panic,
            FaultKind::DeviceStepError | FaultKind::RegistryFail => FaultAction::Fail,
            FaultKind::RegistryStall | FaultKind::ObsSinkStall => FaultAction::Stall(stall_ms),
            FaultKind::SubmitSaturated => FaultAction::Reject,
        }
    }
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("seed", &self.plan.seed)
            .field("rules", &self.plan.rules.len())
            .field("fired", &self.total_fired())
            .finish()
    }
}

impl FaultPoint for FaultInjector {
    fn check(&self, site: &FaultSite) -> FaultAction {
        let key = site_key(site);
        let mut state = self.state.lock();
        let mut decided: Option<FaultAction> = None;
        for (idx, rule) in self.plan.rules.iter().enumerate() {
            if rule.kind != site.kind {
                continue;
            }
            if let Some(want) = rule.tenant {
                if site.tenant != Some(want) {
                    continue;
                }
            }
            // Count the invocation for every matching rule, fired or
            // not, so one rule's fire cannot shift a sibling's
            // schedule.
            let n = {
                let counter = state.counters.entry((idx, key)).or_insert(0);
                let n = *counter;
                *counter += 1;
                n
            };
            if decided.is_some() || state.fired_per_rule[idx] >= rule.max_fires {
                continue;
            }
            let scheduled = rule.at.contains(&n);
            let rolled = rule.probability > 0.0 && {
                let h = splitmix64(
                    self.plan
                        .seed
                        .wrapping_mul(0xA076_1D64_78BD_642F)
                        .wrapping_add(splitmix64((idx as u64) << 32 | site.kind.index() as u64))
                        .wrapping_add(splitmix64(key))
                        .wrapping_add(n),
                );
                // 53 high bits → uniform in [0, 1).
                (h >> 11) as f64 / (1u64 << 53) as f64 <= rule.probability
            };
            if scheduled || rolled {
                state.fired_per_rule[idx] += 1;
                state.fired_per_kind[site.kind.index()] += 1;
                decided = Some(Self::action_for(rule.kind, rule.stall_ms));
            }
        }
        decided.unwrap_or(FaultAction::Proceed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultRule;

    #[test]
    fn at_schedule_fires_on_exact_invocations() {
        let plan = FaultPlan {
            seed: 1,
            rules: vec![FaultRule {
                kind: FaultKind::SubmitSaturated,
                tenant: Some(2),
                at: vec![1, 3],
                probability: 0.0,
                stall_ms: 0,
                max_fires: 8,
            }],
        };
        let inj = FaultInjector::new(plan);
        let hits: Vec<bool> =
            (0..5).map(|_| inj.check(&FaultSite::submit(0, 2)) == FaultAction::Reject).collect();
        assert_eq!(hits, vec![false, true, false, true, false]);
        // A different tenant's site has its own counter and no match.
        assert_eq!(inj.check(&FaultSite::submit(0, 3)), FaultAction::Proceed);
        assert_eq!(inj.fired_by_kind()[FaultKind::SubmitSaturated.index()], 2);
    }

    #[test]
    fn max_fires_bounds_the_rule() {
        let plan = FaultPlan {
            seed: 9,
            rules: vec![FaultRule {
                kind: FaultKind::RegistryFail,
                tenant: None,
                at: (0..100).collect(),
                probability: 0.0,
                stall_ms: 0,
                max_fires: 3,
            }],
        };
        let inj = FaultInjector::new(plan);
        let fired = (0..100)
            .filter(|_| {
                inj.check(&FaultSite::registry_fetch(
                    FaultKind::RegistryFail,
                    sedspec_devices::DeviceKind::Fdc,
                )) == FaultAction::Fail
            })
            .count();
        assert_eq!(fired, 3);
    }

    #[test]
    fn probabilistic_firing_is_seed_deterministic() {
        let mk = |seed| {
            FaultInjector::new(FaultPlan {
                seed,
                rules: vec![FaultRule {
                    kind: FaultKind::ObsSinkStall,
                    tenant: None,
                    at: Vec::new(),
                    probability: 0.5,
                    stall_ms: 1,
                    max_fires: u64::MAX,
                }],
            })
        };
        let trace = |inj: &FaultInjector| -> Vec<bool> {
            (0..64)
                .map(|_| inj.check(&FaultSite::obs_sink(Some(7))) != FaultAction::Proceed)
                .collect()
        };
        let a = trace(&mk(123));
        let b = trace(&mk(123));
        let c = trace(&mk(124));
        assert_eq!(a, b, "same seed must fire identically");
        assert_ne!(a, c, "different seeds must differ somewhere in 64 draws");
        let fired = a.iter().filter(|&&f| f).count();
        assert!(fired > 10 && fired < 54, "p=0.5 should fire roughly half: {fired}");
    }

    #[test]
    fn empty_plan_never_fires() {
        let inj = FaultInjector::new(FaultPlan::empty(7));
        for kind in FaultKind::ALL {
            let site = FaultSite { kind, tenant: Some(1), shard: Some(0), device: None };
            assert_eq!(inj.check(&site), FaultAction::Proceed);
        }
        assert_eq!(inj.total_fired(), 0);
    }
}
