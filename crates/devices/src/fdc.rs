//! Floppy disk controller (QEMU `hw/block/fdc.c`).
//!
//! Reproduces the 82078 FDC as QEMU emulates it: the PMIO register file
//! at `0x3f0..0x3f8`, the 512-byte command/data FIFO, and the three-phase
//! command state machine (command byte → parameter bytes → execution /
//! result phase) for ten commands.
//!
//! **CVE-2015-3456 (Venom)** is reproduced on [`QemuVersion::V2_3_0`]:
//! in the parameter phase of the DRIVE SPECIFICATION command the
//! vulnerable code appends bytes at `fifo[data_pos++]` and decides
//! completion *only* from a terminator bit pattern in the byte itself,
//! never bounding `data_pos` — a guest that withholds the terminator
//! walks `data_pos` past the 512-byte FIFO and corrupts the fields
//! behind it. The patched behaviour additionally terminates once
//! `data_pos` reaches `data_len`.

use sedspec_dbl::builder::ProgramBuilder;
use sedspec_dbl::ir::Width::{W16, W32, W8};
use sedspec_dbl::ir::{BinOp, Expr, Intrinsic, Program};
use sedspec_dbl::state::ControlStructure;
use sedspec_vmm::AddressSpace;

use crate::{Device, EntryPoint, QemuVersion};

/// FDC interrupt line (ISA IRQ 6).
pub const FDC_IRQ: u64 = 6;
/// Base of the claimed port range.
pub const FDC_BASE: u64 = 0x3f0;
/// FIFO size in bytes (one sector).
pub const FD_SECTOR_LEN: u64 = 512;

/// MSR: request for master.
pub const MSR_RQM: u64 = 0x80;
/// MSR: data direction, set = controller to CPU.
pub const MSR_DIO: u64 = 0x40;
/// MSR: command in progress.
pub const MSR_CMDBUSY: u64 = 0x10;

/// FDC command opcodes (low five bits of the command byte).
pub mod cmd {
    /// SPECIFY.
    pub const SPECIFY: u64 = 0x03;
    /// SENSE DRIVE STATUS.
    pub const SENSE_DRIVE_STATUS: u64 = 0x04;
    /// WRITE DATA.
    pub const WRITE: u64 = 0x05;
    /// READ DATA.
    pub const READ: u64 = 0x06;
    /// RECALIBRATE.
    pub const RECALIBRATE: u64 = 0x07;
    /// SENSE INTERRUPT STATUS.
    pub const SENSE_INTERRUPT_STATUS: u64 = 0x08;
    /// READ ID.
    pub const READ_ID: u64 = 0x0a;
    /// FORMAT TRACK.
    pub const FORMAT_TRACK: u64 = 0x0d;
    /// DRIVE SPECIFICATION (the Venom path; full byte is 0x8e).
    pub const DRIVE_SPEC: u64 = 0x0e;
    /// SEEK.
    pub const SEEK: u64 = 0x0f;
}

/// Data-phase states of the command FSM.
mod st {
    pub const IDLE: u64 = 0; // waiting for a command byte
    pub const PARAMS: u64 = 1; // collecting parameter bytes
    pub const DATA_WRITE: u64 = 2; // guest streams sector data in
    pub const DATA_READ: u64 = 3; // guest reads result/sector data out
}

struct Vars {
    dor: sedspec_dbl::ir::VarId,
    tdr: sedspec_dbl::ir::VarId,
    msr: sedspec_dbl::ir::VarId,
    dsr: sedspec_dbl::ir::VarId,
    ccr: sedspec_dbl::ir::VarId,
    status0: sedspec_dbl::ir::VarId,
    cur_cmd: sedspec_dbl::ir::VarId,
    data_state: sedspec_dbl::ir::VarId,
    fifo: sedspec_dbl::ir::BufId,
    data_pos: sedspec_dbl::ir::VarId,
    data_len: sedspec_dbl::ir::VarId,
    track: sedspec_dbl::ir::VarId,
    head: sedspec_dbl::ir::VarId,
    sector: sedspec_dbl::ir::VarId,
}

fn control_structure() -> (ControlStructure, Vars) {
    let mut cs = ControlStructure::new("FDCtrl");
    // Field order mirrors the QEMU struct closely enough that the FIFO
    // sits directly in front of the transfer bookkeeping it can clobber.
    let dor = cs.register("dor", W8, 0x0c);
    let tdr = cs.register("tdr", W8, 0);
    let msr = cs.register("msr", W8, MSR_RQM);
    let dsr = cs.register("dsr", W8, 0);
    let ccr = cs.register("ccr", W8, 0);
    let status0 = cs.var("status0", W8);
    let cur_cmd = cs.var("cur_cmd", W8);
    let data_state = cs.var("data_state", W8);
    let fifo = cs.buffer("fifo", FD_SECTOR_LEN as usize);
    let data_pos = cs.var("data_pos", W32);
    let data_len = cs.var("data_len", W32);
    // CHS position: W16 so the linear sector arithmetic (track*18+sector)
    // cannot wrap — QEMU computes it at int width for the same reason.
    let track = cs.var("track", W16);
    let head = cs.var("head", W16);
    let sector = cs.var("sector", W16);
    (
        cs,
        Vars {
            dor,
            tdr,
            msr,
            dsr,
            ccr,
            status0,
            cur_cmd,
            data_state,
            fifo,
            data_pos,
            data_len,
            track,
            head,
            sector,
        },
    )
}

/// Linear sector index of the current CHS position: `track * 18 + sector`.
fn chs_expr(v: &Vars) -> Expr {
    Expr::bin(
        BinOp::Add,
        Expr::bin(BinOp::Mul, Expr::var(v.track), Expr::lit(18)),
        Expr::var(v.sector),
    )
}

fn build_pmio_write(v: &Vars, version: QemuVersion) -> Program {
    let venom = version.has_vulnerability(QemuVersion::V2_3_0);
    let mut b = ProgramBuilder::new("fdc_pmio_write");

    let entry = b.entry_block("entry");
    let done = b.exit_block("done");
    let dor_w = b.block("dor_write");
    let motor_on = b.block("motor_on");
    let motor_off = b.block("motor_off");
    let dor_reset_chk = b.block("dor_reset_check");
    let do_reset = b.cmd_end_block("controller_reset");
    let tdr_w = b.block("tdr_write");
    let dsr_w = b.block("dsr_write");
    let ccr_w = b.block("ccr_write");
    let fifo_w = b.block("fifo_write");
    let fifo_w2 = b.block("fifo_write_params_check");
    let fifo_w3 = b.block("fifo_write_data_check");
    let cmd_start = b.cmd_decision_block("command_start");
    let st_specify = b.block("setup_specify");
    let st_sense_drv = b.block("setup_sense_drive");
    let st_write = b.block("setup_write");
    let st_read = b.block("setup_read");
    let st_recal = b.block("setup_recalibrate");
    let do_sense_int = b.block("sense_interrupt_status");
    let st_read_id = b.block("setup_read_id");
    let st_format = b.block("setup_format");
    let st_drive_spec = b.block("setup_drive_spec");
    let st_seek = b.block("setup_seek");
    let unimpl = b.block("unimplemented_command");
    let param_byte = b.block("param_byte");
    let normal_param = b.block("param_count_check");
    let ds_param = b.block("drive_spec_param");
    let ds_chk_term = b.block("drive_spec_terminator_check");
    let ds_overrun_chk = b.block("drive_spec_overrun_check");
    let ds_overrun = b.block("drive_spec_overrun");
    let ds_done = b.cmd_end_block("drive_spec_done");
    let exec_cmd = b.cmd_decision_block("execute_command");
    let ex_specify = b.cmd_end_block("exec_specify");
    let ex_sense_drv = b.block("exec_sense_drive");
    let ex_write_start = b.block("exec_write_start");
    let ex_read = b.block("exec_read");
    let ex_recal = b.cmd_end_block("exec_recalibrate");
    let ex_read_id = b.block("exec_read_id");
    let ex_format = b.block("exec_format");
    let ex_seek = b.cmd_end_block("exec_seek");
    let data_byte = b.block("sector_data_byte");
    let wr_complete = b.block("write_sector_complete");

    // --- port dispatch ---
    b.select(entry);
    b.switch(
        Expr::bin(BinOp::And, Expr::IoAddr, Expr::lit(7)),
        vec![(2, dor_w), (3, tdr_w), (4, dsr_w), (5, fifo_w), (7, ccr_w)],
        done,
    );

    b.select(dor_w);
    b.set_var(v.dor, Expr::IoData);
    // Motor handling (QEMU spins the drive up or down here). Neither
    // side touches monitored device state, so the execution
    // specification's control-flow reduction merges this branch away —
    // the paper's §V-C case.
    b.branch(
        Expr::ne(Expr::bin(BinOp::And, Expr::IoData, Expr::lit(0x10)), Expr::lit(0)),
        motor_on,
        motor_off,
    );
    b.select(motor_on);
    b.intrinsic(Intrinsic::Note("drive 0 motor on".into()));
    b.jump(dor_reset_chk);
    b.select(motor_off);
    b.intrinsic(Intrinsic::Note("drive 0 motor off".into()));
    b.jump(dor_reset_chk);

    // DOR bit 2 low = enter reset.
    b.select(dor_reset_chk);
    b.branch(
        Expr::eq(Expr::bin(BinOp::And, Expr::var(v.dor), Expr::lit(4)), Expr::lit(0)),
        do_reset,
        done,
    );

    b.select(do_reset);
    b.set_var(v.msr, Expr::lit(MSR_RQM));
    b.set_var(v.data_state, Expr::lit(st::IDLE));
    b.set_var(v.data_pos, Expr::lit(0));
    b.set_var(v.data_len, Expr::lit(0));
    b.set_var(v.status0, Expr::lit(0xc0));
    b.intrinsic(Intrinsic::IrqRaise { line: Expr::lit(FDC_IRQ) });
    b.jump(done);

    b.select(tdr_w);
    b.set_var(v.tdr, Expr::IoData);
    b.jump(done);

    b.select(dsr_w);
    b.set_var(v.dsr, Expr::IoData);
    // DSR bit 7 = software reset.
    b.branch(
        Expr::ne(Expr::bin(BinOp::And, Expr::IoData, Expr::lit(0x80)), Expr::lit(0)),
        do_reset,
        done,
    );

    b.select(ccr_w);
    b.set_var(v.ccr, Expr::IoData);
    b.jump(done);

    // --- FIFO write: command / parameter / data phases ---
    b.select(fifo_w);
    b.branch(Expr::eq(Expr::var(v.data_state), Expr::lit(st::IDLE)), cmd_start, fifo_w2);
    b.select(fifo_w2);
    b.branch(Expr::eq(Expr::var(v.data_state), Expr::lit(st::PARAMS)), param_byte, fifo_w3);
    b.select(fifo_w3);
    b.branch(Expr::eq(Expr::var(v.data_state), Expr::lit(st::DATA_WRITE)), data_byte, done);

    // Command byte: latch and dispatch (the paper's command decision block).
    b.select(cmd_start);
    b.set_var(v.cur_cmd, Expr::IoData);
    b.set_var(v.msr, Expr::lit(MSR_RQM | MSR_CMDBUSY));
    b.set_var(v.data_pos, Expr::lit(0));
    b.switch(
        Expr::bin(BinOp::And, Expr::var(v.cur_cmd), Expr::lit(0x1f)),
        vec![
            (cmd::SPECIFY, st_specify),
            (cmd::SENSE_DRIVE_STATUS, st_sense_drv),
            (cmd::WRITE, st_write),
            (cmd::READ, st_read),
            (cmd::RECALIBRATE, st_recal),
            (cmd::SENSE_INTERRUPT_STATUS, do_sense_int),
            (cmd::READ_ID, st_read_id),
            (cmd::FORMAT_TRACK, st_format),
            (cmd::DRIVE_SPEC, st_drive_spec),
            (cmd::SEEK, st_seek),
        ],
        unimpl,
    );

    let mut setup = |block, params: u64| {
        b.select(block);
        b.set_var(v.data_len, Expr::lit(params));
        b.set_var(v.data_state, Expr::lit(st::PARAMS));
        b.jump(done);
    };
    setup(st_specify, 2);
    setup(st_sense_drv, 1);
    setup(st_write, 8);
    setup(st_read, 8);
    setup(st_recal, 1);
    setup(st_read_id, 1);
    setup(st_format, 5);
    setup(st_drive_spec, 5);
    setup(st_seek, 2);

    // SENSE INTERRUPT STATUS has no parameters: respond immediately.
    b.select(do_sense_int);
    b.buf_store(v.fifo, Expr::lit(0), Expr::var(v.status0));
    b.buf_store(v.fifo, Expr::lit(1), Expr::var(v.track));
    b.set_var(v.status0, Expr::lit(0));
    b.set_var(v.data_len, Expr::lit(2));
    b.set_var(v.data_pos, Expr::lit(0));
    b.set_var(v.data_state, Expr::lit(st::DATA_READ));
    b.set_var(v.msr, Expr::lit(MSR_RQM | MSR_DIO | MSR_CMDBUSY));
    b.jump(done);

    // Unknown command: single 0x80 status byte, as QEMU's unimplemented handler.
    b.select(unimpl);
    b.buf_store(v.fifo, Expr::lit(0), Expr::lit(0x80));
    b.set_var(v.data_len, Expr::lit(1));
    b.set_var(v.data_pos, Expr::lit(0));
    b.set_var(v.data_state, Expr::lit(st::DATA_READ));
    b.set_var(v.msr, Expr::lit(MSR_RQM | MSR_DIO | MSR_CMDBUSY));
    b.jump(done);

    // Parameter byte: append to the FIFO.
    b.select(param_byte);
    b.buf_store(v.fifo, Expr::var(v.data_pos), Expr::IoData);
    b.set_var(v.data_pos, Expr::bin(BinOp::Add, Expr::var(v.data_pos), Expr::lit(1)));
    b.branch(
        Expr::eq(
            Expr::bin(BinOp::And, Expr::var(v.cur_cmd), Expr::lit(0x1f)),
            Expr::lit(cmd::DRIVE_SPEC),
        ),
        ds_param,
        normal_param,
    );

    b.select(normal_param);
    b.branch(Expr::bin(BinOp::Ge, Expr::var(v.data_pos), Expr::var(v.data_len)), exec_cmd, done);

    // DRIVE SPECIFICATION parameter handling — the Venom defect.
    b.select(ds_param);
    if venom {
        // Vulnerable: completion decided only by the terminator bits;
        // data_pos is never bounded against the FIFO. The overrun branch
        // reproduces QEMU's dead "keep collecting" handling: its taken
        // side exists in the code but no benign interaction reaches it.
        b.intrinsic(Intrinsic::Note("CVE-2015-3456: no data_pos bound".into()));
        b.branch(
            Expr::eq(Expr::bin(BinOp::And, Expr::IoData, Expr::lit(0xc0)), Expr::lit(0xc0)),
            ds_done,
            ds_overrun_chk,
        );
    } else {
        // Patched: terminate once the declared parameter count arrives.
        b.branch(
            Expr::bin(BinOp::Ge, Expr::var(v.data_pos), Expr::var(v.data_len)),
            ds_done,
            ds_chk_term,
        );
    }
    b.select(ds_overrun_chk);
    b.branch(Expr::bin(BinOp::Gt, Expr::var(v.data_pos), Expr::var(v.data_len)), ds_overrun, done);
    b.select(ds_overrun);
    b.jump(done);

    b.select(ds_chk_term);
    b.branch(
        Expr::eq(Expr::bin(BinOp::And, Expr::IoData, Expr::lit(0xc0)), Expr::lit(0xc0)),
        ds_done,
        done,
    );

    b.select(ds_done);
    b.set_var(v.data_state, Expr::lit(st::IDLE));
    b.set_var(v.msr, Expr::lit(MSR_RQM));
    b.jump(done);

    // All parameters collected: execute (second dispatch on the command).
    b.select(exec_cmd);
    b.switch(
        Expr::bin(BinOp::And, Expr::var(v.cur_cmd), Expr::lit(0x1f)),
        vec![
            (cmd::SPECIFY, ex_specify),
            (cmd::SENSE_DRIVE_STATUS, ex_sense_drv),
            (cmd::WRITE, ex_write_start),
            (cmd::READ, ex_read),
            (cmd::RECALIBRATE, ex_recal),
            (cmd::READ_ID, ex_read_id),
            (cmd::FORMAT_TRACK, ex_format),
            (cmd::SEEK, ex_seek),
        ],
        ds_done, // anything else falls back to idle
    );

    b.select(ex_specify);
    b.set_var(v.data_state, Expr::lit(st::IDLE));
    b.set_var(v.msr, Expr::lit(MSR_RQM));
    b.jump(done);

    b.select(ex_sense_drv);
    b.buf_store(v.fifo, Expr::lit(0), Expr::bin(BinOp::Or, Expr::lit(0x28), Expr::var(v.head)));
    b.set_var(v.data_len, Expr::lit(1));
    b.set_var(v.data_pos, Expr::lit(0));
    b.set_var(v.data_state, Expr::lit(st::DATA_READ));
    b.set_var(v.msr, Expr::lit(MSR_RQM | MSR_DIO | MSR_CMDBUSY));
    b.jump(done);

    // WRITE: parameters are (drv, C, H, R, N, EOT, GPL, DTL); latch CHS
    // and stream one sector of data in.
    b.select(ex_write_start);
    b.set_var(v.track, Expr::buf(v.fifo, Expr::lit(1)));
    b.set_var(v.head, Expr::buf(v.fifo, Expr::lit(2)));
    b.set_var(v.sector, Expr::buf(v.fifo, Expr::lit(3)));
    b.set_var(v.data_pos, Expr::lit(0));
    b.set_var(v.data_len, Expr::lit(FD_SECTOR_LEN));
    b.set_var(v.data_state, Expr::lit(st::DATA_WRITE));
    b.set_var(v.msr, Expr::lit(MSR_RQM | MSR_CMDBUSY));
    b.jump(done);

    // READ: fill the FIFO from the disk and enter the read phase.
    b.select(ex_read);
    b.set_var(v.track, Expr::buf(v.fifo, Expr::lit(1)));
    b.set_var(v.head, Expr::buf(v.fifo, Expr::lit(2)));
    b.set_var(v.sector, Expr::buf(v.fifo, Expr::lit(3)));
    b.intrinsic(Intrinsic::DiskReadToBuf {
        buf: v.fifo,
        buf_off: Expr::lit(0),
        sector: chs_expr(v),
    });
    b.set_var(v.data_pos, Expr::lit(0));
    b.set_var(v.data_len, Expr::lit(FD_SECTOR_LEN));
    b.set_var(v.data_state, Expr::lit(st::DATA_READ));
    b.set_var(v.msr, Expr::lit(MSR_RQM | MSR_DIO | MSR_CMDBUSY));
    b.intrinsic(Intrinsic::IrqRaise { line: Expr::lit(FDC_IRQ) });
    b.jump(done);

    b.select(ex_recal);
    b.set_var(v.track, Expr::lit(0));
    b.set_var(v.status0, Expr::lit(0x20));
    b.set_var(v.data_state, Expr::lit(st::IDLE));
    b.set_var(v.msr, Expr::lit(MSR_RQM));
    b.intrinsic(Intrinsic::IrqRaise { line: Expr::lit(FDC_IRQ) });
    b.jump(done);

    // READ ID: 7 result bytes describing the current position.
    b.select(ex_read_id);
    b.buf_store(v.fifo, Expr::lit(0), Expr::var(v.status0));
    b.buf_store(v.fifo, Expr::lit(1), Expr::lit(0));
    b.buf_store(v.fifo, Expr::lit(2), Expr::lit(0));
    b.buf_store(v.fifo, Expr::lit(3), Expr::var(v.track));
    b.buf_store(v.fifo, Expr::lit(4), Expr::var(v.head));
    b.buf_store(v.fifo, Expr::lit(5), Expr::var(v.sector));
    b.buf_store(v.fifo, Expr::lit(6), Expr::lit(2));
    b.set_var(v.data_len, Expr::lit(7));
    b.set_var(v.data_pos, Expr::lit(0));
    b.set_var(v.data_state, Expr::lit(st::DATA_READ));
    b.set_var(v.msr, Expr::lit(MSR_RQM | MSR_DIO | MSR_CMDBUSY));
    b.intrinsic(Intrinsic::IrqRaise { line: Expr::lit(FDC_IRQ) });
    b.jump(done);

    // FORMAT TRACK: blank the addressed sector, report status.
    b.select(ex_format);
    b.set_var(v.track, Expr::buf(v.fifo, Expr::lit(1)));
    b.set_var(v.sector, Expr::lit(1));
    b.buf_fill(v.fifo, Expr::lit(0));
    b.intrinsic(Intrinsic::DiskWriteFromBuf {
        buf: v.fifo,
        buf_off: Expr::lit(0),
        sector: chs_expr(v),
    });
    b.buf_store(v.fifo, Expr::lit(0), Expr::var(v.status0));
    b.set_var(v.data_len, Expr::lit(7));
    b.set_var(v.data_pos, Expr::lit(0));
    b.set_var(v.data_state, Expr::lit(st::DATA_READ));
    b.set_var(v.msr, Expr::lit(MSR_RQM | MSR_DIO | MSR_CMDBUSY));
    b.intrinsic(Intrinsic::IrqRaise { line: Expr::lit(FDC_IRQ) });
    b.jump(done);

    b.select(ex_seek);
    b.set_var(v.track, Expr::buf(v.fifo, Expr::lit(1)));
    b.set_var(v.status0, Expr::lit(0x20));
    b.set_var(v.data_state, Expr::lit(st::IDLE));
    b.set_var(v.msr, Expr::lit(MSR_RQM));
    b.intrinsic(Intrinsic::IrqRaise { line: Expr::lit(FDC_IRQ) });
    b.jump(done);

    // Sector data byte during WRITE (bounded index, as post-Venom QEMU).
    b.select(data_byte);
    b.buf_store(
        v.fifo,
        Expr::bin(BinOp::And, Expr::var(v.data_pos), Expr::lit(FD_SECTOR_LEN - 1)),
        Expr::IoData,
    );
    b.set_var(v.data_pos, Expr::bin(BinOp::Add, Expr::var(v.data_pos), Expr::lit(1)));
    b.branch(Expr::bin(BinOp::Ge, Expr::var(v.data_pos), Expr::var(v.data_len)), wr_complete, done);

    b.select(wr_complete);
    b.intrinsic(Intrinsic::DiskWriteFromBuf {
        buf: v.fifo,
        buf_off: Expr::lit(0),
        sector: chs_expr(v),
    });
    b.set_var(v.status0, Expr::lit(0));
    b.buf_store(v.fifo, Expr::lit(0), Expr::lit(0));
    b.buf_store(v.fifo, Expr::lit(1), Expr::lit(0));
    b.buf_store(v.fifo, Expr::lit(2), Expr::lit(0));
    b.buf_store(v.fifo, Expr::lit(3), Expr::var(v.track));
    b.buf_store(v.fifo, Expr::lit(4), Expr::var(v.head));
    b.buf_store(v.fifo, Expr::lit(5), Expr::var(v.sector));
    b.buf_store(v.fifo, Expr::lit(6), Expr::lit(2));
    b.set_var(v.data_len, Expr::lit(7));
    b.set_var(v.data_pos, Expr::lit(0));
    b.set_var(v.data_state, Expr::lit(st::DATA_READ));
    b.set_var(v.msr, Expr::lit(MSR_RQM | MSR_DIO | MSR_CMDBUSY));
    b.intrinsic(Intrinsic::IrqRaise { line: Expr::lit(FDC_IRQ) });
    b.jump(done);

    b.finish().expect("fdc pmio_write program is well-formed")
}

fn build_pmio_read(v: &Vars) -> Program {
    let mut b = ProgramBuilder::new("fdc_pmio_read");
    let entry = b.entry_block("entry");
    let done = b.exit_block("done");
    let r_sra = b.block("read_sra");
    let r_dor = b.block("read_dor");
    let r_tdr = b.block("read_tdr");
    let r_msr = b.block("read_msr");
    let r_fifo = b.block("read_fifo");
    let r_dir = b.block("read_dir");
    let r_none = b.block("read_fifo_idle");
    let r_data = b.block("read_fifo_data");
    let rd_done = b.cmd_end_block("result_phase_done");

    b.select(entry);
    b.switch(
        Expr::bin(BinOp::And, Expr::IoAddr, Expr::lit(7)),
        vec![(0, r_sra), (2, r_dor), (3, r_tdr), (4, r_msr), (5, r_fifo), (7, r_dir)],
        done,
    );

    b.select(r_sra);
    b.reply(Expr::lit(0));
    b.jump(done);

    b.select(r_dor);
    b.reply(Expr::var(v.dor));
    b.jump(done);

    b.select(r_tdr);
    b.reply(Expr::var(v.tdr));
    b.jump(done);

    b.select(r_msr);
    b.reply(Expr::var(v.msr));
    b.jump(done);

    b.select(r_dir);
    // Disk-change bit only.
    b.reply(Expr::lit(0));
    b.jump(done);

    b.select(r_fifo);
    b.branch(Expr::eq(Expr::var(v.data_state), Expr::lit(st::DATA_READ)), r_data, r_none);

    b.select(r_none);
    b.reply(Expr::lit(0));
    b.jump(done);

    b.select(r_data);
    b.reply(Expr::buf(
        v.fifo,
        Expr::bin(BinOp::And, Expr::var(v.data_pos), Expr::lit(FD_SECTOR_LEN - 1)),
    ));
    b.set_var(v.data_pos, Expr::bin(BinOp::Add, Expr::var(v.data_pos), Expr::lit(1)));
    b.branch(Expr::bin(BinOp::Ge, Expr::var(v.data_pos), Expr::var(v.data_len)), rd_done, done);

    b.select(rd_done);
    b.set_var(v.data_state, Expr::lit(st::IDLE));
    b.set_var(v.msr, Expr::lit(MSR_RQM));
    b.intrinsic(Intrinsic::IrqLower { line: Expr::lit(FDC_IRQ) });
    b.jump(done);

    b.finish().expect("fdc pmio_read program is well-formed")
}

/// Builds the FDC at the given behaviour version.
pub fn build(version: QemuVersion) -> Device {
    let (cs, vars) = control_structure();
    let write = build_pmio_write(&vars, version);
    let read = build_pmio_read(&vars);
    Device::assemble(
        "FDC",
        version,
        cs,
        vec![(EntryPoint::PmioWrite, write), (EntryPoint::PmioRead, read)],
        vec![(AddressSpace::Pmio, FDC_BASE, 8)],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sedspec_dbl::interp::Fault;
    use sedspec_vmm::{IoRequest, VmContext};

    fn ctx() -> VmContext {
        VmContext::new(0x10000, 2048)
    }

    fn outb(d: &mut Device, c: &mut VmContext, port: u64, val: u64) {
        d.handle_io(c, &IoRequest::write(AddressSpace::Pmio, port, 1, val)).unwrap();
    }

    fn inb(d: &mut Device, c: &mut VmContext, port: u64) -> u64 {
        d.handle_io(c, &IoRequest::read(AddressSpace::Pmio, port, 1)).unwrap().reply
    }

    const DATA: u64 = 0x3f5;
    const MSR: u64 = 0x3f4;

    #[test]
    fn reset_state_has_rqm() {
        let mut d = build(QemuVersion::Patched);
        let mut c = ctx();
        assert_eq!(inb(&mut d, &mut c, MSR), MSR_RQM);
    }

    #[test]
    fn sense_interrupt_returns_two_bytes() {
        let mut d = build(QemuVersion::Patched);
        let mut c = ctx();
        outb(&mut d, &mut c, DATA, 0x08);
        assert_eq!(inb(&mut d, &mut c, MSR) & MSR_DIO, MSR_DIO);
        let st0 = inb(&mut d, &mut c, DATA);
        let track = inb(&mut d, &mut c, DATA);
        assert_eq!(st0, 0); // no pending interrupt yet
        assert_eq!(track, 0);
        assert_eq!(inb(&mut d, &mut c, MSR), MSR_RQM); // idle again
    }

    #[test]
    fn seek_updates_track_and_raises_irq() {
        let mut d = build(QemuVersion::Patched);
        let mut c = ctx();
        outb(&mut d, &mut c, DATA, 0x0f); // SEEK
        outb(&mut d, &mut c, DATA, 0x00); // drive
        outb(&mut d, &mut c, DATA, 0x07); // track 7
        assert!(c.irqs.line(FDC_IRQ as usize).is_raised());
        // SENSE INTERRUPT reports the new track.
        outb(&mut d, &mut c, DATA, 0x08);
        let st0 = inb(&mut d, &mut c, DATA);
        let track = inb(&mut d, &mut c, DATA);
        assert_eq!(st0, 0x20);
        assert_eq!(track, 7);
    }

    #[test]
    fn write_then_read_sector_round_trip() {
        let mut d = build(QemuVersion::Patched);
        let mut c = ctx();
        // Command byte (0x45 & 0x1f == WRITE), then 8 parameter bytes:
        // drv=0 C=1 H=0 R=3 N=2 EOT=18 GPL=0x1b DTL=0xff.
        for p in [0x45u64, 0, 1, 0, 3, 2, 18, 0x1b, 0xff] {
            outb(&mut d, &mut c, DATA, p);
        }
        for i in 0..512u64 {
            outb(&mut d, &mut c, DATA, (i * 7) & 0xff);
        }
        // Drain the 7 result bytes.
        for _ in 0..7 {
            inb(&mut d, &mut c, DATA);
        }
        // READ same CHS.
        for p in [0x46u64, 0, 1, 0, 3, 2, 18, 0x1b, 0xff] {
            outb(&mut d, &mut c, DATA, p);
        }
        let mut ok = true;
        for i in 0..512u64 {
            let got = inb(&mut d, &mut c, DATA);
            ok &= got == (i * 7) & 0xff;
        }
        assert!(ok, "sector data survived the disk round trip");
        assert_eq!(c.disk.write_count(), 1);
        assert_eq!(c.disk.read_count(), 1);
    }

    #[test]
    fn read_id_returns_seven_bytes() {
        let mut d = build(QemuVersion::Patched);
        let mut c = ctx();
        outb(&mut d, &mut c, DATA, 0x4a);
        outb(&mut d, &mut c, DATA, 0x00); // head/drive select
        let mut count = 0;
        while inb(&mut d, &mut c, MSR) & MSR_DIO != 0 {
            inb(&mut d, &mut c, DATA);
            count += 1;
            assert!(count <= 7);
        }
        assert_eq!(count, 7);
    }

    #[test]
    fn dor_reset_reenters_idle() {
        let mut d = build(QemuVersion::Patched);
        let mut c = ctx();
        outb(&mut d, &mut c, DATA, 0x0f); // SEEK, now in PARAMS
        outb(&mut d, &mut c, 0x3f2, 0x00); // DOR reset
        outb(&mut d, &mut c, 0x3f2, 0x0c); // out of reset
        assert_eq!(inb(&mut d, &mut c, MSR), MSR_RQM);
    }

    #[test]
    fn venom_overflows_fifo_on_vulnerable_version() {
        let mut d = build(QemuVersion::V2_3_0);
        let mut c = ctx();
        outb(&mut d, &mut c, DATA, 0x8e); // DRIVE SPECIFICATION
        let mut spilled = 0;
        // Withhold the 0xc0 terminator: data_pos grows past the FIFO
        // (and, once the clobbered data_pos goes wild, off the arena).
        for _ in 0..600 {
            match d.handle_io(&mut c, &IoRequest::write(AddressSpace::Pmio, DATA, 1, 0x01)) {
                Ok(out) => spilled += out.spills,
                Err(_) => break,
            }
        }
        assert!(spilled > 0, "Venom must corrupt fields behind the FIFO");
    }

    #[test]
    fn venom_can_escape_arena_entirely() {
        let mut d = build(QemuVersion::V2_3_0);
        let mut c = ctx();
        outb(&mut d, &mut c, DATA, 0x8e);
        let mut fault = None;
        for _ in 0..2000 {
            match d.handle_io(&mut c, &IoRequest::write(AddressSpace::Pmio, DATA, 1, 0x01)) {
                Ok(_) => {}
                Err(f) => {
                    fault = Some(f);
                    break;
                }
            }
        }
        assert!(matches!(fault, Some(Fault::Arena(_))), "unbounded data_pos crashes the device");
    }

    #[test]
    fn patched_version_resists_venom() {
        let mut d = build(QemuVersion::Patched);
        let mut c = ctx();
        outb(&mut d, &mut c, DATA, 0x8e);
        let mut spilled = 0;
        for _ in 0..600 {
            let out =
                d.handle_io(&mut c, &IoRequest::write(AddressSpace::Pmio, DATA, 1, 0x01)).unwrap();
            spilled += out.spills;
        }
        assert_eq!(spilled, 0);
        // The device stays healthy: a DOR reset returns it to idle.
        outb(&mut d, &mut c, 0x3f2, 0x00);
        outb(&mut d, &mut c, 0x3f2, 0x0c);
        assert_eq!(inb(&mut d, &mut c, MSR), MSR_RQM);
    }

    #[test]
    fn drive_spec_terminator_completes_benignly_on_both_versions() {
        for v in [QemuVersion::V2_3_0, QemuVersion::Patched] {
            let mut d = build(v);
            let mut c = ctx();
            outb(&mut d, &mut c, DATA, 0x8e);
            outb(&mut d, &mut c, DATA, 0x20); // one setting byte
            outb(&mut d, &mut c, DATA, 0xc0); // terminator
            assert_eq!(inb(&mut d, &mut c, MSR), MSR_RQM, "version {v}");
        }
    }

    #[test]
    fn unknown_command_yields_error_status() {
        let mut d = build(QemuVersion::Patched);
        let mut c = ctx();
        outb(&mut d, &mut c, DATA, 0x1e); // not a command
        assert_eq!(inb(&mut d, &mut c, DATA), 0x80);
        assert_eq!(inb(&mut d, &mut c, MSR), MSR_RQM);
    }
}
