//! Five QEMU emulated devices rebuilt on the DBL IR.
//!
//! These are the evaluation targets of the paper: the floppy disk
//! controller ([`fdc`]), USB EHCI with its attached USB device model
//! ([`ehci`]), the AMD PCNet NIC ([`pcnet`]), the SD host controller
//! ([`sdhci`]) and the 53C9X ESP SCSI controller ([`scsi`]). Each module
//! re-implements the register files, command sets and data paths of its
//! QEMU counterpart closely enough that:
//!
//! * benign guest drivers (in `sedspec-workloads`) can exercise a rich
//!   set of commands, producing realistic training traces; and
//! * the eight CVEs of the paper's Table III are *actually exploitable*:
//!   each device takes a [`QemuVersion`] knob selecting the vulnerable
//!   or patched behaviour, and the control structures use C layout so
//!   overflows corrupt adjacent fields (including function pointers).
//!
//! The uniform wrapper is [`Device`]; [`build_device`] constructs any of
//! the five by [`DeviceKind`].
//!
//! # Examples
//!
//! ```
//! use sedspec_devices::{build_device, DeviceKind, QemuVersion};
//! use sedspec_vmm::{AddressSpace, IoRequest, VmContext};
//!
//! let mut fdc = build_device(DeviceKind::Fdc, QemuVersion::V2_3_0);
//! let mut ctx = VmContext::new(0x10000, 64);
//! // Read the FDC main status register.
//! let req = IoRequest::read(AddressSpace::Pmio, 0x3f4, 1);
//! let out = fdc.handle_io(&mut ctx, &req).unwrap();
//! assert_eq!(out.reply & 0x80, 0x80); // RQM set after reset
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod device;
pub mod ehci;
pub mod fdc;
pub mod machine;
pub mod pcnet;
pub mod scsi;
pub mod sdhci;
mod version;

pub use device::{Device, EntryPoint};
pub use version::QemuVersion;

/// The five reproduced devices.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum DeviceKind {
    /// Floppy disk controller (`fdc`), the Venom target.
    Fdc,
    /// USB EHCI host controller with attached USB device (`ehci`).
    UsbEhci,
    /// AMD PCNet PCI network adapter (`pcnet`).
    Pcnet,
    /// SD host controller interface (`sdhci`).
    Sdhci,
    /// 53C9X ESP SCSI controller (`scsi`).
    Scsi,
}

impl DeviceKind {
    /// All five kinds, in the paper's Table III order.
    pub fn all() -> [DeviceKind; 5] {
        [
            DeviceKind::Fdc,
            DeviceKind::UsbEhci,
            DeviceKind::Pcnet,
            DeviceKind::Sdhci,
            DeviceKind::Scsi,
        ]
    }

    /// The device's display name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            DeviceKind::Fdc => "FDC",
            DeviceKind::UsbEhci => "USB EHCI",
            DeviceKind::Pcnet => "PCNet",
            DeviceKind::Sdhci => "SDHCI",
            DeviceKind::Scsi => "SCSI",
        }
    }

    /// Whether this is a storage device in the paper's classification
    /// (everything except PCNet).
    pub fn is_storage(self) -> bool {
        self != DeviceKind::Pcnet
    }
}

impl std::fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Builds a device of the given kind at the given QEMU behaviour version.
pub fn build_device(kind: DeviceKind, version: QemuVersion) -> Device {
    match kind {
        DeviceKind::Fdc => fdc::build(version),
        DeviceKind::UsbEhci => ehci::build(version),
        DeviceKind::Pcnet => pcnet::build(version),
        DeviceKind::Sdhci => sdhci::build(version),
        DeviceKind::Scsi => scsi::build(version),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_devices_build_at_all_versions() {
        for kind in DeviceKind::all() {
            for v in QemuVersion::all() {
                let d = build_device(kind, v);
                assert!(!d.programs().is_empty(), "{kind} at {v} has programs");
            }
        }
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(DeviceKind::Fdc.name(), "FDC");
        assert_eq!(DeviceKind::UsbEhci.to_string(), "USB EHCI");
        assert!(DeviceKind::Sdhci.is_storage());
        assert!(!DeviceKind::Pcnet.is_storage());
    }
}
