//! A machine: several emulated devices behind one bus.
//!
//! The evaluation drives devices individually, but a real VM hosts many
//! at once; [`Machine`] composes the substrate pieces — one
//! [`VmContext`], a [`Bus`] routing guest accesses by address, and any
//! number of attached [`Device`]s.

use std::collections::BTreeMap;

use sedspec_dbl::interp::{ExecOutcome, Fault};
use sedspec_vmm::{AddressSpace, Bus, IoRequest, RegionId, VmContext, VmmError};

use crate::Device;

/// Index of an attached device within a machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceId(pub usize);

/// Several devices behind one bus and one VM context.
///
/// # Examples
///
/// ```
/// use sedspec_devices::{build_device, machine::Machine, DeviceKind, QemuVersion};
/// use sedspec_vmm::{AddressSpace, IoRequest};
///
/// let mut m = Machine::new(0x100000, 4096);
/// let fdc = m.attach(build_device(DeviceKind::Fdc, QemuVersion::Patched)).unwrap();
/// let sdhci = m.attach(build_device(DeviceKind::Sdhci, QemuVersion::Patched)).unwrap();
///
/// // The bus routes each access to the right device.
/// let msr = m.handle_io(&IoRequest::read(AddressSpace::Pmio, 0x3f4, 1)).unwrap();
/// assert_eq!(msr.reply & 0x80, 0x80);
/// let prnsts = m.handle_io(&IoRequest::read(AddressSpace::Mmio, 0x3024, 4)).unwrap();
/// assert_eq!(prnsts.reply, 0);
/// # let _ = (fdc, sdhci);
/// ```
#[derive(Debug)]
pub struct Machine {
    /// The shared VM context (guest memory, IRQs, clock, backends).
    pub ctx: VmContext,
    bus: Bus,
    devices: Vec<Device>,
    by_region: BTreeMap<RegionId, usize>,
}

impl Machine {
    /// A machine with `mem_size` bytes of guest memory and a disk of
    /// `disk_sectors` sectors.
    pub fn new(mem_size: usize, disk_sectors: usize) -> Self {
        Machine {
            ctx: VmContext::new(mem_size, disk_sectors),
            bus: Bus::new(),
            devices: Vec::new(),
            by_region: BTreeMap::new(),
        }
    }

    /// Attaches a device, claiming its bus regions.
    ///
    /// # Errors
    ///
    /// Returns [`VmmError::RegionOverlap`] if the device's regions clash
    /// with an already attached device; nothing is registered in that case.
    pub fn attach(&mut self, device: Device) -> Result<DeviceId, VmmError> {
        // Validate all regions before committing any.
        let mut probe = Bus::new();
        for r in self.bus.regions() {
            probe.register(r.space, r.base, r.len, r.tag.clone())?;
        }
        for &(space, base, len) in &device.regions {
            probe.register(space, base, len, device.name.clone())?;
        }
        let idx = self.devices.len();
        for &(space, base, len) in &device.regions {
            let id = self.bus.register(space, base, len, device.name.clone())?;
            self.by_region.insert(id, idx);
        }
        // A device with a receive path claims the frame pseudo-space.
        if device.route(&IoRequest::net_frame(Vec::new())).is_some() {
            let id = self.bus.register(AddressSpace::NetFrame, 0, 0, device.name.clone())?;
            self.by_region.insert(id, idx);
        }
        self.devices.push(device);
        Ok(DeviceId(idx))
    }

    /// Number of attached devices.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// The attached device with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` came from a different machine.
    pub fn device(&self, id: DeviceId) -> &Device {
        &self.devices[id.0]
    }

    /// Mutable access to an attached device.
    ///
    /// # Panics
    ///
    /// Panics if `id` came from a different machine.
    pub fn device_mut(&mut self, id: DeviceId) -> &mut Device {
        &mut self.devices[id.0]
    }

    /// The device a request routes to, if any claims it.
    pub fn route(&self, req: &IoRequest) -> Option<DeviceId> {
        let region = self.bus.route(req).ok()?;
        self.by_region.get(&region).map(|&i| DeviceId(i))
    }

    /// Services a guest I/O request through the bus.
    ///
    /// Unmapped accesses behave like real hardware: reads return all
    /// ones, writes are ignored.
    ///
    /// # Errors
    ///
    /// Returns the device's [`Fault`] if it crashes.
    pub fn handle_io(&mut self, req: &IoRequest) -> Result<ExecOutcome, Fault> {
        match self.route(req) {
            Some(DeviceId(idx)) => self.devices[idx].handle_io(&mut self.ctx, req),
            None => Ok(ExecOutcome {
                reply: if req.is_read() { u64::MAX } else { 0 },
                ..ExecOutcome::default()
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_device, DeviceKind, QemuVersion};

    fn full_machine() -> Machine {
        let mut m = Machine::new(0x100000, 4096);
        for kind in DeviceKind::all() {
            m.attach(build_device(kind, QemuVersion::Patched)).unwrap();
        }
        m
    }

    #[test]
    fn all_five_devices_coexist() {
        let mut m = full_machine();
        assert_eq!(m.device_count(), 5);
        // FDC status.
        let out = m.handle_io(&IoRequest::read(AddressSpace::Pmio, 0x3f4, 1)).unwrap();
        assert_eq!(out.reply & 0x80, 0x80);
        // SCSI flags register.
        let out = m.handle_io(&IoRequest::read(AddressSpace::Pmio, 0xc07, 1)).unwrap();
        assert_eq!(out.reply, 0);
        // EHCI port status.
        let out = m.handle_io(&IoRequest::read(AddressSpace::Mmio, 0x2024, 4)).unwrap();
        assert_eq!(out.reply, 0x1000);
    }

    #[test]
    fn frames_route_to_the_nic() {
        let mut m = full_machine();
        let req = IoRequest::net_frame(vec![0u8; 64]);
        let id = m.route(&req).expect("a NIC claims frames");
        assert_eq!(m.device(id).name, "PCNet");
        // Stopped NIC drops the frame without fault.
        assert!(m.handle_io(&req).is_ok());
    }

    #[test]
    fn unmapped_reads_float_high() {
        let mut m = full_machine();
        let out = m.handle_io(&IoRequest::read(AddressSpace::Pmio, 0x9999, 1)).unwrap();
        assert_eq!(out.reply, u64::MAX);
        let out = m.handle_io(&IoRequest::write(AddressSpace::Pmio, 0x9999, 1, 5)).unwrap();
        assert_eq!(out.reply, 0);
    }

    #[test]
    fn conflicting_attachment_is_refused_atomically() {
        let mut m = Machine::new(0x1000, 16);
        m.attach(build_device(DeviceKind::Fdc, QemuVersion::Patched)).unwrap();
        let regions_before = m.device_count();
        let err = m.attach(build_device(DeviceKind::Fdc, QemuVersion::V2_3_0));
        assert!(matches!(err, Err(VmmError::RegionOverlap { .. })));
        assert_eq!(m.device_count(), regions_before);
        // The machine still works.
        assert!(m.handle_io(&IoRequest::read(AddressSpace::Pmio, 0x3f4, 1)).is_ok());
    }

    #[test]
    fn devices_share_one_disk_backend() {
        let mut m = Machine::new(0x100000, 4096);
        let _fdc = m.attach(build_device(DeviceKind::Fdc, QemuVersion::Patched)).unwrap();
        let _scsi = m.attach(build_device(DeviceKind::Scsi, QemuVersion::Patched)).unwrap();
        // Write sector 30 via SCSI WRITE(10), then read it back through
        // the FDC: its linear mapping is track*18 + sector, so sector 30
        // is CHS track 1, sector 12.
        m.ctx.mem.write_bytes(0x8000, &[0x77u8; 512]).unwrap();
        m.handle_io(&IoRequest::write(AddressSpace::Pmio, 0xc03, 1, 0x01)).unwrap(); // FLUSH
        for b in [0x2au64, 0, 0, 0, 0, 30, 0, 0, 1, 0] {
            m.handle_io(&IoRequest::write(AddressSpace::Pmio, 0xc02, 1, b)).unwrap();
        }
        m.handle_io(&IoRequest::write(AddressSpace::Pmio, 0xc03, 1, 0x42)).unwrap(); // SELATN
        m.handle_io(&IoRequest::write(AddressSpace::Pmio, 0xc08, 2, 0x8000)).unwrap();
        m.handle_io(&IoRequest::write(AddressSpace::Pmio, 0xc03, 1, 0x10)).unwrap();
        assert_eq!(m.ctx.disk.read_sector(30).unwrap()[0], 0x77);

        // FDC READ of track 1 sector 12 hits the same backend sector.
        for p in [0x46u64, 0, 1, 0, 12, 2, 18, 0x1b, 0xff] {
            m.handle_io(&IoRequest::write(AddressSpace::Pmio, 0x3f5, 1, p)).unwrap();
        }
        let first = m.handle_io(&IoRequest::read(AddressSpace::Pmio, 0x3f5, 1)).unwrap();
        assert_eq!(first.reply, 0x77);
    }
}
