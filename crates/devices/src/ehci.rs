//! USB EHCI host controller with an attached USB device model
//! (QEMU `hw/usb/hcd-ehci.c` + `hw/usb/core.c`).
//!
//! The guest programs the operational registers over MMIO, queues
//! transfer descriptors (qTDs) in memory, and rings a doorbell; the
//! controller fetches the qTD and dispatches its token PID to the
//! attached device's control-transfer state machine: SETUP writes the
//! 8-byte setup packet into `setup_buf`, IN/OUT move the data stage
//! through `data_buf` at `setup_index`, bounded by `setup_len`.
//!
//! **CVE-2020-14364** ([`QemuVersion::V5_1_0`] and earlier): in
//! `do_token_setup` the device stores `setup_len` (from the guest's
//! `wLength`) and advances the setup state *before* validating it
//! against `sizeof(data_buf)`. An oversized `wLength` therefore persists,
//! and subsequent IN/OUT tokens walk `setup_index` past the 4096-byte
//! `data_buf` — first reading out-of-bounds (information leak), then on
//! OUT overwriting the fields behind the buffer: `setup_index` itself
//! (the "negative integer" instance the paper describes) and the `irq`
//! function pointer dispatched at transfer completion.

use sedspec_dbl::builder::ProgramBuilder;
use sedspec_dbl::ir::Width::{W32, W8};
use sedspec_dbl::ir::{BinOp, BufId, Expr, Intrinsic, Program, VarId};
use sedspec_dbl::state::ControlStructure;
use sedspec_vmm::AddressSpace;

use crate::{Device, EntryPoint, QemuVersion};

/// EHCI interrupt line.
pub const EHCI_IRQ: u64 = 10;
/// Base of the claimed MMIO window.
pub const EHCI_BASE: u64 = 0x2000;
/// USB device data buffer size (QEMU `USBDevice::data_buf`).
pub const DATA_BUF_SIZE: u64 = 4096;
/// Function-pointer id of the legitimate completion handler.
pub const IRQ_HANDLER_FN: u64 = 0x60;

/// Operational register offsets.
pub mod reg {
    /// USB command.
    pub const USBCMD: u64 = 0x00;
    /// USB status (write 1 to clear).
    pub const USBSTS: u64 = 0x04;
    /// Interrupt enable.
    pub const USBINTR: u64 = 0x08;
    /// Frame index.
    pub const FRINDEX: u64 = 0x0c;
    /// Async schedule list head.
    pub const ASYNCLISTADDR: u64 = 0x18;
    /// Doorbell: process the qTD at ASYNCLISTADDR.
    pub const DOORBELL: u64 = 0x20;
    /// Port status/control.
    pub const PORTSC: u64 = 0x24;
}

/// Token PIDs.
pub mod pid {
    /// SETUP token.
    pub const SETUP: u64 = 0x2d;
    /// IN token (device to guest).
    pub const IN: u64 = 0x69;
    /// OUT token (guest to device).
    pub const OUT: u64 = 0xe1;
}

/// USBSTS bits.
pub mod sts {
    /// Transaction interrupt.
    pub const INT: u64 = 0x01;
    /// Error interrupt.
    pub const ERR: u64 = 0x02;
}

/// Setup FSM states.
mod setup_state {
    pub const IDLE: u64 = 0;
    pub const DATA: u64 = 1;
    pub const ACK: u64 = 2;
}

struct Vars {
    usbcmd: VarId,
    usbsts: VarId,
    usbintr: VarId,
    frindex: VarId,
    asynclistaddr: VarId,
    portsc: VarId,
    qtd_token: VarId,
    qtd_buf: VarId,
    dev_addr: VarId,
    config: VarId,
    setup_state_v: VarId,
    xfer_len: VarId,
    xfer_rem: VarId,
    setup_buf: BufId,
    setup_len: VarId,
    data_buf: BufId,
    setup_index: VarId,
    irq: VarId,
}

fn control_structure() -> (ControlStructure, Vars) {
    let mut cs = ControlStructure::new("EHCIState+USBDevice");
    let usbcmd = cs.register("usbcmd", W32, 0);
    let usbsts = cs.register("usbsts", W32, 0);
    let usbintr = cs.register("usbintr", W32, 0);
    let frindex = cs.register("frindex", W32, 0);
    let asynclistaddr = cs.register("asynclistaddr", W32, 0);
    let portsc = cs.register("portsc", W32, 0x1000); // port powered
    let qtd_token = cs.var("qtd_token", W32);
    let qtd_buf = cs.var("qtd_buf", W32);
    let dev_addr = cs.var("dev_addr", W8);
    let config = cs.var("config", W8);
    let setup_state_v = cs.var("setup_state", W8);
    let xfer_len = cs.var("xfer_len", W32);
    let xfer_rem = cs.var_signed("xfer_rem", W32);
    let setup_buf = cs.buffer("setup_buf", 8);
    let setup_len = cs.var_signed("setup_len", W32);
    // The CVE-critical adjacency: data_buf, then setup_index, then irq.
    let data_buf = cs.buffer("data_buf", DATA_BUF_SIZE as usize);
    let setup_index = cs.var_signed("setup_index", W32);
    let irq = cs.fn_ptr("irq", IRQ_HANDLER_FN);
    // The rest of QEMU's USBDevice (string table, endpoint state, ...):
    // out-of-bounds reads leak from here instead of crashing outright.
    let _trailing = cs.buffer("usbdevice_tail", 1024);
    (
        cs,
        Vars {
            usbcmd,
            usbsts,
            usbintr,
            frindex,
            asynclistaddr,
            portsc,
            qtd_token,
            qtd_buf,
            dev_addr,
            config,
            setup_state_v,
            xfer_len,
            xfer_rem,
            setup_buf,
            setup_len,
            data_buf,
            setup_index,
            irq,
        },
    )
}

fn build_mmio_write(v: &Vars, version: QemuVersion) -> Program {
    let unvalidated_setup_len = version.has_vulnerability(QemuVersion::V5_1_0); // CVE-2020-14364
    let mut b = ProgramBuilder::new("ehci_mmio_write");

    let entry = b.entry_block("entry");
    let done = b.exit_block("done");
    let cmd_w = b.block("usbcmd_write");
    let sts_w = b.block("usbsts_ack");
    let intr_w = b.block("usbintr_write");
    let frindex_w = b.block("frindex_write");
    let async_w = b.block("asynclistaddr_write");
    let portsc_w = b.block("portsc_write");
    let port_reset = b.cmd_end_block("port_reset");
    let doorbell = b.block("doorbell");
    let fetch_qtd = b.block("qtd_fetch");
    let token_dispatch = b.cmd_decision_block("token_dispatch");
    let tok_setup = b.block("do_token_setup");
    let setup_check = b.block("setup_length_check");
    let setup_err = b.block("setup_stall");
    let setup_decode = b.block("setup_request_decode");
    let desc_dispatch = b.block("descriptor_type_dispatch");
    let fill_dev_desc = b.block("fill_device_descriptor");
    let fill_conf_desc = b.block("fill_config_descriptor");
    let fill_str_desc = b.block("fill_string_descriptor");
    let chk_set_addr = b.block("check_set_address");
    let do_set_addr = b.block("set_address");
    let chk_set_conf = b.block("check_set_configuration");
    let do_set_conf = b.block("set_configuration");
    let setup_done = b.block("setup_complete");
    let tok_in = b.block("do_token_in");
    let in_active = b.block("in_data_stage");
    let in_clamp = b.block("in_clamp_to_remaining");
    let in_copy = b.block("in_copy_to_guest");
    let in_last = b.cmd_end_block("in_transfer_complete");
    let tok_out = b.block("do_token_out");
    let out_ack = b.cmd_end_block("out_status_ack");
    let out_nak = b.block("out_nak");
    let out_active = b.block("out_data_stage");
    let out_clamp = b.block("out_clamp_to_remaining");
    let out_copy = b.block("out_copy_from_guest");
    let out_last = b.cmd_end_block("out_transfer_complete");
    let nak = b.block("token_nak");
    let irq_fn = b.block("completion_handler");
    let irq_ret = b.exit_block("irq_return");

    b.register_fn(IRQ_HANDLER_FN, irq_fn);

    b.select(entry);
    b.switch(
        Expr::bin(BinOp::And, Expr::IoAddr, Expr::lit(0x3f)),
        vec![
            (reg::USBCMD, cmd_w),
            (reg::USBSTS, sts_w),
            (reg::USBINTR, intr_w),
            (reg::FRINDEX, frindex_w),
            (reg::ASYNCLISTADDR, async_w),
            (reg::DOORBELL, doorbell),
            (reg::PORTSC, portsc_w),
        ],
        done,
    );

    b.select(cmd_w);
    b.set_var(v.usbcmd, Expr::IoData);
    b.jump(done);

    b.select(sts_w);
    b.set_var(
        v.usbsts,
        Expr::bin(
            BinOp::And,
            Expr::var(v.usbsts),
            Expr::un(sedspec_dbl::ir::UnOp::Not, Expr::IoData),
        ),
    );
    b.jump(done);

    b.select(intr_w);
    b.set_var(v.usbintr, Expr::IoData);
    b.jump(done);

    b.select(frindex_w);
    b.set_var(v.frindex, Expr::IoData);
    b.jump(done);

    b.select(async_w);
    b.set_var(v.asynclistaddr, Expr::bin(BinOp::And, Expr::IoData, Expr::lit(0xffff_ffe0)));
    b.jump(done);

    b.select(portsc_w);
    b.set_var(v.portsc, Expr::IoData);
    // Port reset bit resets the attached device.
    b.branch(
        Expr::ne(Expr::bin(BinOp::And, Expr::IoData, Expr::lit(0x100)), Expr::lit(0)),
        port_reset,
        done,
    );
    b.select(port_reset);
    b.set_var(v.dev_addr, Expr::lit(0));
    b.set_var(v.config, Expr::lit(0));
    b.set_var(v.setup_state_v, Expr::lit(setup_state::IDLE));
    b.set_var(v.setup_len, Expr::lit(0));
    b.set_var(v.setup_index, Expr::lit(0));
    b.jump(done);

    // Doorbell: only when the schedule is running.
    b.select(doorbell);
    b.branch(
        Expr::eq(Expr::bin(BinOp::And, Expr::var(v.usbcmd), Expr::lit(1)), Expr::lit(0)),
        done,
        fetch_qtd,
    );

    b.select(fetch_qtd);
    b.intrinsic(Intrinsic::DmaLoadVar {
        var: v.qtd_token,
        gpa: Expr::var(v.asynclistaddr),
        width: W32,
    });
    b.intrinsic(Intrinsic::DmaLoadVar {
        var: v.qtd_buf,
        gpa: Expr::bin(BinOp::Add, Expr::var(v.asynclistaddr), Expr::lit(4)),
        width: W32,
    });
    b.jump(token_dispatch);

    // The command decision block: dispatch on the token PID.
    b.select(token_dispatch);
    b.switch(
        Expr::bin(BinOp::And, Expr::var(v.qtd_token), Expr::lit(0xff)),
        vec![(pid::SETUP, tok_setup), (pid::IN, tok_in), (pid::OUT, tok_out)],
        nak,
    );

    // --- SETUP ---
    b.select(tok_setup);
    b.intrinsic(Intrinsic::DmaToBuf {
        buf: v.setup_buf,
        buf_off: Expr::lit(0),
        gpa: Expr::var(v.qtd_buf),
        len: Expr::lit(8),
    });
    let wlength = Expr::bin(
        BinOp::Or,
        Expr::buf(v.setup_buf, Expr::lit(6)),
        Expr::bin(BinOp::Shl, Expr::buf(v.setup_buf, Expr::lit(7)), Expr::lit(8)),
    );
    if unvalidated_setup_len {
        // Vulnerable: commit setup_len and the FSM state, then check.
        b.intrinsic(Intrinsic::Note("CVE-2020-14364: setup_len stored before validation".into()));
        b.set_var(v.setup_len, wlength.clone());
        b.set_var(v.setup_index, Expr::lit(0));
        b.set_var(v.setup_state_v, Expr::lit(setup_state::DATA));
        b.jump(setup_check);
    } else {
        // Patched: validate first; only then commit.
        let ok = b.block("setup_commit");
        b.branch(Expr::bin(BinOp::Gt, wlength.clone(), Expr::lit(DATA_BUF_SIZE)), setup_err, ok);
        b.select(ok);
        b.set_var(v.setup_len, wlength);
        b.set_var(v.setup_index, Expr::lit(0));
        b.set_var(v.setup_state_v, Expr::lit(setup_state::DATA));
        b.jump(setup_decode);
    }

    b.select(setup_check);
    b.branch(
        Expr::bin(BinOp::Gt, Expr::var(v.setup_len), Expr::lit(DATA_BUF_SIZE)),
        setup_err,
        setup_decode,
    );

    b.select(setup_err);
    b.set_var(v.usbsts, Expr::bin(BinOp::Or, Expr::var(v.usbsts), Expr::lit(sts::ERR)));
    b.jump(done);

    // Decode the standard request.
    b.select(setup_decode);
    b.branch(
        Expr::eq(Expr::buf(v.setup_buf, Expr::lit(1)), Expr::lit(0x06)),
        desc_dispatch,
        chk_set_addr,
    );

    b.select(desc_dispatch);
    b.switch(
        Expr::buf(v.setup_buf, Expr::lit(3)),
        vec![(1, fill_dev_desc), (2, fill_conf_desc), (3, fill_str_desc)],
        setup_done,
    );

    // A fixed 18-byte device descriptor (full-speed hub-less device).
    b.select(fill_dev_desc);
    for (i, byte) in [18u64, 1, 0, 2, 0, 0, 0, 64, 0x27, 0x06, 0x01, 0x00, 0x10, 0x05, 1, 2, 3, 1]
        .into_iter()
        .enumerate()
    {
        b.buf_store(v.data_buf, Expr::lit(i as u64), Expr::lit(byte));
    }
    b.jump(setup_done);

    b.select(fill_conf_desc);
    for (i, byte) in [9u64, 2, 32, 0, 1, 1, 0, 0xa0, 50].into_iter().enumerate() {
        b.buf_store(v.data_buf, Expr::lit(i as u64), Expr::lit(byte));
    }
    b.jump(setup_done);

    b.select(fill_str_desc);
    for (i, byte) in [4u64, 3, 0x09, 0x04].into_iter().enumerate() {
        b.buf_store(v.data_buf, Expr::lit(i as u64), Expr::lit(byte));
    }
    b.jump(setup_done);

    b.select(chk_set_addr);
    b.branch(
        Expr::eq(Expr::buf(v.setup_buf, Expr::lit(1)), Expr::lit(0x05)),
        do_set_addr,
        chk_set_conf,
    );
    b.select(do_set_addr);
    b.set_var(v.dev_addr, Expr::buf(v.setup_buf, Expr::lit(2)));
    b.set_var(v.setup_state_v, Expr::lit(setup_state::ACK));
    b.jump(setup_done);

    b.select(chk_set_conf);
    b.branch(
        Expr::eq(Expr::buf(v.setup_buf, Expr::lit(1)), Expr::lit(0x09)),
        do_set_conf,
        setup_done,
    );
    b.select(do_set_conf);
    b.set_var(v.config, Expr::buf(v.setup_buf, Expr::lit(2)));
    b.set_var(v.setup_state_v, Expr::lit(setup_state::ACK));
    b.jump(setup_done);

    b.select(setup_done);
    b.set_var(v.usbsts, Expr::bin(BinOp::Or, Expr::var(v.usbsts), Expr::lit(sts::INT)));
    b.indirect_call(v.irq, irq_ret);

    // --- IN: data stage, device to guest ---
    b.select(tok_in);
    b.branch(Expr::eq(Expr::var(v.setup_state_v), Expr::lit(setup_state::DATA)), in_active, nak);

    b.select(in_active);
    b.set_var(
        v.xfer_len,
        Expr::bin(
            BinOp::And,
            Expr::bin(BinOp::Shr, Expr::var(v.qtd_token), Expr::lit(16)),
            Expr::lit(0x7fff),
        ),
    );
    b.set_var(v.xfer_rem, Expr::bin(BinOp::Sub, Expr::var(v.setup_len), Expr::var(v.setup_index)));
    b.branch(Expr::bin(BinOp::Gt, Expr::var(v.xfer_len), Expr::var(v.xfer_rem)), in_clamp, in_copy);
    b.select(in_clamp);
    b.set_var(v.xfer_len, Expr::var(v.xfer_rem));
    b.jump(in_copy);

    b.select(in_copy);
    b.intrinsic(Intrinsic::DmaFromBuf {
        buf: v.data_buf,
        buf_off: Expr::var(v.setup_index),
        gpa: Expr::var(v.qtd_buf),
        len: Expr::var(v.xfer_len),
    });
    b.set_var(
        v.setup_index,
        Expr::bin(BinOp::Add, Expr::var(v.setup_index), Expr::var(v.xfer_len)),
    );
    b.branch(Expr::bin(BinOp::Ge, Expr::var(v.setup_index), Expr::var(v.setup_len)), in_last, done);

    b.select(in_last);
    b.set_var(v.setup_state_v, Expr::lit(setup_state::ACK));
    b.set_var(v.usbsts, Expr::bin(BinOp::Or, Expr::var(v.usbsts), Expr::lit(sts::INT)));
    b.indirect_call(v.irq, irq_ret);

    // --- OUT: data stage (guest to device) or status ACK ---
    b.select(tok_out);
    b.branch(
        Expr::eq(Expr::var(v.setup_state_v), Expr::lit(setup_state::DATA)),
        out_active,
        out_nak,
    );
    b.select(out_nak);
    b.branch(Expr::eq(Expr::var(v.setup_state_v), Expr::lit(setup_state::ACK)), out_ack, nak);
    b.select(out_ack);
    b.set_var(v.setup_state_v, Expr::lit(setup_state::IDLE));
    b.set_var(v.usbsts, Expr::bin(BinOp::Or, Expr::var(v.usbsts), Expr::lit(sts::INT)));
    b.jump(done);

    b.select(out_active);
    b.set_var(
        v.xfer_len,
        Expr::bin(
            BinOp::And,
            Expr::bin(BinOp::Shr, Expr::var(v.qtd_token), Expr::lit(16)),
            Expr::lit(0x7fff),
        ),
    );
    b.set_var(v.xfer_rem, Expr::bin(BinOp::Sub, Expr::var(v.setup_len), Expr::var(v.setup_index)));
    b.branch(
        Expr::bin(BinOp::Gt, Expr::var(v.xfer_len), Expr::var(v.xfer_rem)),
        out_clamp,
        out_copy,
    );
    b.select(out_clamp);
    b.set_var(v.xfer_len, Expr::var(v.xfer_rem));
    b.jump(out_copy);

    b.select(out_copy);
    // The overflow site: data_buf indexed by setup_index, bounded only
    // by the (attacker-controlled, unvalidated) setup_len.
    b.intrinsic(Intrinsic::DmaToBuf {
        buf: v.data_buf,
        buf_off: Expr::var(v.setup_index),
        gpa: Expr::var(v.qtd_buf),
        len: Expr::var(v.xfer_len),
    });
    b.set_var(
        v.setup_index,
        Expr::bin(BinOp::Add, Expr::var(v.setup_index), Expr::var(v.xfer_len)),
    );
    b.branch(
        Expr::bin(BinOp::Ge, Expr::var(v.setup_index), Expr::var(v.setup_len)),
        out_last,
        done,
    );

    b.select(out_last);
    b.set_var(v.setup_state_v, Expr::lit(setup_state::ACK));
    b.set_var(v.usbsts, Expr::bin(BinOp::Or, Expr::var(v.usbsts), Expr::lit(sts::INT)));
    b.indirect_call(v.irq, irq_ret);

    b.select(nak);
    b.jump(done);

    b.select(irq_fn);
    b.intrinsic(Intrinsic::IrqRaise { line: Expr::lit(EHCI_IRQ) });
    b.ret();

    b.finish().expect("ehci mmio_write program is well-formed")
}

fn build_mmio_read(v: &Vars) -> Program {
    let mut b = ProgramBuilder::new("ehci_mmio_read");
    let entry = b.entry_block("entry");
    let done = b.exit_block("done");
    let blocks: Vec<(u64, VarId, &str)> = vec![
        (reg::USBCMD, v.usbcmd, "read_usbcmd"),
        (reg::USBSTS, v.usbsts, "read_usbsts"),
        (reg::USBINTR, v.usbintr, "read_usbintr"),
        (reg::FRINDEX, v.frindex, "read_frindex"),
        (reg::ASYNCLISTADDR, v.asynclistaddr, "read_asynclistaddr"),
        (reg::PORTSC, v.portsc, "read_portsc"),
    ];
    let ids: Vec<_> = blocks.iter().map(|&(off, var, name)| (off, var, b.block(name))).collect();
    let other = b.block("read_other");
    b.select(entry);
    b.switch(
        Expr::bin(BinOp::And, Expr::IoAddr, Expr::lit(0x3f)),
        ids.iter().map(|&(off, _, blk)| (off, blk)).collect(),
        other,
    );
    for &(_, var, blk) in &ids {
        b.select(blk);
        b.reply(Expr::var(var));
        b.jump(done);
    }
    b.select(other);
    b.reply(Expr::lit(0));
    b.jump(done);
    b.finish().expect("ehci mmio_read program is well-formed")
}

/// Builds the EHCI model at the given behaviour version.
pub fn build(version: QemuVersion) -> Device {
    let (cs, vars) = control_structure();
    let write = build_mmio_write(&vars, version);
    let read = build_mmio_read(&vars);
    Device::assemble(
        "USB EHCI",
        version,
        cs,
        vec![(EntryPoint::MmioWrite, write), (EntryPoint::MmioRead, read)],
        vec![(AddressSpace::Mmio, EHCI_BASE, 0x40)],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sedspec_dbl::interp::Fault;
    use sedspec_vmm::{IoRequest, VmContext};

    fn ctx() -> VmContext {
        VmContext::new(0x100000, 16)
    }

    fn w32(d: &mut Device, c: &mut VmContext, off: u64, val: u64) -> Result<u64, Fault> {
        d.handle_io(c, &IoRequest::write(AddressSpace::Mmio, EHCI_BASE + off, 4, val))
            .map(|o| o.reply)
    }

    fn r32(d: &mut Device, c: &mut VmContext, off: u64) -> u64 {
        d.handle_io(c, &IoRequest::read(AddressSpace::Mmio, EHCI_BASE + off, 4)).unwrap().reply
    }

    /// Queues a qTD (token, buffer pointer) at 0x1000 and rings the bell.
    fn submit(
        d: &mut Device,
        c: &mut VmContext,
        token: u32,
        buf: u32,
    ) -> Result<sedspec_dbl::interp::ExecOutcome, Fault> {
        c.mem.write_u32(0x1000, token).unwrap();
        c.mem.write_u32(0x1004, buf).unwrap();
        d.handle_io(c, &IoRequest::write(AddressSpace::Mmio, EHCI_BASE + reg::DOORBELL, 4, 1))
    }

    fn setup_packet(c: &mut VmContext, gpa: u64, bm: u8, req: u8, val: u16, idx: u16, len: u16) {
        c.mem
            .write_bytes(
                gpa,
                &[
                    bm,
                    req,
                    (val & 0xff) as u8,
                    (val >> 8) as u8,
                    (idx & 0xff) as u8,
                    (idx >> 8) as u8,
                    (len & 0xff) as u8,
                    (len >> 8) as u8,
                ],
            )
            .unwrap();
    }

    fn enable(d: &mut Device, c: &mut VmContext) {
        w32(d, c, reg::USBCMD, 1).unwrap();
        w32(d, c, reg::ASYNCLISTADDR, 0x1000).unwrap();
    }

    #[test]
    fn register_file_round_trips() {
        let mut d = build(QemuVersion::Patched);
        let mut c = ctx();
        w32(&mut d, &mut c, reg::USBINTR, 0x3f).unwrap();
        assert_eq!(r32(&mut d, &mut c, reg::USBINTR), 0x3f);
        assert_eq!(r32(&mut d, &mut c, reg::PORTSC), 0x1000);
    }

    #[test]
    fn get_descriptor_control_transfer() {
        let mut d = build(QemuVersion::Patched);
        let mut c = ctx();
        enable(&mut d, &mut c);
        // SETUP: GET_DESCRIPTOR(device), wLength = 18.
        setup_packet(&mut c, 0x5000, 0x80, 0x06, 0x0100, 0, 18);
        submit(&mut d, &mut c, pid::SETUP as u32, 0x5000).unwrap();
        assert_ne!(r32(&mut d, &mut c, reg::USBSTS) & sts::INT, 0);
        // IN: read the 18 bytes to guest memory at 0x6000.
        submit(&mut d, &mut c, (18 << 16) | pid::IN as u32, 0x6000).unwrap();
        let desc = c.mem.read_vec(0x6000, 18).unwrap();
        assert_eq!(desc[0], 18); // bLength
        assert_eq!(desc[1], 1); // DEVICE descriptor
        assert_eq!(&desc[8..10], &[0x27, 0x06]); // idVendor
                                                 // Status: OUT zero-length ACK.
        submit(&mut d, &mut c, pid::OUT as u32, 0).unwrap();
        assert!(c.irqs.line(EHCI_IRQ as usize).is_raised());
    }

    #[test]
    fn set_address_updates_device() {
        let mut d = build(QemuVersion::Patched);
        let mut c = ctx();
        enable(&mut d, &mut c);
        setup_packet(&mut c, 0x5000, 0x00, 0x05, 7, 0, 0);
        submit(&mut d, &mut c, pid::SETUP as u32, 0x5000).unwrap();
        // dev_addr is internal; confirm via the control structure.
        let addr_var = d.control.var_by_name("dev_addr").unwrap();
        assert_eq!(d.state.var(addr_var), 7);
    }

    #[test]
    fn port_reset_clears_device_state() {
        let mut d = build(QemuVersion::Patched);
        let mut c = ctx();
        enable(&mut d, &mut c);
        setup_packet(&mut c, 0x5000, 0x00, 0x05, 9, 0, 0);
        submit(&mut d, &mut c, pid::SETUP as u32, 0x5000).unwrap();
        w32(&mut d, &mut c, reg::PORTSC, 0x1100).unwrap();
        let addr_var = d.control.var_by_name("dev_addr").unwrap();
        assert_eq!(d.state.var(addr_var), 0);
    }

    #[test]
    fn doorbell_ignored_when_stopped() {
        let mut d = build(QemuVersion::Patched);
        let mut c = ctx();
        w32(&mut d, &mut c, reg::ASYNCLISTADDR, 0x1000).unwrap();
        setup_packet(&mut c, 0x5000, 0x80, 0x06, 0x0100, 0, 18);
        submit(&mut d, &mut c, pid::SETUP as u32, 0x5000).unwrap();
        assert_eq!(r32(&mut d, &mut c, reg::USBSTS), 0);
    }

    #[test]
    fn patched_version_stalls_oversized_wlength() {
        let mut d = build(QemuVersion::Patched);
        let mut c = ctx();
        enable(&mut d, &mut c);
        setup_packet(&mut c, 0x5000, 0x80, 0x06, 0x0100, 0, 0xffff);
        submit(&mut d, &mut c, pid::SETUP as u32, 0x5000).unwrap();
        assert_ne!(r32(&mut d, &mut c, reg::USBSTS) & sts::ERR, 0);
        // setup_len never committed: a follow-up OUT cannot overflow.
        let len_var = d.control.var_by_name("setup_len").unwrap();
        assert_eq!(d.state.var(len_var), 0);
        let out = submit(&mut d, &mut c, (0x1000 << 16) | pid::OUT as u32, 0x7000).unwrap();
        let _ = out;
        let idx_var = d.control.var_by_name("setup_index").unwrap();
        assert_eq!(d.state.var(idx_var), 0);
    }

    #[test]
    fn cve_2020_14364_out_tokens_overflow_data_buf() {
        let mut d = build(QemuVersion::V5_1_0);
        let mut c = ctx();
        enable(&mut d, &mut c);
        // Oversized wLength is committed before validation.
        setup_packet(&mut c, 0x5000, 0x00, 0x00, 0, 0, 0x1800); // 6144 > 4096
        submit(&mut d, &mut c, pid::SETUP as u32, 0x5000).unwrap();
        assert_ne!(r32(&mut d, &mut c, reg::USBSTS) & sts::ERR, 0);
        let len_var = d.control.var_by_name("setup_len").unwrap();
        assert_eq!(d.state.var(len_var), 0x1800); // the defect
                                                  // Attacker data that will land on setup_index and irq.
        c.mem.write_bytes(0x7000, &[0x41u8; 0x1000]).unwrap();
        // First OUT fills data_buf fully (4096 bytes), in bounds.
        submit(&mut d, &mut c, (0x1000 << 16) | pid::OUT as u32, 0x7000).unwrap();
        // Second OUT writes past data_buf: over setup_index, then irq.
        let r = submit(&mut d, &mut c, (0x800 << 16) | pid::OUT as u32, 0x7000);
        match r {
            Err(Fault::WildIndirectCall { .. }) | Err(Fault::Arena(_)) => {}
            Ok(out) => assert!(out.spills > 0, "expected out-of-bounds writes"),
            Err(f) => panic!("unexpected fault {f:?}"),
        }
    }

    #[test]
    fn cve_2020_14364_in_tokens_leak_past_data_buf() {
        let mut d = build(QemuVersion::V5_1_0);
        let mut c = ctx();
        enable(&mut d, &mut c);
        setup_packet(&mut c, 0x5000, 0x80, 0x06, 0x0100, 0, 0x1400); // 5120
        submit(&mut d, &mut c, pid::SETUP as u32, 0x5000).unwrap();
        // Drain more than the buffer holds: the copy reads past data_buf.
        submit(&mut d, &mut c, (0x1000 << 16) | pid::IN as u32, 0x6000).unwrap();
        let out = submit(&mut d, &mut c, (0x400 << 16) | pid::IN as u32, 0x8000);
        match out {
            Ok(o) => assert!(o.spills > 0, "expected out-of-bounds reads"),
            Err(f) => panic!("IN leak should not fault: {f:?}"),
        }
    }
}
