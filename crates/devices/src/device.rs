use sedspec_dbl::interp::{
    ExecHook, ExecLimits, ExecOutcome, ExecScratch, Fault, Interpreter, NullHook,
};
use sedspec_dbl::ir::Program;
use sedspec_dbl::layout::CodeLayout;
use sedspec_dbl::state::{ControlStructure, CsState};
use sedspec_vmm::{AddressSpace, IoDirection, IoRequest, VmContext};

use crate::QemuVersion;

/// Virtual nanoseconds charged per serviced request (vmexit + dispatch).
pub const REQUEST_BASE_NS: u64 = 500;
/// Virtual nanoseconds charged per executed basic block.
pub const BLOCK_NS: u64 = 20;

/// Guest-visible entry points of a device model.
///
/// An entry point is where the paper's IPT module "starts the tracing at
/// the location where the I/O data stream enters the target emulated
/// device"; each one is a separate DBL [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EntryPoint {
    /// Guest `in` instruction on a claimed port.
    PmioRead,
    /// Guest `out` instruction on a claimed port.
    PmioWrite,
    /// Guest load from a claimed MMIO window.
    MmioRead,
    /// Guest store to a claimed MMIO window.
    MmioWrite,
    /// A network frame delivered to the device's receive path.
    NetReceive,
}

impl EntryPoint {
    /// The entry point a request routes to, independent of address.
    pub fn of_request(req: &IoRequest) -> EntryPoint {
        match (req.space, req.direction) {
            (AddressSpace::NetFrame, _) => EntryPoint::NetReceive,
            (AddressSpace::Pmio, IoDirection::Read) => EntryPoint::PmioRead,
            (AddressSpace::Pmio, IoDirection::Write) => EntryPoint::PmioWrite,
            (AddressSpace::Mmio, IoDirection::Read) => EntryPoint::MmioRead,
            (AddressSpace::Mmio, IoDirection::Write) => EntryPoint::MmioWrite,
        }
    }

    /// Dense index for entry-dispatch tables.
    const fn index(self) -> usize {
        match self {
            EntryPoint::PmioRead => 0,
            EntryPoint::PmioWrite => 1,
            EntryPoint::MmioRead => 2,
            EntryPoint::MmioWrite => 3,
            EntryPoint::NetReceive => 4,
        }
    }

    /// Number of distinct entry points ([`EntryPoint::index`] range).
    const COUNT: usize = 5;
}

/// A complete emulated device: control structure, handler programs,
/// code layout, claimed bus regions and live state.
#[derive(Debug, Clone)]
pub struct Device {
    /// Display name, e.g. `"FDC"`.
    pub name: String,
    /// Behaviour version the model reproduces.
    pub version: QemuVersion,
    /// Control-structure declaration (QEMU's `FDCtrl`, `PCNetState`, ...).
    pub control: ControlStructure,
    programs: Vec<Program>,
    /// Entry-point dispatch table, indexed by [`EntryPoint::index`]
    /// (`usize::MAX` = no handler): request routing is two array loads.
    entries: [usize; EntryPoint::COUNT],
    layout: CodeLayout,
    /// Live control-structure instance.
    pub state: CsState,
    /// Claimed bus regions: `(space, base, len)`.
    pub regions: Vec<(AddressSpace, u64, u64)>,
    limits: ExecLimits,
    /// Reusable interpreter scratch: steady-state request dispatch
    /// allocates nothing.
    scratch: ExecScratch,
}

impl Device {
    /// Assembles a device from its parts, computing the code layout.
    pub fn assemble(
        name: impl Into<String>,
        version: QemuVersion,
        control: ControlStructure,
        handlers: Vec<(EntryPoint, Program)>,
        regions: Vec<(AddressSpace, u64, u64)>,
    ) -> Device {
        let mut programs = Vec::with_capacity(handlers.len());
        let mut entries = [usize::MAX; EntryPoint::COUNT];
        for (ep, prog) in handlers {
            entries[ep.index()] = programs.len();
            programs.push(prog);
        }
        let refs: Vec<&Program> = programs.iter().collect();
        let layout = CodeLayout::assign(&refs);
        let state = control.instantiate();
        Device {
            name: name.into(),
            version,
            control,
            programs,
            entries,
            layout,
            state,
            regions,
            limits: ExecLimits::default(),
            scratch: ExecScratch::default(),
        }
    }

    /// Overrides execution limits (e.g. to shorten DoS experiments).
    pub fn set_limits(&mut self, limits: ExecLimits) {
        self.limits = limits;
    }

    /// The handler programs, indexed by the values in the entry map.
    pub fn programs(&self) -> &[Program] {
        &self.programs
    }

    /// Borrowed program references (for `CodeLayout`/analysis helpers).
    pub fn program_refs(&self) -> Vec<&Program> {
        self.programs.iter().collect()
    }

    /// The code layout covering all handlers.
    pub fn layout(&self) -> &CodeLayout {
        &self.layout
    }

    /// Program index servicing `req`, if the device claims it.
    pub fn route(&self, req: &IoRequest) -> Option<usize> {
        let ep = EntryPoint::of_request(req);
        if ep != EntryPoint::NetReceive {
            let claimed = self.regions.iter().any(|&(space, base, len)| {
                space == req.space && req.addr >= base && req.addr - base < len
            });
            if !claimed {
                return None;
            }
        }
        match self.entries[ep.index()] {
            usize::MAX => None,
            pi => Some(pi),
        }
    }

    /// Resets the control structure to its declared initial values.
    pub fn reset(&mut self) {
        self.state = self.control.instantiate();
    }

    /// Services one I/O request without observation.
    ///
    /// # Errors
    ///
    /// Returns [`Fault`] on device crashes (arena escape, wild indirect
    /// call, step-limit DoS); `Ok` carries the reply value and ground
    /// truth counters.
    pub fn handle_io(
        &mut self,
        ctx: &mut VmContext,
        req: &IoRequest,
    ) -> Result<ExecOutcome, Fault> {
        // Concrete `NullHook`: the observer callbacks monomorphize away.
        self.dispatch(ctx, req, &mut NullHook)
    }

    /// Services one I/O request with an observer hook attached.
    ///
    /// # Errors
    ///
    /// See [`Device::handle_io`]. Requests the device does not claim are
    /// ignored (`Ok` with a zero outcome), as an unmapped access would be.
    pub fn handle_io_hooked(
        &mut self,
        ctx: &mut VmContext,
        req: &IoRequest,
        hook: &mut dyn ExecHook,
    ) -> Result<ExecOutcome, Fault> {
        self.dispatch(ctx, req, hook)
    }

    /// Services one I/O request already routed to program `pi` (a value
    /// [`Device::route`] returned for `req`), skipping the second
    /// routing pass — batched enforcement routes once while feeding the
    /// pre-walk and replays the cached indices here.
    ///
    /// # Errors
    ///
    /// See [`Device::handle_io`].
    ///
    /// # Panics
    ///
    /// Panics if `pi` is not a valid program index for this device.
    pub fn handle_io_routed(
        &mut self,
        ctx: &mut VmContext,
        req: &IoRequest,
        pi: usize,
    ) -> Result<ExecOutcome, Fault> {
        debug_assert_eq!(self.route(req), Some(pi));
        self.dispatch_at(ctx, req, pi, &mut NullHook)
    }

    fn dispatch<H: ExecHook + ?Sized>(
        &mut self,
        ctx: &mut VmContext,
        req: &IoRequest,
        hook: &mut H,
    ) -> Result<ExecOutcome, Fault> {
        let Some(pi) = self.route(req) else {
            return Ok(ExecOutcome::default());
        };
        self.dispatch_at(ctx, req, pi, hook)
    }

    fn dispatch_at<H: ExecHook + ?Sized>(
        &mut self,
        ctx: &mut VmContext,
        req: &IoRequest,
        pi: usize,
        hook: &mut H,
    ) -> Result<ExecOutcome, Fault> {
        let prog = &self.programs[pi];
        let result = Interpreter::new(prog, &self.control).with_limits(self.limits).run_scratch(
            &mut self.state,
            ctx,
            req,
            hook,
            &mut self.scratch,
        );
        if let Ok(out) = &result {
            // Virtual service time: vmexit + dispatch overhead plus
            // per-block emulation work. Bulk transfers (disk, frames)
            // charge additional time inside the interpreter intrinsics.
            ctx.clock.advance_ns(REQUEST_BASE_NS + BLOCK_NS * out.steps);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sedspec_dbl::builder::ProgramBuilder;
    use sedspec_dbl::ir::{Expr, Width};

    fn tiny_device() -> Device {
        let mut cs = ControlStructure::new("Tiny");
        let reg = cs.register("reg", Width::W8, 7);
        let mut w = ProgramBuilder::new("w");
        let e = w.entry_block("e");
        w.select(e);
        w.set_var(reg, Expr::IoData);
        w.exit();
        let mut r = ProgramBuilder::new("r");
        let e = r.entry_block("e");
        r.select(e);
        r.reply(Expr::var(reg));
        r.exit();
        Device::assemble(
            "Tiny",
            QemuVersion::Patched,
            cs,
            vec![
                (EntryPoint::PmioWrite, w.finish().unwrap()),
                (EntryPoint::PmioRead, r.finish().unwrap()),
            ],
            vec![(AddressSpace::Pmio, 0x100, 4)],
        )
    }

    #[test]
    fn routes_by_space_direction_and_range() {
        let d = tiny_device();
        assert!(d.route(&IoRequest::write(AddressSpace::Pmio, 0x101, 1, 0)).is_some());
        assert!(d.route(&IoRequest::read(AddressSpace::Pmio, 0x103, 1)).is_some());
        assert!(d.route(&IoRequest::read(AddressSpace::Pmio, 0x104, 1)).is_none());
        assert!(d.route(&IoRequest::read(AddressSpace::Mmio, 0x100, 1)).is_none());
        assert!(d.route(&IoRequest::net_frame(vec![0])).is_none());
    }

    #[test]
    fn io_round_trip_and_reset() {
        let mut d = tiny_device();
        let mut ctx = VmContext::new(0x100, 1);
        d.handle_io(&mut ctx, &IoRequest::write(AddressSpace::Pmio, 0x100, 1, 0x3c)).unwrap();
        let out = d.handle_io(&mut ctx, &IoRequest::read(AddressSpace::Pmio, 0x100, 1)).unwrap();
        assert_eq!(out.reply, 0x3c);
        d.reset();
        let out = d.handle_io(&mut ctx, &IoRequest::read(AddressSpace::Pmio, 0x100, 1)).unwrap();
        assert_eq!(out.reply, 7);
    }

    #[test]
    fn unclaimed_request_is_noop() {
        let mut d = tiny_device();
        let mut ctx = VmContext::new(0x100, 1);
        let out = d.handle_io(&mut ctx, &IoRequest::write(AddressSpace::Mmio, 0, 1, 1)).unwrap();
        assert_eq!(out, ExecOutcome::default());
    }
}
