//! 53C9X ESP SCSI controller (QEMU `hw/scsi/esp.c` + the SCSI bus layer).
//!
//! Reproduces the ESP register file (transfer counter, 16-byte FIFO,
//! command register, status/interrupt/sequence readback), the
//! select-with-ATN command flow that latches a CDB out of the FIFO and
//! dispatches the SCSI opcode, and DMA-driven TRANSFER INFORMATION for
//! READ(10)/WRITE(10) against the disk backend.
//!
//! * **CVE-2016-4439** ([`QemuVersion::V2_6_0`] and earlier): the FIFO
//!   register write path stores through a temporary copy of `ti_wptr`
//!   without bounding it against the 16-byte FIFO, so a guest that keeps
//!   writing the FIFO register walks the pointer into `cmdbuf` and the
//!   fields beyond. The patched behaviour drops bytes once the FIFO is
//!   full.
//! * **CVE-2015-5158** ([`QemuVersion::V2_4_0`] and earlier): CDB parsing
//!   accepts *reserved* group codes and falls through to execution,
//!   where the sense-response fill takes its length from an
//!   attacker-controlled CDB byte and overruns the FIFO. The patched
//!   behaviour rejects reserved groups with an illegal-command interrupt.

use sedspec_dbl::builder::ProgramBuilder;
use sedspec_dbl::ir::Width::{W16, W32, W8};
use sedspec_dbl::ir::{BinOp, BufId, Expr, Intrinsic, Program, VarId};
use sedspec_dbl::state::ControlStructure;
use sedspec_vmm::AddressSpace;

use crate::{Device, EntryPoint, QemuVersion};

/// ESP interrupt line.
pub const ESP_IRQ: u64 = 5;
/// Base of the claimed PMIO aperture.
pub const ESP_BASE: u64 = 0xc00;
/// FIFO size in bytes (`TI_BUFSZ`).
pub const FIFO_SIZE: u64 = 16;
/// CDB buffer size.
pub const CMDBUF_SIZE: u64 = 16;

/// Register offsets.
pub mod reg {
    /// Transfer count low.
    pub const TCLO: u64 = 0x0;
    /// Transfer count mid.
    pub const TCMED: u64 = 0x1;
    /// FIFO data.
    pub const FIFO: u64 = 0x2;
    /// Command.
    pub const CMD: u64 = 0x3;
    /// Status (read) / destination id (write).
    pub const STAT: u64 = 0x4;
    /// Interrupt status (read clears).
    pub const INTR: u64 = 0x5;
    /// Sequence step.
    pub const SEQ: u64 = 0x6;
    /// FIFO flags.
    pub const FLAGS: u64 = 0x7;
    /// DMA address, low 16 bits (model-specific helper register).
    pub const DMALO: u64 = 0x8;
    /// DMA address, high 16 bits.
    pub const DMAHI: u64 = 0x9;
}

/// ESP command codes (CMD register).
pub mod cmd {
    /// No operation.
    pub const NOP: u64 = 0x00;
    /// Flush FIFO.
    pub const FLUSH: u64 = 0x01;
    /// Reset device.
    pub const RESET: u64 = 0x02;
    /// Reset SCSI bus.
    pub const BUSRESET: u64 = 0x03;
    /// Transfer information.
    pub const TI: u64 = 0x10;
    /// Initiator command complete sequence.
    pub const ICCS: u64 = 0x11;
    /// Message accepted.
    pub const MSGACC: u64 = 0x12;
    /// Select with ATN.
    pub const SELATN: u64 = 0x42;
}

/// SCSI opcodes handled by the attached disk.
pub mod scsi_op {
    /// TEST UNIT READY.
    pub const TEST_UNIT_READY: u64 = 0x00;
    /// REQUEST SENSE.
    pub const REQUEST_SENSE: u64 = 0x03;
    /// INQUIRY.
    pub const INQUIRY: u64 = 0x12;
    /// READ CAPACITY (10).
    pub const READ_CAPACITY: u64 = 0x25;
    /// READ (10).
    pub const READ_10: u64 = 0x28;
    /// WRITE (10).
    pub const WRITE_10: u64 = 0x2a;
}

/// Interrupt status bits.
pub mod intr {
    /// Function complete.
    pub const FC: u64 = 0x08;
    /// Bus service.
    pub const BUS: u64 = 0x10;
    /// Illegal command.
    pub const ILL: u64 = 0x40;
}

struct Vars {
    tclo: VarId,
    tcmed: VarId,
    cmdreg: VarId,
    rstat: VarId,
    rintr: VarId,
    rseq: VarId,
    rflags: VarId,
    selid: VarId,
    dmalo: VarId,
    dmahi: VarId,
    dma_cur: VarId,
    ti_rptr: VarId,
    ti_wptr: VarId,
    cmdlen: VarId,
    cdb_group: VarId,
    pending_op: VarId,
    xfer_sector: VarId,
    xfer_count: VarId,
    fifo: BufId,
    cmdbuf: BufId,
    databuf: BufId,
}

fn control_structure() -> (ControlStructure, Vars) {
    let mut cs = ControlStructure::new("ESPState");
    let tclo = cs.register("tclo", W8, 0);
    let tcmed = cs.register("tcmed", W8, 0);
    let cmdreg = cs.register("cmdreg", W8, 0);
    let rstat = cs.register("rstat", W8, 0);
    let rintr = cs.register("rintr", W8, 0);
    let rseq = cs.register("rseq", W8, 0);
    let rflags = cs.register("rflags", W8, 0);
    let selid = cs.register("selid", W8, 0);
    let dmalo = cs.register("dmalo", W16, 0);
    let dmahi = cs.register("dmahi", W16, 0);
    let dma_cur = cs.var("dma_cur", W32);
    let ti_rptr = cs.var("ti_rptr", W32);
    let ti_wptr = cs.var("ti_wptr", W32);
    let cmdlen = cs.var("cmdlen", W32);
    let cdb_group = cs.var("cdb_group", W8);
    let pending_op = cs.var("pending_op", W8);
    let xfer_sector = cs.var("xfer_sector", W32);
    let xfer_count = cs.var("xfer_count", W16);
    // The CVE-2016-4439 adjacency: fifo, then cmdbuf, then the data
    // staging buffer and the remainder of the struct.
    let fifo = cs.buffer("fifo", FIFO_SIZE as usize);
    let cmdbuf = cs.buffer("cmdbuf", CMDBUF_SIZE as usize);
    let databuf = cs.buffer("databuf", 512);
    let _tail = cs.buffer("esp_tail", 64);
    (
        cs,
        Vars {
            tclo,
            tcmed,
            cmdreg,
            rstat,
            rintr,
            rseq,
            rflags,
            selid,
            dmalo,
            dmahi,
            dma_cur,
            ti_rptr,
            ti_wptr,
            cmdlen,
            cdb_group,
            pending_op,
            xfer_sector,
            xfer_count,
            fifo,
            cmdbuf,
            databuf,
        },
    )
}

fn build_pmio_write(v: &Vars, version: QemuVersion) -> Program {
    let fifo_unbounded = version.has_vulnerability(QemuVersion::V2_6_0); // CVE-2016-4439
    let reserved_groups_accepted = version.has_vulnerability(QemuVersion::V2_4_0); // CVE-2015-5158
                                                                                   // CVE-2016-1568 analog: the reset handler forgets to reinitialize the
                                                                                   // pending-transfer state, so a command set up before the reset can
                                                                                   // still be driven afterwards — the use-after-free shape the paper
                                                                                   // reports as SEDSpec's known miss (no anomalous state transition
                                                                                   // exists for the specification to learn).
    let stale_pending_on_reset = version.has_vulnerability(QemuVersion::V2_4_0);

    let mut b = ProgramBuilder::new("esp_pmio_write");
    let entry = b.entry_block("entry");
    let done = b.exit_block("done");
    let tclo_w = b.block("tclo_write");
    let tcmed_w = b.block("tcmed_write");
    let fifo_w = b.block("fifo_write");
    let fifo_store = b.block("fifo_store");
    let fifo_full = b.block("fifo_full_drop");
    let selid_w = b.block("selid_write");
    let dmalo_w = b.block("dmalo_write");
    let dmahi_w = b.block("dmahi_write");
    let cmd_w = b.cmd_decision_block("esp_command_dispatch");
    let c_nop = b.cmd_end_block("cmd_nop");
    let c_flush = b.cmd_end_block("cmd_flush_fifo");
    let c_reset = b.cmd_end_block("cmd_reset");
    let c_busreset = b.cmd_end_block("cmd_bus_reset");
    let c_ti = b.block("cmd_transfer_information");
    let ti_read = b.block("ti_read_sectors");
    let rd_loop = b.block("ti_read_loop");
    let ti_write = b.block("ti_write_check");
    let wr_loop = b.block("ti_write_loop");
    let ti_done = b.cmd_end_block("ti_complete");
    let c_iccs = b.cmd_end_block("cmd_iccs");
    let c_msgacc = b.cmd_end_block("cmd_msg_accepted");
    let c_selatn = b.block("cmd_select_with_atn");
    let get_cmd_loop = b.block("get_cmd_copy_loop");
    let parse_cdb = b.block("parse_cdb_group");
    let grp_dispatch = b.block("cdb_group_dispatch");
    let grp0 = b.block("cdb_group0_len6");
    let grp1 = b.block("cdb_group1_len10");
    let grp5 = b.block("cdb_group5_len12");
    let grp_other = b.block("cdb_group_reserved");
    let exec_cdb = b.cmd_decision_block("scsi_opcode_dispatch");
    let op_tur = b.cmd_end_block("scsi_test_unit_ready");
    let op_sense = b.block("scsi_request_sense");
    let op_inquiry = b.block("scsi_inquiry");
    let op_readcap = b.block("scsi_read_capacity");
    let op_read10 = b.block("scsi_read10_setup");
    let op_write10 = b.block("scsi_write10_setup");
    let op_unknown = b.block("scsi_unknown_opcode");
    let sense_fill = b.block("sense_fill_loop");
    let resp_ready = b.cmd_end_block("response_ready");

    b.select(entry);
    b.switch(
        Expr::bin(BinOp::And, Expr::IoAddr, Expr::lit(0xf)),
        vec![
            (reg::TCLO, tclo_w),
            (reg::TCMED, tcmed_w),
            (reg::FIFO, fifo_w),
            (reg::CMD, cmd_w),
            (reg::STAT, selid_w),
            (reg::DMALO, dmalo_w),
            (reg::DMAHI, dmahi_w),
        ],
        done,
    );

    b.select(tclo_w);
    b.set_var(v.tclo, Expr::IoData);
    b.jump(done);

    b.select(tcmed_w);
    b.set_var(v.tcmed, Expr::IoData);
    b.jump(done);

    b.select(selid_w);
    b.set_var(v.selid, Expr::bin(BinOp::And, Expr::IoData, Expr::lit(7)));
    b.jump(done);

    b.select(dmalo_w);
    b.set_var(v.dmalo, Expr::IoData);
    b.jump(done);

    b.select(dmahi_w);
    b.set_var(v.dmahi, Expr::IoData);
    b.jump(done);

    // FIFO register write (the CVE-2016-4439 site).
    b.select(fifo_w);
    if fifo_unbounded {
        b.intrinsic(Intrinsic::Note("CVE-2016-4439: FIFO write pointer unbounded".into()));
        b.jump(fifo_store);
    } else {
        b.branch(
            Expr::bin(BinOp::Ge, Expr::var(v.ti_wptr), Expr::lit(FIFO_SIZE)),
            fifo_full,
            fifo_store,
        );
    }
    b.select(fifo_store);
    // QEMU stores through a temporary copy of the pointer; the temp (a
    // local) is what blinds the parameter check, as in the paper.
    let wp = b.local("wptr_tmp", W32);
    b.set_local(wp, Expr::var(v.ti_wptr));
    b.buf_store(v.fifo, Expr::local(wp), Expr::IoData);
    b.set_var(v.ti_wptr, Expr::bin(BinOp::Add, Expr::local(wp), Expr::lit(1)));
    b.set_var(v.rflags, Expr::bin(BinOp::And, Expr::var(v.ti_wptr), Expr::lit(0x1f)));
    b.jump(done);

    b.select(fifo_full);
    b.jump(done);

    // ESP command dispatch.
    b.select(cmd_w);
    b.set_var(v.cmdreg, Expr::IoData);
    b.switch(
        Expr::bin(BinOp::And, Expr::IoData, Expr::lit(0x7f)),
        vec![
            (cmd::NOP, c_nop),
            (cmd::FLUSH, c_flush),
            (cmd::RESET, c_reset),
            (cmd::BUSRESET, c_busreset),
            (cmd::TI, c_ti),
            (cmd::ICCS, c_iccs),
            (cmd::MSGACC, c_msgacc),
            (cmd::SELATN, c_selatn),
        ],
        done,
    );

    b.select(c_nop);
    b.jump(done);

    b.select(c_flush);
    b.set_var(v.ti_wptr, Expr::lit(0));
    b.set_var(v.ti_rptr, Expr::lit(0));
    b.set_var(v.rflags, Expr::lit(0));
    b.jump(done);

    b.select(c_reset);
    b.set_var(v.ti_wptr, Expr::lit(0));
    b.set_var(v.ti_rptr, Expr::lit(0));
    b.set_var(v.rflags, Expr::lit(0));
    b.set_var(v.rstat, Expr::lit(0));
    b.set_var(v.rintr, Expr::lit(0));
    b.set_var(v.rseq, Expr::lit(0));
    if stale_pending_on_reset {
        b.intrinsic(Intrinsic::Note(
            "CVE-2016-1568 analog: pending transfer state not reinitialized".into(),
        ));
    } else {
        b.set_var(v.pending_op, Expr::lit(0));
        b.set_var(v.xfer_count, Expr::lit(0));
    }
    b.jump(done);

    b.select(c_busreset);
    b.set_var(v.rintr, Expr::lit(intr::BUS));
    b.intrinsic(Intrinsic::IrqRaise { line: Expr::lit(ESP_IRQ) });
    b.jump(done);

    b.select(c_iccs);
    b.buf_store(v.fifo, Expr::lit(0), Expr::lit(0)); // status GOOD
    b.buf_store(v.fifo, Expr::lit(1), Expr::lit(0)); // message COMMAND COMPLETE
    b.set_var(v.ti_rptr, Expr::lit(0));
    b.set_var(v.ti_wptr, Expr::lit(2));
    b.set_var(v.rflags, Expr::lit(2));
    b.set_var(v.rintr, Expr::lit(intr::FC));
    b.intrinsic(Intrinsic::IrqRaise { line: Expr::lit(ESP_IRQ) });
    b.jump(done);

    b.select(c_msgacc);
    b.set_var(v.rintr, Expr::lit(0));
    b.set_var(v.rseq, Expr::lit(0));
    b.jump(done);

    // SELECT WITH ATN: copy the CDB out of the FIFO and dispatch it.
    b.select(c_selatn);
    b.set_var(v.cmdlen, Expr::var(v.ti_wptr));
    b.set_var(v.ti_rptr, Expr::lit(0));
    let i = b.local("copy_i", W32);
    b.set_local(i, Expr::lit(0));
    b.branch(Expr::eq(Expr::var(v.cmdlen), Expr::lit(0)), done, get_cmd_loop);

    b.select(get_cmd_loop);
    b.buf_store(v.cmdbuf, Expr::local(i), Expr::buf(v.fifo, Expr::local(i)));
    b.set_local(i, Expr::bin(BinOp::Add, Expr::local(i), Expr::lit(1)));
    b.branch(Expr::bin(BinOp::Lt, Expr::local(i), Expr::var(v.cmdlen)), get_cmd_loop, parse_cdb);

    b.select(parse_cdb);
    b.set_var(v.ti_wptr, Expr::lit(0));
    b.set_var(v.rflags, Expr::lit(0));
    b.set_var(v.cdb_group, Expr::bin(BinOp::Shr, Expr::buf(v.cmdbuf, Expr::lit(0)), Expr::lit(5)));
    b.jump(grp_dispatch);

    b.select(grp_dispatch);
    b.switch(Expr::var(v.cdb_group), vec![(0, grp0), (1, grp1), (2, grp1), (5, grp5)], grp_other);

    b.select(grp0);
    b.jump(exec_cdb);
    b.select(grp1);
    b.jump(exec_cdb);
    b.select(grp5);
    b.jump(exec_cdb);

    // Reserved group codes — the CVE-2015-5158 fork.
    b.select(grp_other);
    if reserved_groups_accepted {
        b.intrinsic(Intrinsic::Note("CVE-2015-5158: reserved CDB group executed".into()));
        b.jump(exec_cdb);
    } else {
        b.set_var(v.rintr, Expr::lit(intr::ILL));
        b.intrinsic(Intrinsic::IrqRaise { line: Expr::lit(ESP_IRQ) });
        b.jump(done);
    }

    // SCSI opcode dispatch (the second command-decision level).
    b.select(exec_cdb);
    b.switch(
        Expr::buf(v.cmdbuf, Expr::lit(0)),
        vec![
            (scsi_op::TEST_UNIT_READY, op_tur),
            (scsi_op::REQUEST_SENSE, op_sense),
            (scsi_op::INQUIRY, op_inquiry),
            (scsi_op::READ_CAPACITY, op_readcap),
            (scsi_op::READ_10, op_read10),
            (scsi_op::WRITE_10, op_write10),
        ],
        op_unknown,
    );

    b.select(op_tur);
    b.set_var(v.rstat, Expr::lit(0));
    b.set_var(v.rintr, Expr::lit(intr::FC));
    b.intrinsic(Intrinsic::IrqRaise { line: Expr::lit(ESP_IRQ) });
    b.jump(done);

    // REQUEST SENSE / unknown opcodes share the sense-fill loop whose
    // length comes from CDB byte 4 (allocation length).
    b.select(op_sense);
    b.jump(sense_fill);
    b.select(op_unknown);
    if reserved_groups_accepted {
        b.jump(sense_fill);
    } else {
        b.set_var(v.rintr, Expr::lit(intr::ILL));
        b.intrinsic(Intrinsic::IrqRaise { line: Expr::lit(ESP_IRQ) });
        b.jump(done);
    }

    b.select(sense_fill);
    {
        let j = b.local("sense_i", W32);
        let n = b.local("sense_n", W32);
        b.set_local(j, Expr::lit(0));
        if reserved_groups_accepted {
            // Vulnerable: allocation length used unbounded.
            b.set_local(n, Expr::buf(v.cmdbuf, Expr::lit(4)));
        } else {
            // Patched: clamped to the FIFO.
            b.set_local(
                n,
                Expr::bin(BinOp::And, Expr::buf(v.cmdbuf, Expr::lit(4)), Expr::lit(0xf)),
            );
        }
        let fill_loop = b.block("sense_fill_body");
        b.branch(Expr::eq(Expr::local(n), Expr::lit(0)), resp_ready, fill_loop);
        b.select(fill_loop);
        b.buf_store(v.fifo, Expr::local(j), Expr::lit(0x70));
        b.set_local(j, Expr::bin(BinOp::Add, Expr::local(j), Expr::lit(1)));
        b.branch(Expr::bin(BinOp::Lt, Expr::local(j), Expr::local(n)), fill_loop, resp_ready);
    }

    b.select(op_inquiry);
    for (k, byte) in
        [0x00u64, 0x00, 0x05, 0x02, 12, 0, 0, 0, b'S' as u64, b'E' as u64, b'D' as u64, b'S' as u64]
            .into_iter()
            .enumerate()
    {
        b.buf_store(v.fifo, Expr::lit(k as u64), Expr::lit(byte));
    }
    b.set_var(v.ti_wptr, Expr::lit(12));
    b.set_var(v.rflags, Expr::lit(12));
    b.jump(resp_ready);

    b.select(op_readcap);
    for k in 0..4u64 {
        // Capacity: sectors-1, big-endian (backend capacity surrogate).
        b.buf_store(v.fifo, Expr::lit(k), Expr::lit(0));
    }
    b.buf_store(v.fifo, Expr::lit(3), Expr::lit(0xff));
    b.buf_store(v.fifo, Expr::lit(4), Expr::lit(0));
    b.buf_store(v.fifo, Expr::lit(5), Expr::lit(0));
    b.buf_store(v.fifo, Expr::lit(6), Expr::lit(2));
    b.buf_store(v.fifo, Expr::lit(7), Expr::lit(0));
    b.set_var(v.ti_wptr, Expr::lit(8));
    b.set_var(v.rflags, Expr::lit(8));
    b.jump(resp_ready);

    // READ(10)/WRITE(10): latch LBA (bytes 2..6, big-endian) and count
    // (bytes 7..9); the data moves on the TI command.
    let latch_xfer = |b: &mut ProgramBuilder, v: &Vars| {
        b.set_var(
            v.xfer_sector,
            Expr::bin(
                BinOp::Or,
                Expr::bin(BinOp::Shl, Expr::buf(v.cmdbuf, Expr::lit(4)), Expr::lit(8)),
                Expr::buf(v.cmdbuf, Expr::lit(5)),
            ),
        );
        b.set_var(
            v.xfer_count,
            Expr::bin(
                BinOp::Or,
                Expr::bin(BinOp::Shl, Expr::buf(v.cmdbuf, Expr::lit(7)), Expr::lit(8)),
                Expr::buf(v.cmdbuf, Expr::lit(8)),
            ),
        );
    };
    b.select(op_read10);
    latch_xfer(&mut b, v);
    b.set_var(v.pending_op, Expr::lit(1)); // read pending
    b.set_var(v.rstat, Expr::lit(0x01)); // data-in phase
    b.jump(resp_ready);

    b.select(op_write10);
    latch_xfer(&mut b, v);
    b.set_var(v.pending_op, Expr::lit(2)); // write pending
    b.set_var(v.rstat, Expr::lit(0x00)); // data-out phase
    b.jump(resp_ready);

    b.select(resp_ready);
    b.set_var(v.rintr, Expr::lit(intr::BUS | intr::FC));
    b.set_var(v.rseq, Expr::lit(4)); // sequence: command complete
    b.intrinsic(Intrinsic::IrqRaise { line: Expr::lit(ESP_IRQ) });
    b.jump(done);

    // TRANSFER INFORMATION: move pending sectors via DMA.
    b.select(c_ti);
    b.set_var(
        v.dma_cur,
        Expr::bin(
            BinOp::Or,
            Expr::var(v.dmalo),
            Expr::bin(BinOp::Shl, Expr::var(v.dmahi), Expr::lit(16)),
        ),
    );
    b.branch(Expr::eq(Expr::var(v.pending_op), Expr::lit(1)), ti_read, ti_write);

    b.select(ti_read);
    b.branch(Expr::eq(Expr::var(v.xfer_count), Expr::lit(0)), ti_done, rd_loop);

    b.select(rd_loop);
    b.intrinsic(Intrinsic::DiskReadToBuf {
        buf: v.databuf,
        buf_off: Expr::lit(0),
        sector: Expr::var(v.xfer_sector),
    });
    b.intrinsic(Intrinsic::DmaFromBuf {
        buf: v.databuf,
        buf_off: Expr::lit(0),
        gpa: Expr::var(v.dma_cur),
        len: Expr::lit(512),
    });
    b.set_var(v.dma_cur, Expr::bin(BinOp::Add, Expr::var(v.dma_cur), Expr::lit(512)));
    b.set_var(v.xfer_sector, Expr::bin(BinOp::Add, Expr::var(v.xfer_sector), Expr::lit(1)));
    b.set_var(v.xfer_count, Expr::bin(BinOp::Sub, Expr::var(v.xfer_count), Expr::lit(1)));
    b.branch(Expr::eq(Expr::var(v.xfer_count), Expr::lit(0)), ti_done, rd_loop);

    b.select(ti_write);
    b.branch(Expr::eq(Expr::var(v.pending_op), Expr::lit(2)), wr_loop, done);

    b.select(wr_loop);
    b.intrinsic(Intrinsic::DmaToBuf {
        buf: v.databuf,
        buf_off: Expr::lit(0),
        gpa: Expr::var(v.dma_cur),
        len: Expr::lit(512),
    });
    b.intrinsic(Intrinsic::DiskWriteFromBuf {
        buf: v.databuf,
        buf_off: Expr::lit(0),
        sector: Expr::var(v.xfer_sector),
    });
    b.set_var(v.dma_cur, Expr::bin(BinOp::Add, Expr::var(v.dma_cur), Expr::lit(512)));
    b.set_var(v.xfer_sector, Expr::bin(BinOp::Add, Expr::var(v.xfer_sector), Expr::lit(1)));
    b.set_var(v.xfer_count, Expr::bin(BinOp::Sub, Expr::var(v.xfer_count), Expr::lit(1)));
    b.branch(Expr::eq(Expr::var(v.xfer_count), Expr::lit(0)), ti_done, wr_loop);

    b.select(ti_done);
    b.set_var(v.pending_op, Expr::lit(0));
    b.set_var(v.rstat, Expr::lit(0x03)); // status phase
    b.set_var(v.rintr, Expr::lit(intr::FC));
    b.intrinsic(Intrinsic::IrqRaise { line: Expr::lit(ESP_IRQ) });
    b.jump(done);

    b.finish().expect("esp pmio_write program is well-formed")
}

fn build_pmio_read(v: &Vars) -> Program {
    let mut b = ProgramBuilder::new("esp_pmio_read");
    let entry = b.entry_block("entry");
    let done = b.exit_block("done");
    let fifo_r = b.block("fifo_read");
    let fifo_pop = b.block("fifo_pop");
    let fifo_empty = b.block("fifo_empty");
    let stat_r = b.block("status_read");
    let intr_r = b.block("intr_read_clear");
    let seq_r = b.block("seq_read");
    let flags_r = b.block("flags_read");
    let tclo_r = b.block("tclo_read");
    let tcmed_r = b.block("tcmed_read");

    b.select(entry);
    b.switch(
        Expr::bin(BinOp::And, Expr::IoAddr, Expr::lit(0xf)),
        vec![
            (reg::TCLO, tclo_r),
            (reg::TCMED, tcmed_r),
            (reg::FIFO, fifo_r),
            (reg::STAT, stat_r),
            (reg::INTR, intr_r),
            (reg::SEQ, seq_r),
            (reg::FLAGS, flags_r),
        ],
        done,
    );

    b.select(tclo_r);
    b.reply(Expr::var(v.tclo));
    b.jump(done);

    b.select(tcmed_r);
    b.reply(Expr::var(v.tcmed));
    b.jump(done);

    b.select(fifo_r);
    b.branch(
        Expr::bin(BinOp::Lt, Expr::var(v.ti_rptr), Expr::var(v.ti_wptr)),
        fifo_pop,
        fifo_empty,
    );
    b.select(fifo_pop);
    b.reply(Expr::buf(v.fifo, Expr::bin(BinOp::And, Expr::var(v.ti_rptr), Expr::lit(0xf))));
    b.set_var(v.ti_rptr, Expr::bin(BinOp::Add, Expr::var(v.ti_rptr), Expr::lit(1)));
    b.jump(done);
    b.select(fifo_empty);
    b.reply(Expr::lit(0));
    b.jump(done);

    b.select(stat_r);
    b.reply(Expr::var(v.rstat));
    b.jump(done);

    // Reading INTR clears it and lowers the line, as on real hardware.
    b.select(intr_r);
    b.reply(Expr::var(v.rintr));
    b.set_var(v.rintr, Expr::lit(0));
    b.intrinsic(Intrinsic::IrqLower { line: Expr::lit(ESP_IRQ) });
    b.jump(done);

    b.select(seq_r);
    b.reply(Expr::var(v.rseq));
    b.jump(done);

    b.select(flags_r);
    b.reply(Expr::var(v.rflags));
    b.jump(done);

    b.finish().expect("esp pmio_read program is well-formed")
}

/// Builds the ESP SCSI model at the given behaviour version.
pub fn build(version: QemuVersion) -> Device {
    let (cs, vars) = control_structure();
    let write = build_pmio_write(&vars, version);
    let read = build_pmio_read(&vars);
    Device::assemble(
        "SCSI",
        version,
        cs,
        vec![(EntryPoint::PmioWrite, write), (EntryPoint::PmioRead, read)],
        vec![(AddressSpace::Pmio, ESP_BASE, 0x10)],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sedspec_vmm::{IoRequest, VmContext};

    fn ctx() -> VmContext {
        VmContext::new(0x100000, 4096)
    }

    fn outb(
        d: &mut Device,
        c: &mut VmContext,
        off: u64,
        val: u64,
    ) -> sedspec_dbl::interp::ExecOutcome {
        d.handle_io(c, &IoRequest::write(AddressSpace::Pmio, ESP_BASE + off, 1, val)).unwrap()
    }

    fn inb(d: &mut Device, c: &mut VmContext, off: u64) -> u64 {
        d.handle_io(c, &IoRequest::read(AddressSpace::Pmio, ESP_BASE + off, 1)).unwrap().reply
    }

    fn send_cdb(d: &mut Device, c: &mut VmContext, cdb: &[u8]) {
        outb(d, c, reg::CMD, cmd::FLUSH);
        for &byte in cdb {
            outb(d, c, reg::FIFO, u64::from(byte));
        }
        outb(d, c, reg::CMD, cmd::SELATN);
    }

    #[test]
    fn inquiry_returns_device_data() {
        let mut d = build(QemuVersion::Patched);
        let mut c = ctx();
        send_cdb(&mut d, &mut c, &[0x12, 0, 0, 0, 36, 0]);
        assert_eq!(inb(&mut d, &mut c, reg::FLAGS), 12);
        assert_eq!(inb(&mut d, &mut c, reg::INTR), intr::BUS | intr::FC);
        let mut data = Vec::new();
        for _ in 0..12 {
            data.push(inb(&mut d, &mut c, reg::FIFO) as u8);
        }
        assert_eq!(&data[8..12], b"SEDS");
        assert_eq!(data[2], 0x05); // SPC-3
    }

    #[test]
    fn intr_read_clears_and_lowers_irq() {
        let mut d = build(QemuVersion::Patched);
        let mut c = ctx();
        send_cdb(&mut d, &mut c, &[0x00, 0, 0, 0, 0, 0]); // TEST UNIT READY
        assert!(c.irqs.line(ESP_IRQ as usize).is_raised());
        assert_ne!(inb(&mut d, &mut c, reg::INTR), 0);
        assert!(!c.irqs.line(ESP_IRQ as usize).is_raised());
        assert_eq!(inb(&mut d, &mut c, reg::INTR), 0);
    }

    #[test]
    fn read10_write10_round_trip_through_dma() {
        let mut d = build(QemuVersion::Patched);
        let mut c = ctx();
        // WRITE(10): LBA 0x0102, 2 sectors, data staged at 0x8000.
        c.mem.write_bytes(0x8000, &vec![0x9au8; 1024]).unwrap();
        send_cdb(&mut d, &mut c, &[0x2a, 0, 0, 0, 0x01, 0x02, 0, 0, 2, 0]);
        outb(&mut d, &mut c, reg::DMALO, 0x8000);
        outb(&mut d, &mut c, reg::DMAHI, 0);
        outb(&mut d, &mut c, reg::CMD, cmd::TI);
        assert_eq!(c.disk.write_count(), 2);
        // READ(10) the same two sectors back to 0xa000.
        send_cdb(&mut d, &mut c, &[0x28, 0, 0, 0, 0x01, 0x02, 0, 0, 2, 0]);
        outb(&mut d, &mut c, reg::DMALO, 0xa000);
        outb(&mut d, &mut c, reg::DMAHI, 0);
        outb(&mut d, &mut c, reg::CMD, cmd::TI);
        assert_eq!(c.mem.read_vec(0xa000, 1024).unwrap(), vec![0x9a; 1024]);
        assert_eq!(inb(&mut d, &mut c, reg::STAT), 0x03); // status phase
    }

    #[test]
    fn iccs_reports_good_status() {
        let mut d = build(QemuVersion::Patched);
        let mut c = ctx();
        outb(&mut d, &mut c, reg::CMD, cmd::ICCS);
        assert_eq!(inb(&mut d, &mut c, reg::FIFO), 0); // GOOD
        assert_eq!(inb(&mut d, &mut c, reg::FIFO), 0); // COMMAND COMPLETE
        assert_eq!(inb(&mut d, &mut c, reg::INTR), intr::FC);
    }

    #[test]
    fn cve_2016_4439_fifo_writes_walk_into_cmdbuf() {
        let mut d = build(QemuVersion::V2_6_0);
        let mut c = ctx();
        outb(&mut d, &mut c, reg::CMD, cmd::FLUSH);
        let mut spills = 0;
        for k in 0..24u64 {
            spills += outb(&mut d, &mut c, reg::FIFO, 0xd0 + k).spills;
        }
        assert!(spills >= 8, "writes 16..24 must spill into cmdbuf");
        // The spilled bytes are visible in cmdbuf — corrupted state.
        let cmdbuf = d.control.buf_by_name("cmdbuf").unwrap();
        assert_eq!(d.state.buf_bytes(cmdbuf)[0], 0xd0 + 16);
    }

    #[test]
    fn patched_version_drops_fifo_overflow() {
        let mut d = build(QemuVersion::Patched);
        let mut c = ctx();
        outb(&mut d, &mut c, reg::CMD, cmd::FLUSH);
        let mut spills = 0;
        for k in 0..24u64 {
            spills += outb(&mut d, &mut c, reg::FIFO, 0xd0 + k).spills;
        }
        assert_eq!(spills, 0);
        assert_eq!(inb(&mut d, &mut c, reg::FLAGS), 16);
    }

    #[test]
    fn cve_2015_5158_reserved_group_overruns_fifo() {
        let mut d = build(QemuVersion::V2_4_0);
        let mut c = ctx();
        // Group 7 (reserved) opcode 0xff, allocation length 200.
        let out_spills = {
            outb(&mut d, &mut c, reg::CMD, cmd::FLUSH);
            for &byte in &[0xffu8, 0, 0, 0, 200, 0] {
                outb(&mut d, &mut c, reg::FIFO, u64::from(byte));
            }
            outb(&mut d, &mut c, reg::CMD, cmd::SELATN).spills
        };
        assert!(out_spills > 0, "sense fill must overrun the 16-byte FIFO");
    }

    #[test]
    fn patched_version_rejects_reserved_groups() {
        let mut d = build(QemuVersion::Patched);
        let mut c = ctx();
        send_cdb(&mut d, &mut c, &[0xff, 0, 0, 0, 200, 0]);
        assert_eq!(inb(&mut d, &mut c, reg::INTR), intr::ILL);
        // And request sense stays clamped.
        send_cdb(&mut d, &mut c, &[0x03, 0, 0, 0, 200, 0]);
        assert_eq!(inb(&mut d, &mut c, reg::INTR), intr::BUS | intr::FC);
    }

    #[test]
    fn reset_clears_everything() {
        let mut d = build(QemuVersion::Patched);
        let mut c = ctx();
        send_cdb(&mut d, &mut c, &[0x12, 0, 0, 0, 36, 0]);
        outb(&mut d, &mut c, reg::CMD, cmd::RESET);
        assert_eq!(inb(&mut d, &mut c, reg::FLAGS), 0);
        assert_eq!(inb(&mut d, &mut c, reg::STAT), 0);
        assert_eq!(inb(&mut d, &mut c, reg::FIFO), 0);
    }
}
