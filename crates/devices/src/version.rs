use std::fmt;

/// The QEMU release whose behaviour a device model reproduces.
///
/// The paper's case studies run each CVE PoC against the QEMU version it
/// affects (Table III). Our device models take the version as a knob:
/// versions at or before a CVE's fix keep the vulnerable code path,
/// later versions use the patched one. [`QemuVersion::Patched`] has
/// every fix applied.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum QemuVersion {
    /// QEMU 2.3.0 — vulnerable to CVE-2015-3456 (Venom).
    V2_3_0,
    /// QEMU 2.4.0 — vulnerable to CVE-2015-7504/-7512 and CVE-2015-5158.
    V2_4_0,
    /// QEMU 2.6.0 — vulnerable to CVE-2016-7909 and CVE-2016-4439.
    V2_6_0,
    /// QEMU 5.1.0 — vulnerable to CVE-2020-14364.
    V5_1_0,
    /// QEMU 5.2.0 — vulnerable to CVE-2021-3409.
    V5_2_0,
    /// All reproduced fixes applied.
    Patched,
}

impl QemuVersion {
    /// All modelled versions, oldest first.
    pub fn all() -> [QemuVersion; 6] {
        [
            QemuVersion::V2_3_0,
            QemuVersion::V2_4_0,
            QemuVersion::V2_6_0,
            QemuVersion::V5_1_0,
            QemuVersion::V5_2_0,
            QemuVersion::Patched,
        ]
    }

    /// Whether this version still contains the fix-pending code for a
    /// vulnerability fixed in `fixed_after`.
    ///
    /// `fixed_after` is the last *affected* version: e.g. Venom was fixed
    /// right after 2.3.0, so `self.has_vulnerability(QemuVersion::V2_3_0)`
    /// is true only for 2.3.0 itself.
    pub fn has_vulnerability(self, fixed_after: QemuVersion) -> bool {
        self != QemuVersion::Patched && self <= fixed_after
    }
}

impl fmt::Display for QemuVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            QemuVersion::V2_3_0 => "v2.3.0",
            QemuVersion::V2_4_0 => "v2.4.0",
            QemuVersion::V2_6_0 => "v2.6.0",
            QemuVersion::V5_1_0 => "v5.1.0",
            QemuVersion::V5_2_0 => "v5.2.0",
            QemuVersion::Patched => "patched",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vulnerability_windows() {
        assert!(QemuVersion::V2_3_0.has_vulnerability(QemuVersion::V2_3_0));
        assert!(!QemuVersion::V2_4_0.has_vulnerability(QemuVersion::V2_3_0));
        assert!(QemuVersion::V2_3_0.has_vulnerability(QemuVersion::V2_6_0));
        assert!(QemuVersion::V2_6_0.has_vulnerability(QemuVersion::V2_6_0));
        assert!(!QemuVersion::Patched.has_vulnerability(QemuVersion::V5_2_0));
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(QemuVersion::V2_3_0.to_string(), "v2.3.0");
        assert_eq!(QemuVersion::V5_2_0.to_string(), "v5.2.0");
    }
}
