//! AMD PCNet PCI network adapter (QEMU `hw/net/pcnet.c`).
//!
//! Reproduces the PCNet programming model: the RAP/RDP indexed CSR file
//! on the PMIO aperture, the guest-memory init block, descriptor rings
//! for transmit and receive, and the receive data path with loopback
//! CRC appending. The `PCNetState` layout places the 4096-byte frame
//! `buffer` directly in front of the `irq` function pointer, the
//! adjacency all three reproduced CVEs exploit:
//!
//! * **CVE-2015-7504** ([`QemuVersion::V2_4_0`] and earlier): in
//!   loopback mode the receive path appends a 4-byte CRC at
//!   `buffer[size]` through a *temporary* index. The size check rejects
//!   only frames larger than 4096, so a 4096-byte frame makes the CRC
//!   land on the `irq` pointer — with attacker-controlled bytes.
//! * **CVE-2015-7512** (same versions): the non-loopback receive path
//!   lacks the `size > 4092` bound entirely, so an oversized frame
//!   overruns the buffer wholesale.
//! * **CVE-2016-7909** ([`QemuVersion::V2_6_0`] and earlier): CSR76 (the
//!   receive ring length) accepts zero, and the receive scan loop never
//!   terminates for a zero-length ring.

use sedspec_dbl::builder::ProgramBuilder;
use sedspec_dbl::ir::Width::{W16, W32, W8};
use sedspec_dbl::ir::{BinOp, BufId, Expr, Intrinsic, Program, VarId};
use sedspec_dbl::state::ControlStructure;
use sedspec_vmm::AddressSpace;

use crate::{Device, EntryPoint, QemuVersion};

/// PCNet interrupt line.
pub const PCNET_IRQ: u64 = 11;
/// Base of the claimed PMIO aperture.
pub const PCNET_BASE: u64 = 0x300;
/// Frame buffer size (QEMU's `buffer[4096]`).
pub const BUF_SIZE: u64 = 4096;
/// Function-pointer id of the legitimate interrupt handler.
pub const IRQ_HANDLER_FN: u64 = 0x50;

/// Port offsets within the aperture.
pub mod port {
    /// Register data port (CSR access).
    pub const RDP: u64 = 0x10;
    /// Register address port.
    pub const RAP: u64 = 0x12;
    /// Software reset.
    pub const RESET: u64 = 0x14;
    /// BCR data port.
    pub const BDP: u64 = 0x16;
}

/// CSR numbers used by the model.
pub mod csr {
    /// Controller status/command.
    pub const CSR0: u64 = 0;
    /// Init-block address, low 16 bits.
    pub const IADR_LO: u64 = 1;
    /// Init-block address, high 16 bits.
    pub const IADR_HI: u64 = 2;
    /// Mode register (bit 2 = internal loopback).
    pub const MODE: u64 = 15;
    /// Receive ring length.
    pub const RCVRL: u64 = 76;
    /// Transmit ring length.
    pub const XMTRL: u64 = 78;
}

/// CSR0 bits.
pub mod csr0 {
    /// Initialize.
    pub const INIT: u64 = 0x0001;
    /// Start.
    pub const STRT: u64 = 0x0002;
    /// Stop.
    pub const STOP: u64 = 0x0004;
    /// Transmit demand.
    pub const TDMD: u64 = 0x0008;
    /// Initialization done.
    pub const IDON: u64 = 0x0100;
    /// Transmit interrupt.
    pub const TINT: u64 = 0x0200;
    /// Receive interrupt.
    pub const RINT: u64 = 0x0400;
    /// Missed frame.
    pub const MISS: u64 = 0x1000;
}

struct Vars {
    rap: VarId,
    csr0: VarId,
    csr1: VarId,
    csr2: VarId,
    csr15: VarId,
    bcr20: VarId,
    rdra: VarId,
    tdra: VarId,
    rcvrl: VarId,
    xmtrl: VarId,
    rcvrc: VarId,
    xmtrc: VarId,
    rmd_addr: VarId,
    rmd_len: VarId,
    rmd_flags: VarId,
    tmd_addr: VarId,
    tmd_len: VarId,
    tmd_flags: VarId,
    recv_len: VarId,
    scan_i: VarId,
    running: VarId,
    looptest: VarId,
    xmit_pos: VarId,
    buffer: BufId,
    irq: VarId,
    isr: VarId,
}

fn control_structure() -> (ControlStructure, Vars) {
    let mut cs = ControlStructure::new("PCNetState");
    let rap = cs.register("rap", W8, 0);
    let csr0 = cs.register("csr0", W16, csr0::STOP);
    let csr1 = cs.register("csr1", W16, 0);
    let csr2 = cs.register("csr2", W16, 0);
    let csr15 = cs.register("csr15", W16, 0);
    let bcr20 = cs.register("bcr20", W16, 0);
    let rdra = cs.var("rdra", W32);
    let tdra = cs.var("tdra", W32);
    let rcvrl = cs.var("rcvrl", W16);
    let xmtrl = cs.var("xmtrl", W16);
    let rcvrc = cs.var("rcvrc", W16);
    let xmtrc = cs.var("xmtrc", W16);
    let rmd_addr = cs.var("rmd_addr", W32);
    let rmd_len = cs.var("rmd_len", W16);
    let rmd_flags = cs.var("rmd_flags", W16);
    let tmd_addr = cs.var("tmd_addr", W32);
    let tmd_len = cs.var("tmd_len", W16);
    let tmd_flags = cs.var("tmd_flags", W16);
    let recv_len = cs.var("recv_len", W16);
    let scan_i = cs.var("scan_i", W16);
    let running = cs.var("running", W8);
    let looptest = cs.var("looptest", W8);
    let xmit_pos = cs.var("xmit_pos", W32);
    // The CVE-critical adjacency: buffer, then the irq function pointer.
    let buffer = cs.buffer("buffer", BUF_SIZE as usize);
    let irq = cs.fn_ptr("irq", IRQ_HANDLER_FN);
    let isr = cs.var("isr", W8);
    (
        cs,
        Vars {
            rap,
            csr0,
            csr1,
            csr2,
            csr15,
            bcr20,
            rdra,
            tdra,
            rcvrl,
            xmtrl,
            rcvrc,
            xmtrc,
            rmd_addr,
            rmd_len,
            rmd_flags,
            tmd_addr,
            tmd_len,
            tmd_flags,
            recv_len,
            scan_i,
            running,
            looptest,
            xmit_pos,
            buffer,
            irq,
            isr,
        },
    )
}

fn build_pmio_write(v: &Vars, version: QemuVersion) -> Program {
    let zero_ring_accepted = version.has_vulnerability(QemuVersion::V2_6_0); // CVE-2016-7909
    let mut b = ProgramBuilder::new("pcnet_pmio_write");

    let entry = b.entry_block("entry");
    let done = b.exit_block("done");
    let rap_w = b.block("rap_write");
    let reset_w = b.cmd_end_block("soft_reset");
    let bdp_w = b.block("bdp_write");
    let bdp_bcr20 = b.block("bcr20_write");
    let rdp_w = b.cmd_decision_block("csr_dispatch");
    let csr0_w = b.block("csr0_write");
    let csr1_w = b.cmd_end_block("csr1_write");
    let csr2_w = b.cmd_end_block("csr2_write");
    let csr15_w = b.cmd_end_block("csr15_write");
    let rcvrl_w = b.block("rcvrl_write");
    let rcvrl_clamp = b.cmd_end_block("rcvrl_zero_clamp");
    let rcvrl_set = b.cmd_end_block("rcvrl_set");
    let xmtrl_w = b.cmd_end_block("xmtrl_write");
    let do_init = b.cmd_end_block("init_block_load");
    let c0_strt = b.block("csr0_start_check");
    let do_start = b.cmd_end_block("controller_start");
    let c0_stop = b.block("csr0_stop_check");
    let do_stop = b.cmd_end_block("controller_stop");
    let c0_tdmd = b.block("csr0_tdmd_check");
    let csr0_ack = b.cmd_end_block("csr0_int_ack");
    let do_transmit = b.block("transmit_poll");
    let tx_fetch = b.block("tx_descriptor_fetch");
    let tx_bound = b.block("tx_length_bound");
    let tx_trunc = b.block("tx_truncate");
    let tx_copy = b.block("tx_copy_fragment");
    let tx_send = b.cmd_end_block("tx_frame_send");
    let tx_frag_done = b.block("tx_fragment_done");
    let irq_fn = b.block("irq_handler");
    let tx_irq_ret = b.exit_block("tx_irq_return");
    let init_irq_ret = b.exit_block("init_irq_return");

    b.register_fn(IRQ_HANDLER_FN, irq_fn);

    b.select(entry);
    b.switch(
        Expr::bin(BinOp::And, Expr::IoAddr, Expr::lit(0x1f)),
        vec![(port::RDP, rdp_w), (port::RAP, rap_w), (port::RESET, reset_w), (port::BDP, bdp_w)],
        done,
    );

    b.select(rap_w);
    b.set_var(v.rap, Expr::bin(BinOp::And, Expr::IoData, Expr::lit(0x7f)));
    b.jump(done);

    b.select(reset_w);
    b.set_var(v.running, Expr::lit(0));
    b.set_var(v.csr0, Expr::lit(csr0::STOP));
    b.set_var(v.xmit_pos, Expr::lit(0));
    b.jump(done);

    b.select(bdp_w);
    b.branch(Expr::eq(Expr::var(v.rap), Expr::lit(20)), bdp_bcr20, done);
    b.select(bdp_bcr20);
    b.set_var(v.bcr20, Expr::IoData);
    b.jump(done);

    // CSR dispatch: the paper's command decision block for this device.
    b.select(rdp_w);
    b.switch(
        Expr::var(v.rap),
        vec![
            (csr::CSR0, csr0_w),
            (csr::IADR_LO, csr1_w),
            (csr::IADR_HI, csr2_w),
            (csr::MODE, csr15_w),
            (csr::RCVRL, rcvrl_w),
            (csr::XMTRL, xmtrl_w),
        ],
        done,
    );

    b.select(csr1_w);
    b.set_var(v.csr1, Expr::IoData);
    b.jump(done);

    b.select(csr2_w);
    b.set_var(v.csr2, Expr::IoData);
    b.jump(done);

    b.select(csr15_w);
    b.set_var(v.csr15, Expr::IoData);
    b.set_var(
        v.looptest,
        Expr::ne(Expr::bin(BinOp::And, Expr::IoData, Expr::lit(4)), Expr::lit(0)),
    );
    b.jump(done);

    b.select(rcvrl_w);
    if zero_ring_accepted {
        // Vulnerable: a zero ring length is stored as-is (CVE-2016-7909).
        b.intrinsic(Intrinsic::Note("CVE-2016-7909: ring length not validated".into()));
        b.set_var(v.rcvrl, Expr::IoData);
        b.jump(done);
    } else {
        b.branch(Expr::eq(Expr::IoData, Expr::lit(0)), rcvrl_clamp, rcvrl_set);
    }
    b.select(rcvrl_clamp);
    b.set_var(v.rcvrl, Expr::lit(1));
    b.jump(done);
    b.select(rcvrl_set);
    b.set_var(v.rcvrl, Expr::IoData);
    b.jump(done);

    b.select(xmtrl_w);
    b.set_var(v.xmtrl, Expr::IoData);
    b.jump(done);

    // CSR0 control bits, checked in priority order as QEMU does.
    b.select(csr0_w);
    b.branch(
        Expr::ne(Expr::bin(BinOp::And, Expr::IoData, Expr::lit(csr0::INIT)), Expr::lit(0)),
        do_init,
        c0_strt,
    );

    // INIT: fetch the init block from guest memory (external data).
    b.select(do_init);
    let ib = Expr::bin(
        BinOp::Or,
        Expr::var(v.csr1),
        Expr::bin(BinOp::Shl, Expr::var(v.csr2), Expr::lit(16)),
    );
    b.intrinsic(Intrinsic::DmaLoadVar { var: v.csr15, gpa: ib.clone(), width: W16 });
    b.intrinsic(Intrinsic::DmaLoadVar {
        var: v.rdra,
        gpa: Expr::bin(BinOp::Add, ib.clone(), Expr::lit(4)),
        width: W32,
    });
    b.intrinsic(Intrinsic::DmaLoadVar {
        var: v.tdra,
        gpa: Expr::bin(BinOp::Add, ib.clone(), Expr::lit(8)),
        width: W32,
    });
    b.intrinsic(Intrinsic::DmaLoadVar {
        var: v.rcvrl,
        gpa: Expr::bin(BinOp::Add, ib.clone(), Expr::lit(12)),
        width: W16,
    });
    b.intrinsic(Intrinsic::DmaLoadVar {
        var: v.xmtrl,
        gpa: Expr::bin(BinOp::Add, ib, Expr::lit(14)),
        width: W16,
    });
    b.set_var(
        v.looptest,
        Expr::ne(Expr::bin(BinOp::And, Expr::var(v.csr15), Expr::lit(4)), Expr::lit(0)),
    );
    b.set_var(v.rcvrc, Expr::var(v.rcvrl));
    b.set_var(v.xmtrc, Expr::var(v.xmtrl));
    b.set_var(v.csr0, Expr::bin(BinOp::Or, Expr::var(v.csr0), Expr::lit(csr0::IDON)));
    b.indirect_call(v.irq, init_irq_ret);

    b.select(c0_strt);
    b.branch(
        Expr::ne(Expr::bin(BinOp::And, Expr::IoData, Expr::lit(csr0::STRT)), Expr::lit(0)),
        do_start,
        c0_stop,
    );

    b.select(do_start);
    b.set_var(v.running, Expr::lit(1));
    b.set_var(v.rcvrc, Expr::var(v.rcvrl));
    b.set_var(v.xmtrc, Expr::var(v.xmtrl));
    b.set_var(v.csr0, Expr::bin(BinOp::Or, Expr::var(v.csr0), Expr::lit(csr0::STRT)));
    b.jump(done);

    b.select(c0_stop);
    b.branch(
        Expr::ne(Expr::bin(BinOp::And, Expr::IoData, Expr::lit(csr0::STOP)), Expr::lit(0)),
        do_stop,
        c0_tdmd,
    );

    b.select(do_stop);
    b.set_var(v.running, Expr::lit(0));
    b.set_var(v.csr0, Expr::lit(csr0::STOP));
    b.jump(done);

    b.select(c0_tdmd);
    b.branch(
        Expr::ne(Expr::bin(BinOp::And, Expr::IoData, Expr::lit(csr0::TDMD)), Expr::lit(0)),
        do_transmit,
        csr0_ack,
    );

    // Write-1-to-clear the interrupt status bits.
    b.select(csr0_ack);
    b.set_var(
        v.csr0,
        Expr::bin(
            BinOp::And,
            Expr::var(v.csr0),
            Expr::un(
                sedspec_dbl::ir::UnOp::Not,
                Expr::bin(
                    BinOp::And,
                    Expr::IoData,
                    Expr::lit(csr0::IDON | csr0::TINT | csr0::RINT | csr0::MISS),
                ),
            ),
        ),
    );
    b.jump(done);

    // Transmit poll: fetch the descriptor at TDRA.
    b.select(do_transmit);
    b.branch(Expr::eq(Expr::var(v.running), Expr::lit(0)), done, tx_fetch);

    b.select(tx_fetch);
    b.intrinsic(Intrinsic::DmaLoadVar { var: v.tmd_addr, gpa: Expr::var(v.tdra), width: W32 });
    b.intrinsic(Intrinsic::DmaLoadVar {
        var: v.tmd_len,
        gpa: Expr::bin(BinOp::Add, Expr::var(v.tdra), Expr::lit(4)),
        width: W16,
    });
    b.intrinsic(Intrinsic::DmaLoadVar {
        var: v.tmd_flags,
        gpa: Expr::bin(BinOp::Add, Expr::var(v.tdra), Expr::lit(6)),
        width: W16,
    });
    b.branch(
        Expr::eq(Expr::bin(BinOp::And, Expr::var(v.tmd_flags), Expr::lit(0x8000)), Expr::lit(0)),
        done,
        tx_bound,
    );

    b.select(tx_bound);
    b.branch(
        Expr::bin(
            BinOp::Gt,
            Expr::bin(BinOp::Add, Expr::var(v.xmit_pos), Expr::var(v.tmd_len)),
            Expr::lit(BUF_SIZE),
        ),
        tx_trunc,
        tx_copy,
    );

    b.select(tx_trunc);
    b.set_var(v.tmd_len, Expr::bin(BinOp::Sub, Expr::lit(BUF_SIZE), Expr::var(v.xmit_pos)));
    b.jump(tx_copy);

    b.select(tx_copy);
    b.intrinsic(Intrinsic::DmaToBuf {
        buf: v.buffer,
        buf_off: Expr::var(v.xmit_pos),
        gpa: Expr::var(v.tmd_addr),
        len: Expr::var(v.tmd_len),
    });
    b.set_var(v.xmit_pos, Expr::bin(BinOp::Add, Expr::var(v.xmit_pos), Expr::var(v.tmd_len)));
    // ENP (end of packet) bit 0x0100 closes the frame.
    b.branch(
        Expr::ne(Expr::bin(BinOp::And, Expr::var(v.tmd_flags), Expr::lit(0x0100)), Expr::lit(0)),
        tx_send,
        tx_frag_done,
    );

    b.select(tx_send);
    b.intrinsic(Intrinsic::NetTransmit {
        buf: v.buffer,
        off: Expr::lit(0),
        len: Expr::var(v.xmit_pos),
    });
    b.set_var(v.xmit_pos, Expr::lit(0));
    b.set_var(v.csr0, Expr::bin(BinOp::Or, Expr::var(v.csr0), Expr::lit(csr0::TINT)));
    b.intrinsic(Intrinsic::DmaStore {
        gpa: Expr::bin(BinOp::Add, Expr::var(v.tdra), Expr::lit(6)),
        value: Expr::bin(BinOp::And, Expr::var(v.tmd_flags), Expr::lit(0x7fff)),
        width: W16,
    });
    b.indirect_call(v.irq, tx_irq_ret);

    b.select(tx_frag_done);
    b.intrinsic(Intrinsic::DmaStore {
        gpa: Expr::bin(BinOp::Add, Expr::var(v.tdra), Expr::lit(6)),
        value: Expr::bin(BinOp::And, Expr::var(v.tmd_flags), Expr::lit(0x7fff)),
        width: W16,
    });
    b.jump(done);

    b.select(irq_fn);
    b.set_var(v.isr, Expr::lit(1));
    b.intrinsic(Intrinsic::IrqRaise { line: Expr::lit(PCNET_IRQ) });
    b.ret();

    b.finish().expect("pcnet pmio_write program is well-formed")
}

fn build_pmio_read(v: &Vars) -> Program {
    let mut b = ProgramBuilder::new("pcnet_pmio_read");
    let entry = b.entry_block("entry");
    let done = b.exit_block("done");
    let rdp_r = b.block("csr_read");
    let rap_r = b.block("rap_read");
    let reset_r = b.block("reset_read");
    let bdp_r = b.block("bdp_read");
    let bdp_bcr20 = b.block("bcr20_read");
    let bdp_other = b.block("bcr_other_read");

    b.select(entry);
    b.switch(
        Expr::bin(BinOp::And, Expr::IoAddr, Expr::lit(0x1f)),
        vec![(port::RDP, rdp_r), (port::RAP, rap_r), (port::RESET, reset_r), (port::BDP, bdp_r)],
        done,
    );

    b.select(rap_r);
    b.reply(Expr::var(v.rap));
    b.jump(done);

    b.select(reset_r);
    b.set_var(v.running, Expr::lit(0));
    b.reply(Expr::lit(0));
    b.jump(done);

    b.select(bdp_r);
    b.branch(Expr::eq(Expr::var(v.rap), Expr::lit(20)), bdp_bcr20, bdp_other);
    b.select(bdp_bcr20);
    b.reply(Expr::var(v.bcr20));
    b.jump(done);
    b.select(bdp_other);
    b.reply(Expr::lit(0));
    b.jump(done);

    b.select(rdp_r);
    let c0 = b.block("read_csr0");
    let c1 = b.block("read_csr1");
    let c2 = b.block("read_csr2");
    let c15 = b.block("read_csr15");
    let c76 = b.block("read_rcvrl");
    let c78 = b.block("read_xmtrl");
    let cdef = b.block("read_csr_other");
    b.select(rdp_r);
    b.switch(
        Expr::var(v.rap),
        vec![
            (csr::CSR0, c0),
            (csr::IADR_LO, c1),
            (csr::IADR_HI, c2),
            (csr::MODE, c15),
            (csr::RCVRL, c76),
            (csr::XMTRL, c78),
        ],
        cdef,
    );
    for (blk, var) in
        [(c0, v.csr0), (c1, v.csr1), (c2, v.csr2), (c15, v.csr15), (c76, v.rcvrl), (c78, v.xmtrl)]
    {
        b.select(blk);
        b.reply(Expr::var(var));
        b.jump(done);
    }
    b.select(cdef);
    b.reply(Expr::lit(0));
    b.jump(done);

    b.finish().expect("pcnet pmio_read program is well-formed")
}

fn build_receive(v: &Vars, version: QemuVersion) -> Program {
    let crc_overflow = version.has_vulnerability(QemuVersion::V2_4_0); // CVE-2015-7504
    let size_unchecked = version.has_vulnerability(QemuVersion::V2_4_0); // CVE-2015-7512
    let zero_ring_loops = version.has_vulnerability(QemuVersion::V2_6_0); // CVE-2016-7909

    let mut b = ProgramBuilder::new("pcnet_receive");
    let entry = b.entry_block("entry");
    let done = b.exit_block("done");
    let chk_ring = b.block("ring_length_check");
    let zero_ring = b.block("zero_ring_path");
    let zero_scan = b.block("zero_ring_scan");
    let fetch = b.block("rx_descriptor_fetch");
    let miss = b.block("rx_missed_frame");
    let size_chk = b.block("rx_size_check");
    let direct_copy = b.block("rx_direct_copy");
    let loop_chk = b.block("rx_loopback_size_check");
    let drop_big = b.block("rx_drop_oversized");
    let loop_copy = b.block("rx_loopback_copy");
    let crc_chk = b.block("rx_crc_bound_check");
    let crc_append = b.block("rx_crc_append");
    let skip_crc = b.block("rx_skip_crc");
    let after_copy = b.block("rx_dma_to_guest");
    let clamp_len = b.block("rx_clamp_to_descriptor");
    let dma_out = b.block("rx_descriptor_writeback");
    let rc_refill = b.block("rx_ring_counter_refill");
    let rx_done = b.cmd_end_block("rx_complete");
    let irq_fn = b.block("irq_handler");
    let irq_ret = b.exit_block("irq_return");

    b.register_fn(IRQ_HANDLER_FN, irq_fn);

    b.select(entry);
    b.branch(Expr::eq(Expr::var(v.running), Expr::lit(0)), done, chk_ring);

    // The CVE-2016-7909 edge: a zero receive ring length. Benign guests
    // never configure one, so this branch's taken side is absent from
    // any training trace.
    b.select(chk_ring);
    b.branch(Expr::eq(Expr::var(v.rcvrl), Expr::lit(0)), zero_ring, fetch);

    b.select(zero_ring);
    if zero_ring_loops {
        b.intrinsic(Intrinsic::Note("CVE-2016-7909: scan loop never terminates".into()));
        b.set_var(v.scan_i, Expr::lit(0));
        b.jump(zero_scan);
    } else {
        // Patched: drop the frame.
        b.jump(done);
    }
    b.select(zero_scan);
    b.intrinsic(Intrinsic::DmaLoadVar { var: v.rmd_flags, gpa: Expr::var(v.rdra), width: W16 });
    b.set_var(v.scan_i, Expr::bin(BinOp::Add, Expr::var(v.scan_i), Expr::lit(1)));
    // scan_i < rcvrl is never true for rcvrl == 0: infinite loop (DoS).
    b.branch(Expr::bin(BinOp::Lt, Expr::var(v.scan_i), Expr::var(v.rcvrl)), done, zero_scan);

    b.select(fetch);
    b.intrinsic(Intrinsic::DmaLoadVar { var: v.rmd_addr, gpa: Expr::var(v.rdra), width: W32 });
    b.intrinsic(Intrinsic::DmaLoadVar {
        var: v.rmd_len,
        gpa: Expr::bin(BinOp::Add, Expr::var(v.rdra), Expr::lit(4)),
        width: W16,
    });
    b.intrinsic(Intrinsic::DmaLoadVar {
        var: v.rmd_flags,
        gpa: Expr::bin(BinOp::Add, Expr::var(v.rdra), Expr::lit(6)),
        width: W16,
    });
    b.branch(
        Expr::eq(Expr::bin(BinOp::And, Expr::var(v.rmd_flags), Expr::lit(0x8000)), Expr::lit(0)),
        miss,
        size_chk,
    );

    b.select(miss);
    b.set_var(v.csr0, Expr::bin(BinOp::Or, Expr::var(v.csr0), Expr::lit(csr0::MISS)));
    b.jump(done);

    b.select(size_chk);
    b.branch(Expr::ne(Expr::var(v.looptest), Expr::lit(0)), loop_chk, direct_copy);

    // Non-loopback receive path.
    b.select(direct_copy);
    if size_unchecked {
        // Vulnerable: no bound at all (CVE-2015-7512).
        b.intrinsic(Intrinsic::Note("CVE-2015-7512: missing receive size check".into()));
        b.copy_payload(v.buffer, Expr::lit(0), Expr::IoLen);
        b.set_var(v.recv_len, Expr::IoLen);
        b.jump(after_copy);
    } else {
        // Patched: frames above 4092 bytes are dropped.
        let ok = b.block("rx_direct_copy_ok");
        b.branch(Expr::bin(BinOp::Gt, Expr::IoLen, Expr::lit(BUF_SIZE - 4)), drop_big, ok);
        b.select(ok);
        b.copy_payload(v.buffer, Expr::lit(0), Expr::IoLen);
        b.set_var(v.recv_len, Expr::IoLen);
        b.jump(after_copy);
    }

    b.select(drop_big);
    b.jump(done);

    // Loopback path: the size check admits exactly-4096-byte frames.
    b.select(loop_chk);
    b.branch(Expr::bin(BinOp::Gt, Expr::IoLen, Expr::lit(BUF_SIZE)), drop_big, loop_copy);

    b.select(loop_copy);
    b.copy_payload(v.buffer, Expr::lit(0), Expr::IoLen);
    b.set_var(v.recv_len, Expr::IoLen);
    if crc_overflow {
        b.jump(crc_append);
    } else {
        b.jump(crc_chk);
    }

    b.select(crc_chk);
    // Patched: appending 4 CRC bytes must still fit the buffer.
    b.branch(
        Expr::bin(BinOp::Gt, Expr::bin(BinOp::Add, Expr::IoLen, Expr::lit(4)), Expr::lit(BUF_SIZE)),
        skip_crc,
        crc_append,
    );

    b.select(crc_append);
    // QEMU computes the FCS over the frame; a temporary pointer indexes
    // the store. The temporary (a local, not device state) is what makes
    // the parameter check blind to this overflow — exactly the paper's
    // CVE-2015-7504 analysis.
    let crc_pos = b.local("crc_pos", W32);
    if crc_overflow {
        b.intrinsic(Intrinsic::Note("CVE-2015-7504: CRC append unbounded at 4096".into()));
    }
    b.set_local(crc_pos, Expr::IoLen);
    for k in 0..4u64 {
        b.buf_store(
            v.buffer,
            Expr::bin(BinOp::Add, Expr::local(crc_pos), Expr::lit(k)),
            Expr::bin(BinOp::Xor, Expr::IoByte(Box::new(Expr::lit(k))), Expr::lit(0x5a + k)),
        );
    }
    b.set_var(v.recv_len, Expr::bin(BinOp::Add, Expr::IoLen, Expr::lit(4)));
    b.jump(after_copy);

    b.select(skip_crc);
    b.jump(after_copy);

    // DMA the frame into the guest's receive buffer, bounded by the
    // descriptor's byte count.
    b.select(after_copy);
    b.branch(Expr::bin(BinOp::Gt, Expr::var(v.recv_len), Expr::var(v.rmd_len)), clamp_len, dma_out);

    b.select(clamp_len);
    b.set_var(v.recv_len, Expr::var(v.rmd_len));
    b.jump(dma_out);

    b.select(dma_out);
    b.intrinsic(Intrinsic::DmaFromBuf {
        buf: v.buffer,
        buf_off: Expr::lit(0),
        gpa: Expr::var(v.rmd_addr),
        len: Expr::var(v.recv_len),
    });
    b.intrinsic(Intrinsic::DmaStore {
        gpa: Expr::bin(BinOp::Add, Expr::var(v.rdra), Expr::lit(6)),
        value: Expr::bin(BinOp::And, Expr::var(v.rmd_flags), Expr::lit(0x7fff)),
        width: W16,
    });
    b.set_var(v.rcvrc, Expr::bin(BinOp::Sub, Expr::var(v.rcvrc), Expr::lit(1)));
    b.branch(Expr::eq(Expr::var(v.rcvrc), Expr::lit(0)), rc_refill, rx_done);

    b.select(rc_refill);
    b.set_var(v.rcvrc, Expr::var(v.rcvrl));
    b.jump(rx_done);

    b.select(rx_done);
    b.set_var(v.csr0, Expr::bin(BinOp::Or, Expr::var(v.csr0), Expr::lit(csr0::RINT)));
    b.indirect_call(v.irq, irq_ret);

    b.select(irq_fn);
    b.set_var(v.isr, Expr::lit(1));
    b.intrinsic(Intrinsic::IrqRaise { line: Expr::lit(PCNET_IRQ) });
    b.ret();

    b.finish().expect("pcnet receive program is well-formed")
}

/// Builds the PCNet model at the given behaviour version.
pub fn build(version: QemuVersion) -> Device {
    let (cs, vars) = control_structure();
    let write = build_pmio_write(&vars, version);
    let read = build_pmio_read(&vars);
    let receive = build_receive(&vars, version);
    Device::assemble(
        "PCNet",
        version,
        cs,
        vec![
            (EntryPoint::PmioWrite, write),
            (EntryPoint::PmioRead, read),
            (EntryPoint::NetReceive, receive),
        ],
        vec![(AddressSpace::Pmio, PCNET_BASE, 0x20)],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sedspec_dbl::interp::{ExecLimits, Fault};
    use sedspec_vmm::{IoRequest, VmContext};

    fn ctx() -> VmContext {
        VmContext::new(0x100000, 16)
    }

    fn outw(d: &mut Device, c: &mut VmContext, off: u64, val: u64) {
        d.handle_io(c, &IoRequest::write(AddressSpace::Pmio, PCNET_BASE + off, 2, val)).unwrap();
    }

    fn inw(d: &mut Device, c: &mut VmContext, off: u64) -> u64 {
        d.handle_io(c, &IoRequest::read(AddressSpace::Pmio, PCNET_BASE + off, 2)).unwrap().reply
    }

    fn write_csr(d: &mut Device, c: &mut VmContext, n: u64, val: u64) {
        outw(d, c, port::RAP, n);
        outw(d, c, port::RDP, val);
    }

    fn read_csr(d: &mut Device, c: &mut VmContext, n: u64) -> u64 {
        outw(d, c, port::RAP, n);
        inw(d, c, port::RDP)
    }

    /// Writes a standard init block at 0x1000 and starts the NIC.
    fn bring_up(d: &mut Device, c: &mut VmContext, mode: u16, rcvrl: u16) {
        let ib = 0x1000u64;
        c.mem.write_u16(ib, mode).unwrap();
        c.mem.write_u32(ib + 4, 0x2000).unwrap(); // rdra
        c.mem.write_u32(ib + 8, 0x3000).unwrap(); // tdra
        c.mem.write_u16(ib + 12, rcvrl).unwrap();
        c.mem.write_u16(ib + 14, 4).unwrap();
        // One OWNed receive descriptor: buffer at 0x4000, 4096 bytes.
        c.mem.write_u32(0x2000, 0x4000).unwrap();
        c.mem.write_u16(0x2004, 4096).unwrap();
        c.mem.write_u16(0x2006, 0x8000).unwrap();
        write_csr(d, c, csr::IADR_LO, ib & 0xffff);
        write_csr(d, c, csr::IADR_HI, ib >> 16);
        write_csr(d, c, csr::CSR0, csr0::INIT);
        write_csr(d, c, csr::CSR0, csr0::STRT);
    }

    #[test]
    fn init_loads_init_block_and_raises_idon() {
        let mut d = build(QemuVersion::Patched);
        let mut c = ctx();
        bring_up(&mut d, &mut c, 0, 8);
        assert_ne!(read_csr(&mut d, &mut c, csr::CSR0) & csr0::IDON, 0);
        assert_eq!(read_csr(&mut d, &mut c, csr::RCVRL), 8);
        assert!(c.irqs.line(PCNET_IRQ as usize).is_raised());
    }

    #[test]
    fn receive_dmas_frame_to_guest_and_interrupts() {
        let mut d = build(QemuVersion::Patched);
        let mut c = ctx();
        bring_up(&mut d, &mut c, 0, 8);
        c.irqs.clear_all();
        let frame: Vec<u8> = (0..100u32).map(|i| (i * 3) as u8).collect();
        d.handle_io(&mut c, &IoRequest::net_frame(frame.clone())).unwrap();
        assert_eq!(c.mem.read_vec(0x4000, 100).unwrap(), frame);
        assert_ne!(read_csr(&mut d, &mut c, csr::CSR0) & csr0::RINT, 0);
        assert!(c.irqs.line(PCNET_IRQ as usize).is_raised());
        // Descriptor OWN bit handed back to the guest.
        assert_eq!(c.mem.read_u16(0x2006).unwrap() & 0x8000, 0);
    }

    #[test]
    fn transmit_sends_frame_from_guest_memory() {
        let mut d = build(QemuVersion::Patched);
        let mut c = ctx();
        bring_up(&mut d, &mut c, 0, 8);
        // TX descriptor: 60-byte frame at 0x5000, OWN|ENP.
        c.mem.write_u32(0x3000, 0x5000).unwrap();
        c.mem.write_u16(0x3004, 60).unwrap();
        c.mem.write_u16(0x3006, 0x8100).unwrap();
        c.mem.write_bytes(0x5000, &[0xabu8; 60]).unwrap();
        write_csr(&mut d, &mut c, csr::CSR0, csr0::TDMD);
        assert_eq!(c.net.tx_frames(), 1);
        assert_eq!(c.net.tx_log()[0].len(), 60);
        assert_ne!(read_csr(&mut d, &mut c, csr::CSR0) & csr0::TINT, 0);
    }

    #[test]
    fn frame_not_received_when_stopped() {
        let mut d = build(QemuVersion::Patched);
        let mut c = ctx();
        let out = d.handle_io(&mut c, &IoRequest::net_frame(vec![1; 64])).unwrap();
        assert_eq!(out.spills, 0);
        assert_eq!(c.net.tx_frames(), 0);
        assert_eq!(read_csr(&mut d, &mut c, csr::CSR0) & csr0::RINT, 0);
    }

    #[test]
    fn cve_2015_7504_crc_overwrites_irq_pointer() {
        let mut d = build(QemuVersion::V2_4_0);
        let mut c = ctx();
        bring_up(&mut d, &mut c, 4, 8); // loopback mode
                                        // A 4096-byte frame passes the loopback check; the CRC append
                                        // writes buffer[4096..4100], i.e. the irq pointer's low bytes.
        let frame = vec![0x11u8; 4096];
        match d.handle_io(&mut c, &IoRequest::net_frame(frame)) {
            // The hijack fires within this invocation at rx_done's
            // indirect call through the now-corrupted pointer.
            Err(f) => assert!(matches!(f, Fault::WildIndirectCall { .. })),
            Ok(o) => panic!("exploit did not corrupt the pointer: {o:?}"),
        }
    }

    #[test]
    fn patched_version_skips_crc_at_boundary() {
        let mut d = build(QemuVersion::Patched);
        let mut c = ctx();
        bring_up(&mut d, &mut c, 4, 8);
        let out = d.handle_io(&mut c, &IoRequest::net_frame(vec![0x11u8; 4096])).unwrap();
        assert_eq!(out.spills, 0);
    }

    #[test]
    fn cve_2015_7512_oversized_frame_overruns_buffer() {
        let mut d = build(QemuVersion::V2_4_0);
        let mut c = ctx();
        bring_up(&mut d, &mut c, 0, 8);
        let r = d.handle_io(&mut c, &IoRequest::net_frame(vec![0x22u8; 4104]));
        match r {
            Ok(out) => assert!(out.spills > 0),
            Err(f) => assert!(
                matches!(f, Fault::Arena(_) | Fault::WildIndirectCall { .. }),
                "unexpected fault {f:?}"
            ),
        }
    }

    #[test]
    fn patched_version_drops_oversized_frames() {
        let mut d = build(QemuVersion::Patched);
        let mut c = ctx();
        bring_up(&mut d, &mut c, 0, 8);
        let out = d.handle_io(&mut c, &IoRequest::net_frame(vec![0x22u8; 4200])).unwrap();
        assert_eq!(out.spills, 0);
        assert_eq!(read_csr(&mut d, &mut c, csr::CSR0) & csr0::RINT, 0);
    }

    #[test]
    fn cve_2016_7909_zero_ring_hangs_vulnerable_device() {
        let mut d = build(QemuVersion::V2_6_0);
        d.set_limits(ExecLimits { max_steps: 10_000, ..ExecLimits::default() });
        let mut c = ctx();
        bring_up(&mut d, &mut c, 0, 8);
        write_csr(&mut d, &mut c, csr::RCVRL, 0); // accepted as-is
        let r = d.handle_io(&mut c, &IoRequest::net_frame(vec![0u8; 64]));
        assert!(matches!(r, Err(Fault::StepLimit { .. })));
    }

    #[test]
    fn patched_version_rejects_zero_ring_length() {
        let mut d = build(QemuVersion::Patched);
        let mut c = ctx();
        bring_up(&mut d, &mut c, 0, 8);
        write_csr(&mut d, &mut c, csr::RCVRL, 0);
        assert_eq!(read_csr(&mut d, &mut c, csr::RCVRL), 1); // clamped
        let r = d.handle_io(&mut c, &IoRequest::net_frame(vec![0u8; 64]));
        assert!(r.is_ok());
    }

    #[test]
    fn stop_halts_the_nic() {
        let mut d = build(QemuVersion::Patched);
        let mut c = ctx();
        bring_up(&mut d, &mut c, 0, 8);
        write_csr(&mut d, &mut c, csr::CSR0, csr0::STOP);
        d.handle_io(&mut c, &IoRequest::net_frame(vec![0u8; 64])).unwrap();
        assert_eq!(read_csr(&mut d, &mut c, csr::CSR0) & csr0::RINT, 0);
    }
}
