//! SD Host Controller Interface (QEMU `hw/sd/sdhci.c`).
//!
//! Reproduces the SDHC register file over MMIO, the PIO data port for
//! single-block transfers, and SDMA multi-block transfers that pause at
//! DMA-boundary interrupts and resume when the guest acknowledges them —
//! the re-entrancy the CVE depends on.
//!
//! **CVE-2021-3409** ([`QemuVersion::V5_2_0`] and earlier): the block
//! size register remains writable while a transfer is active. An SDMA
//! multi-block write pauses mid-block with `data_count` bytes already
//! staged; if the guest shrinks `blksize` below `data_count` before
//! acknowledging, the resume path computes the remaining length as
//! `blksize - data_count`, which underflows the unsigned 16-bit
//! subtraction and is then used as a DMA copy length — overrunning
//! `fifo_buffer`. The patched behaviour refuses block-size writes while
//! the transfer is active.

use sedspec_dbl::builder::ProgramBuilder;
use sedspec_dbl::ir::Width::{W16, W32, W8};
use sedspec_dbl::ir::{BinOp, BufId, Expr, Intrinsic, Program, VarId};
use sedspec_dbl::state::ControlStructure;
use sedspec_vmm::AddressSpace;

use crate::{Device, EntryPoint, QemuVersion};

/// SDHCI interrupt line.
pub const SDHCI_IRQ: u64 = 9;
/// Base of the claimed MMIO window.
pub const SDHCI_BASE: u64 = 0x3000;
/// Internal FIFO size (one block).
pub const FIFO_SIZE: u64 = 512;
/// Bytes staged by the first SDMA chunk before the boundary pause.
pub const SDMA_CHUNK: u64 = 256;

/// Register offsets (SD Host Controller spec).
pub mod reg {
    /// SDMA system address.
    pub const SDMASYSAD: u64 = 0x00;
    /// Block size.
    pub const BLKSIZE: u64 = 0x04;
    /// Block count.
    pub const BLKCNT: u64 = 0x06;
    /// Command argument.
    pub const ARGUMENT: u64 = 0x08;
    /// Transfer mode.
    pub const TRNMOD: u64 = 0x0c;
    /// Command register (index in bits 13:8).
    pub const CMDREG: u64 = 0x0e;
    /// Response word 0.
    pub const RSP0: u64 = 0x10;
    /// Buffer data port.
    pub const BUFDATA: u64 = 0x20;
    /// Present state.
    pub const PRNSTS: u64 = 0x24;
    /// Host control.
    pub const HOSTCTL: u64 = 0x28;
    /// Clock control.
    pub const CLKCON: u64 = 0x2c;
    /// Normal interrupt status (write 1 / ack to resume SDMA).
    pub const NORINTSTS: u64 = 0x30;
}

/// PRNSTS bits.
pub mod prnsts {
    /// Data line active (a transfer is in progress).
    pub const DAT_ACTIVE: u64 = 0x4;
    /// Buffer write enable.
    pub const BWE: u64 = 0x400;
    /// Buffer read enable.
    pub const BRE: u64 = 0x800;
}

/// NORINTSTS bits.
pub mod intsts {
    /// Command complete.
    pub const CMD_COMPLETE: u64 = 0x1;
    /// Transfer complete.
    pub const XFER_COMPLETE: u64 = 0x2;
    /// DMA boundary interrupt.
    pub const DMA_INT: u64 = 0x8;
}

/// TRNMOD bits.
pub mod trnmod {
    /// DMA enable.
    pub const DMA: u64 = 0x1;
    /// Multi-block.
    pub const MULTI: u64 = 0x20;
}

struct Vars {
    sdmasysad: VarId,
    blksize: VarId,
    blkcnt: VarId,
    argument: VarId,
    trnmod_v: VarId,
    cmdreg: VarId,
    rsp0: VarId,
    prnsts_v: VarId,
    hostctl: VarId,
    clkcon: VarId,
    norintsts: VarId,
    data_count: VarId,
    transfer_len: VarId,
    block_idx: VarId,
    is_write: VarId,
    fifo_buffer: BufId,
}

fn control_structure() -> (ControlStructure, Vars) {
    let mut cs = ControlStructure::new("SDHCIState");
    let sdmasysad = cs.register("sdmasysad", W32, 0);
    let blksize = cs.register("blksize", W16, 0);
    let blkcnt = cs.register("blkcnt", W16, 0);
    let argument = cs.register("argument", W32, 0);
    let trnmod_v = cs.register("trnmod", W16, 0);
    let cmdreg = cs.register("cmdreg", W16, 0);
    let rsp0 = cs.var("rsp0", W32);
    let prnsts_v = cs.register("prnsts", W32, 0);
    let hostctl = cs.register("hostctl", W8, 0);
    let clkcon = cs.register("clkcon", W16, 0);
    let norintsts = cs.var("norintsts", W16);
    let data_count = cs.var("data_count", W16);
    let transfer_len = cs.var("transfer_len", W16);
    let block_idx = cs.var("block_idx", W16);
    let is_write = cs.var("is_write", W8);
    let fifo_buffer = cs.buffer("fifo_buffer", FIFO_SIZE as usize);
    // The rest of SDHCIState behind the fifo: overruns land here first.
    let _tail = cs.buffer("sdhci_tail", 512);
    (
        cs,
        Vars {
            sdmasysad,
            blksize,
            blkcnt,
            argument,
            trnmod_v,
            cmdreg,
            rsp0,
            prnsts_v,
            hostctl,
            clkcon,
            norintsts,
            data_count,
            transfer_len,
            block_idx,
            is_write,
            fifo_buffer,
        },
    )
}

/// Current disk sector: `argument + block_idx`.
fn sector_expr(v: &Vars) -> Expr {
    Expr::bin(BinOp::Add, Expr::var(v.argument), Expr::var(v.block_idx))
}

fn build_mmio_write(v: &Vars, version: QemuVersion) -> Program {
    let blksize_mutable = version.has_vulnerability(QemuVersion::V5_2_0); // CVE-2021-3409
    let mut b = ProgramBuilder::new("sdhci_mmio_write");

    let entry = b.entry_block("entry");
    let done = b.exit_block("done");
    let sdmasysad_w = b.block("sdmasysad_write");
    let blksize_w = b.block("blksize_write");
    let blksize_set = b.block("blksize_set");
    let blkcnt_w = b.block("blkcnt_write");
    let argument_w = b.block("argument_write");
    let trnmod_w = b.block("trnmod_write");
    let hostctl_w = b.block("hostctl_write");
    let clkcon_w = b.block("clkcon_write");
    let cmd_w = b.cmd_decision_block("command_dispatch");
    let cmd_go_idle = b.cmd_end_block("cmd0_go_idle");
    let cmd_if_cond = b.cmd_end_block("cmd8_send_if_cond");
    let cmd_status = b.cmd_end_block("cmd13_send_status");
    let cmd_blocklen = b.cmd_end_block("cmd16_set_blocklen");
    let cmd_read_single = b.block("cmd17_read_single");
    let cmd_read_multi = b.block("cmd18_read_multi");
    let rm_loop = b.block("sdma_read_block");
    let rm_done = b.cmd_end_block("sdma_read_complete");
    let cmd_write_single = b.block("cmd24_write_single");
    let cmd_write_multi = b.block("cmd25_write_multi_sdma");
    let cmd_write_multi_cnt = b.block("cmd25_count_check");
    let cmd_write_multi_go = b.block("cmd25_start");
    let cmd_stop = b.cmd_end_block("cmd12_stop");
    let dataport_w = b.block("dataport_write");
    let dp_store = b.block("dataport_store_word");
    let dp_flush = b.block("dataport_block_flush");
    let dp_complete = b.cmd_end_block("pio_write_complete");
    let intsts_w = b.block("norintsts_ack");
    let sdma_resume = b.block("sdma_resume_check");
    let sdma_step = b.block("sdma_resume_tail_copy");
    let sdma_flush = b.block("sdma_block_flush");
    let sdma_next = b.block("sdma_next_block_head");
    let sdma_done = b.cmd_end_block("sdma_write_complete");

    b.select(entry);
    b.switch(
        Expr::bin(BinOp::And, Expr::IoAddr, Expr::lit(0x3f)),
        vec![
            (reg::SDMASYSAD, sdmasysad_w),
            (reg::BLKSIZE, blksize_w),
            (reg::BLKCNT, blkcnt_w),
            (reg::ARGUMENT, argument_w),
            (reg::TRNMOD, trnmod_w),
            (reg::CMDREG, cmd_w),
            (reg::BUFDATA, dataport_w),
            (reg::HOSTCTL, hostctl_w),
            (reg::CLKCON, clkcon_w),
            (reg::NORINTSTS, intsts_w),
        ],
        done,
    );

    b.select(sdmasysad_w);
    b.set_var(v.sdmasysad, Expr::IoData);
    b.jump(done);

    b.select(blksize_w);
    if blksize_mutable {
        // Vulnerable: accepted even while a transfer is active.
        b.intrinsic(Intrinsic::Note("CVE-2021-3409: blksize writable mid-transfer".into()));
        b.jump(blksize_set);
    } else {
        // Patched: ignored while the data line is active.
        b.branch(
            Expr::ne(
                Expr::bin(BinOp::And, Expr::var(v.prnsts_v), Expr::lit(prnsts::DAT_ACTIVE)),
                Expr::lit(0),
            ),
            done,
            blksize_set,
        );
    }
    b.select(blksize_set);
    b.set_var(v.blksize, Expr::bin(BinOp::And, Expr::IoData, Expr::lit(0xfff)));
    b.jump(done);

    b.select(blkcnt_w);
    // Capped at 1023 blocks to keep single-command work bounded in this
    // model (QEMU allows 65535; the cap does not affect any CVE path).
    b.set_var(v.blkcnt, Expr::bin(BinOp::And, Expr::IoData, Expr::lit(0x3ff)));
    b.jump(done);

    b.select(argument_w);
    b.set_var(v.argument, Expr::IoData);
    b.jump(done);

    b.select(trnmod_w);
    b.set_var(v.trnmod_v, Expr::IoData);
    b.jump(done);

    b.select(hostctl_w);
    b.set_var(v.hostctl, Expr::IoData);
    b.jump(done);

    b.select(clkcon_w);
    b.set_var(v.clkcon, Expr::IoData);
    b.jump(done);

    // Command dispatch: index in bits 13:8 of the written value.
    b.select(cmd_w);
    b.set_var(v.cmdreg, Expr::IoData);
    b.set_var(
        v.norintsts,
        Expr::bin(BinOp::Or, Expr::var(v.norintsts), Expr::lit(intsts::CMD_COMPLETE)),
    );
    b.switch(
        Expr::bin(BinOp::And, Expr::bin(BinOp::Shr, Expr::IoData, Expr::lit(8)), Expr::lit(0x3f)),
        vec![
            (0, cmd_go_idle),
            (8, cmd_if_cond),
            (12, cmd_stop),
            (13, cmd_status),
            (16, cmd_blocklen),
            (17, cmd_read_single),
            (18, cmd_read_multi),
            (24, cmd_write_single),
            (25, cmd_write_multi),
        ],
        done,
    );

    b.select(cmd_go_idle);
    b.set_var(v.prnsts_v, Expr::lit(0));
    b.set_var(v.data_count, Expr::lit(0));
    b.set_var(v.block_idx, Expr::lit(0));
    b.set_var(v.rsp0, Expr::lit(0));
    b.jump(done);

    b.select(cmd_if_cond);
    b.set_var(v.rsp0, Expr::var(v.argument));
    b.jump(done);

    b.select(cmd_status);
    b.set_var(v.rsp0, Expr::lit(0x900)); // ready-for-data | tran state
    b.jump(done);

    b.select(cmd_blocklen);
    b.set_var(v.rsp0, Expr::lit(0));
    b.jump(done);

    // CMD17: single-block PIO read.
    b.select(cmd_read_single);
    b.intrinsic(Intrinsic::DiskReadToBuf {
        buf: v.fifo_buffer,
        buf_off: Expr::lit(0),
        sector: Expr::var(v.argument),
    });
    b.set_var(v.data_count, Expr::lit(0));
    b.set_var(v.is_write, Expr::lit(0));
    b.set_var(
        v.prnsts_v,
        Expr::bin(BinOp::Or, Expr::var(v.prnsts_v), Expr::lit(prnsts::DAT_ACTIVE | prnsts::BRE)),
    );
    b.intrinsic(Intrinsic::IrqRaise { line: Expr::lit(SDHCI_IRQ) });
    b.jump(done);

    // CMD18: multi-block SDMA read (runs to completion).
    b.select(cmd_read_multi);
    b.set_var(v.block_idx, Expr::lit(0));
    b.branch(Expr::eq(Expr::var(v.blkcnt), Expr::lit(0)), done, rm_loop);

    b.select(rm_loop);
    b.intrinsic(Intrinsic::DiskReadToBuf {
        buf: v.fifo_buffer,
        buf_off: Expr::lit(0),
        sector: sector_expr(v),
    });
    b.intrinsic(Intrinsic::DmaFromBuf {
        buf: v.fifo_buffer,
        buf_off: Expr::lit(0),
        gpa: Expr::var(v.sdmasysad),
        len: Expr::var(v.blksize),
    });
    b.set_var(v.sdmasysad, Expr::bin(BinOp::Add, Expr::var(v.sdmasysad), Expr::var(v.blksize)));
    b.set_var(v.block_idx, Expr::bin(BinOp::Add, Expr::var(v.block_idx), Expr::lit(1)));
    b.set_var(v.blkcnt, Expr::bin(BinOp::Sub, Expr::var(v.blkcnt), Expr::lit(1)));
    b.branch(Expr::eq(Expr::var(v.blkcnt), Expr::lit(0)), rm_done, rm_loop);

    b.select(rm_done);
    b.set_var(
        v.norintsts,
        Expr::bin(BinOp::Or, Expr::var(v.norintsts), Expr::lit(intsts::XFER_COMPLETE)),
    );
    b.intrinsic(Intrinsic::IrqRaise { line: Expr::lit(SDHCI_IRQ) });
    b.jump(done);

    // CMD24: single-block PIO write (data arrives via the data port).
    b.select(cmd_write_single);
    b.set_var(v.data_count, Expr::lit(0));
    b.set_var(v.is_write, Expr::lit(1));
    b.set_var(
        v.prnsts_v,
        Expr::bin(BinOp::Or, Expr::var(v.prnsts_v), Expr::lit(prnsts::DAT_ACTIVE | prnsts::BWE)),
    );
    b.jump(done);

    // CMD25: multi-block SDMA write. The transfer only starts with a
    // sane block size and count (QEMU's BlockSizeAndCnt guard); the
    // first chunk of the first block is staged, then the transfer
    // pauses at the DMA boundary.
    b.select(cmd_write_multi);
    b.branch(
        Expr::bin(BinOp::Lt, Expr::var(v.blksize), Expr::lit(SDMA_CHUNK)),
        done,
        cmd_write_multi_cnt,
    );
    b.select(cmd_write_multi_cnt);
    b.branch(Expr::eq(Expr::var(v.blkcnt), Expr::lit(0)), done, cmd_write_multi_go);
    b.select(cmd_write_multi_go);
    b.set_var(v.block_idx, Expr::lit(0));
    b.set_var(v.is_write, Expr::lit(1));
    b.set_var(
        v.prnsts_v,
        Expr::bin(BinOp::Or, Expr::var(v.prnsts_v), Expr::lit(prnsts::DAT_ACTIVE)),
    );
    b.intrinsic(Intrinsic::DmaToBuf {
        buf: v.fifo_buffer,
        buf_off: Expr::lit(0),
        gpa: Expr::var(v.sdmasysad),
        len: Expr::lit(SDMA_CHUNK),
    });
    b.set_var(v.data_count, Expr::lit(SDMA_CHUNK));
    b.set_var(
        v.norintsts,
        Expr::bin(BinOp::Or, Expr::var(v.norintsts), Expr::lit(intsts::DMA_INT)),
    );
    b.intrinsic(Intrinsic::IrqRaise { line: Expr::lit(SDHCI_IRQ) });
    b.jump(done);

    b.select(cmd_stop);
    b.set_var(
        v.prnsts_v,
        Expr::bin(
            BinOp::And,
            Expr::var(v.prnsts_v),
            Expr::un(
                sedspec_dbl::ir::UnOp::Not,
                Expr::lit(prnsts::DAT_ACTIVE | prnsts::BWE | prnsts::BRE),
            ),
        ),
    );
    b.set_var(v.data_count, Expr::lit(0));
    b.jump(done);

    // PIO data port (CMD24 path), one 32-bit word per write.
    b.select(dataport_w);
    b.branch(
        Expr::eq(
            Expr::bin(BinOp::And, Expr::var(v.prnsts_v), Expr::lit(prnsts::DAT_ACTIVE)),
            Expr::lit(0),
        ),
        done,
        dp_store,
    );

    b.select(dp_store);
    for k in 0..4u64 {
        b.buf_store(
            v.fifo_buffer,
            Expr::bin(
                BinOp::And,
                Expr::bin(BinOp::Add, Expr::var(v.data_count), Expr::lit(k)),
                Expr::lit(FIFO_SIZE - 1),
            ),
            Expr::bin(BinOp::Shr, Expr::IoData, Expr::lit(k * 8)),
        );
    }
    b.set_var(v.data_count, Expr::bin(BinOp::Add, Expr::var(v.data_count), Expr::lit(4)));
    b.branch(Expr::bin(BinOp::Ge, Expr::var(v.data_count), Expr::var(v.blksize)), dp_flush, done);

    b.select(dp_flush);
    b.intrinsic(Intrinsic::DiskWriteFromBuf {
        buf: v.fifo_buffer,
        buf_off: Expr::lit(0),
        sector: Expr::var(v.argument),
    });
    b.set_var(v.data_count, Expr::lit(0));
    b.jump(dp_complete);

    b.select(dp_complete);
    b.set_var(
        v.prnsts_v,
        Expr::bin(
            BinOp::And,
            Expr::var(v.prnsts_v),
            Expr::un(sedspec_dbl::ir::UnOp::Not, Expr::lit(prnsts::DAT_ACTIVE | prnsts::BWE)),
        ),
    );
    b.set_var(
        v.norintsts,
        Expr::bin(BinOp::Or, Expr::var(v.norintsts), Expr::lit(intsts::XFER_COMPLETE)),
    );
    b.intrinsic(Intrinsic::IrqRaise { line: Expr::lit(SDHCI_IRQ) });
    b.jump(done);

    // Interrupt status ack; acking the DMA interrupt resumes SDMA.
    b.select(intsts_w);
    b.set_var(
        v.norintsts,
        Expr::bin(
            BinOp::And,
            Expr::var(v.norintsts),
            Expr::un(sedspec_dbl::ir::UnOp::Not, Expr::IoData),
        ),
    );
    b.branch(
        Expr::ne(Expr::bin(BinOp::And, Expr::IoData, Expr::lit(intsts::DMA_INT)), Expr::lit(0)),
        sdma_resume,
        done,
    );

    b.select(sdma_resume);
    b.branch(
        Expr::eq(
            Expr::bin(BinOp::And, Expr::var(v.prnsts_v), Expr::lit(prnsts::DAT_ACTIVE)),
            Expr::lit(0),
        ),
        done,
        sdma_step,
    );

    // The CVE site: the tail length of the paused block is computed as
    // blksize - data_count at the *current* blksize. If the guest shrank
    // blksize below the already-staged data_count, this 16-bit unsigned
    // subtraction wraps and the wrapped value is used as the DMA length.
    b.select(sdma_step);
    b.set_var(v.transfer_len, Expr::bin(BinOp::Sub, Expr::var(v.blksize), Expr::var(v.data_count)));
    b.intrinsic(Intrinsic::DmaToBuf {
        buf: v.fifo_buffer,
        buf_off: Expr::var(v.data_count),
        gpa: Expr::bin(BinOp::Add, Expr::var(v.sdmasysad), Expr::var(v.data_count)),
        len: Expr::var(v.transfer_len),
    });
    b.set_var(
        v.data_count,
        Expr::bin(BinOp::Add, Expr::var(v.data_count), Expr::var(v.transfer_len)),
    );
    b.jump(sdma_flush);

    b.select(sdma_flush);
    b.intrinsic(Intrinsic::DiskWriteFromBuf {
        buf: v.fifo_buffer,
        buf_off: Expr::lit(0),
        sector: sector_expr(v),
    });
    b.set_var(v.sdmasysad, Expr::bin(BinOp::Add, Expr::var(v.sdmasysad), Expr::var(v.blksize)));
    b.set_var(v.block_idx, Expr::bin(BinOp::Add, Expr::var(v.block_idx), Expr::lit(1)));
    b.set_var(v.blkcnt, Expr::bin(BinOp::Sub, Expr::var(v.blkcnt), Expr::lit(1)));
    b.set_var(v.data_count, Expr::lit(0));
    b.branch(Expr::eq(Expr::var(v.blkcnt), Expr::lit(0)), sdma_done, sdma_next);

    b.select(sdma_next);
    b.intrinsic(Intrinsic::DmaToBuf {
        buf: v.fifo_buffer,
        buf_off: Expr::lit(0),
        gpa: Expr::var(v.sdmasysad),
        len: Expr::lit(SDMA_CHUNK),
    });
    b.set_var(v.data_count, Expr::lit(SDMA_CHUNK));
    b.set_var(
        v.norintsts,
        Expr::bin(BinOp::Or, Expr::var(v.norintsts), Expr::lit(intsts::DMA_INT)),
    );
    b.intrinsic(Intrinsic::IrqRaise { line: Expr::lit(SDHCI_IRQ) });
    b.jump(done);

    b.select(sdma_done);
    b.set_var(
        v.prnsts_v,
        Expr::bin(
            BinOp::And,
            Expr::var(v.prnsts_v),
            Expr::un(sedspec_dbl::ir::UnOp::Not, Expr::lit(prnsts::DAT_ACTIVE)),
        ),
    );
    b.set_var(
        v.norintsts,
        Expr::bin(BinOp::Or, Expr::var(v.norintsts), Expr::lit(intsts::XFER_COMPLETE)),
    );
    b.intrinsic(Intrinsic::IrqRaise { line: Expr::lit(SDHCI_IRQ) });
    b.jump(done);

    b.finish().expect("sdhci mmio_write program is well-formed")
}

fn build_mmio_read(v: &Vars) -> Program {
    let mut b = ProgramBuilder::new("sdhci_mmio_read");
    let entry = b.entry_block("entry");
    let done = b.exit_block("done");
    let regs: Vec<(u64, VarId, &str)> = vec![
        (reg::SDMASYSAD, v.sdmasysad, "read_sdmasysad"),
        (reg::BLKSIZE, v.blksize, "read_blksize"),
        (reg::BLKCNT, v.blkcnt, "read_blkcnt"),
        (reg::ARGUMENT, v.argument, "read_argument"),
        (reg::TRNMOD, v.trnmod_v, "read_trnmod"),
        (reg::RSP0, v.rsp0, "read_rsp0"),
        (reg::PRNSTS, v.prnsts_v, "read_prnsts"),
        (reg::NORINTSTS, v.norintsts, "read_norintsts"),
    ];
    let ids: Vec<_> = regs.iter().map(|&(off, var, name)| (off, var, b.block(name))).collect();
    let dataport_r = b.block("dataport_read");
    let dp_word = b.block("dataport_read_word");
    let dp_last = b.cmd_end_block("pio_read_complete");
    let other = b.block("read_other");

    b.select(entry);
    let mut arms: Vec<(u64, sedspec_dbl::ir::BlockId)> =
        ids.iter().map(|&(off, _, blk)| (off, blk)).collect();
    arms.push((reg::BUFDATA, dataport_r));
    b.switch(Expr::bin(BinOp::And, Expr::IoAddr, Expr::lit(0x3f)), arms, other);

    for &(_, var, blk) in &ids {
        b.select(blk);
        b.reply(Expr::var(var));
        b.jump(done);
    }

    b.select(other);
    b.reply(Expr::lit(0));
    b.jump(done);

    // PIO data-port read (CMD17 path).
    b.select(dataport_r);
    b.branch(
        Expr::eq(
            Expr::bin(BinOp::And, Expr::var(v.prnsts_v), Expr::lit(prnsts::BRE)),
            Expr::lit(0),
        ),
        other,
        dp_word,
    );

    b.select(dp_word);
    let word = |k: u64, v: &Vars| {
        Expr::bin(
            BinOp::Shl,
            Expr::buf(
                v.fifo_buffer,
                Expr::bin(
                    BinOp::And,
                    Expr::bin(BinOp::Add, Expr::var(v.data_count), Expr::lit(k)),
                    Expr::lit(FIFO_SIZE - 1),
                ),
            ),
            Expr::lit(k * 8),
        )
    };
    b.reply(Expr::bin(
        BinOp::Or,
        Expr::bin(BinOp::Or, word(0, v), word(1, v)),
        Expr::bin(BinOp::Or, word(2, v), word(3, v)),
    ));
    b.set_var(v.data_count, Expr::bin(BinOp::Add, Expr::var(v.data_count), Expr::lit(4)));
    b.branch(Expr::bin(BinOp::Ge, Expr::var(v.data_count), Expr::var(v.blksize)), dp_last, done);

    b.select(dp_last);
    b.set_var(
        v.prnsts_v,
        Expr::bin(
            BinOp::And,
            Expr::var(v.prnsts_v),
            Expr::un(sedspec_dbl::ir::UnOp::Not, Expr::lit(prnsts::DAT_ACTIVE | prnsts::BRE)),
        ),
    );
    b.set_var(
        v.norintsts,
        Expr::bin(BinOp::Or, Expr::var(v.norintsts), Expr::lit(intsts::XFER_COMPLETE)),
    );
    b.set_var(v.data_count, Expr::lit(0));
    b.intrinsic(Intrinsic::IrqRaise { line: Expr::lit(SDHCI_IRQ) });
    b.jump(done);

    b.finish().expect("sdhci mmio_read program is well-formed")
}

/// Builds the SDHCI model at the given behaviour version.
pub fn build(version: QemuVersion) -> Device {
    let (cs, vars) = control_structure();
    let write = build_mmio_write(&vars, version);
    let read = build_mmio_read(&vars);
    Device::assemble(
        "SDHCI",
        version,
        cs,
        vec![(EntryPoint::MmioWrite, write), (EntryPoint::MmioRead, read)],
        vec![(AddressSpace::Mmio, SDHCI_BASE, 0x40)],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sedspec_dbl::interp::Fault;
    use sedspec_vmm::{IoRequest, VmContext};

    fn ctx() -> VmContext {
        VmContext::new(0x100000, 256)
    }

    fn w(
        d: &mut Device,
        c: &mut VmContext,
        off: u64,
        val: u64,
    ) -> Result<sedspec_dbl::interp::ExecOutcome, Fault> {
        d.handle_io(c, &IoRequest::write(AddressSpace::Mmio, SDHCI_BASE + off, 4, val))
    }

    fn r(d: &mut Device, c: &mut VmContext, off: u64) -> u64 {
        d.handle_io(c, &IoRequest::read(AddressSpace::Mmio, SDHCI_BASE + off, 4)).unwrap().reply
    }

    fn cmd(d: &mut Device, c: &mut VmContext, index: u64) {
        w(d, c, reg::CMDREG, index << 8).unwrap();
    }

    #[test]
    fn if_cond_echoes_argument() {
        let mut d = build(QemuVersion::Patched);
        let mut c = ctx();
        w(&mut d, &mut c, reg::ARGUMENT, 0x1aa).unwrap();
        cmd(&mut d, &mut c, 8);
        assert_eq!(r(&mut d, &mut c, reg::RSP0), 0x1aa);
        assert_ne!(r(&mut d, &mut c, reg::NORINTSTS) & intsts::CMD_COMPLETE, 0);
    }

    #[test]
    fn pio_write_then_read_round_trip() {
        let mut d = build(QemuVersion::Patched);
        let mut c = ctx();
        w(&mut d, &mut c, reg::BLKSIZE, 512).unwrap();
        w(&mut d, &mut c, reg::ARGUMENT, 5).unwrap(); // sector 5
        cmd(&mut d, &mut c, 24);
        assert_ne!(r(&mut d, &mut c, reg::PRNSTS) & prnsts::BWE, 0);
        for i in 0..128u64 {
            w(&mut d, &mut c, reg::BUFDATA, 0x0101_0101u64.wrapping_mul(i) & 0xffff_ffff).unwrap();
        }
        assert_ne!(r(&mut d, &mut c, reg::NORINTSTS) & intsts::XFER_COMPLETE, 0);
        assert_eq!(c.disk.write_count(), 1);
        // Read it back via CMD17.
        cmd(&mut d, &mut c, 17);
        assert_ne!(r(&mut d, &mut c, reg::PRNSTS) & prnsts::BRE, 0);
        let first = r(&mut d, &mut c, reg::BUFDATA);
        assert_eq!(first, 0);
        let second = r(&mut d, &mut c, reg::BUFDATA);
        assert_eq!(second, 0x0101_0101);
    }

    #[test]
    fn sdma_multi_block_write_with_boundary_pauses() {
        let mut d = build(QemuVersion::Patched);
        let mut c = ctx();
        c.mem.write_bytes(0x8000, &vec![0x77u8; 1024]).unwrap();
        w(&mut d, &mut c, reg::SDMASYSAD, 0x8000).unwrap();
        w(&mut d, &mut c, reg::BLKSIZE, 512).unwrap();
        w(&mut d, &mut c, reg::BLKCNT, 2).unwrap();
        w(&mut d, &mut c, reg::ARGUMENT, 10).unwrap();
        w(&mut d, &mut c, reg::TRNMOD, trnmod::DMA | trnmod::MULTI).unwrap();
        cmd(&mut d, &mut c, 25);
        // First boundary pause.
        assert_ne!(r(&mut d, &mut c, reg::NORINTSTS) & intsts::DMA_INT, 0);
        w(&mut d, &mut c, reg::NORINTSTS, intsts::DMA_INT).unwrap(); // ack: block 1 done, pause again
        assert_ne!(r(&mut d, &mut c, reg::NORINTSTS) & intsts::DMA_INT, 0);
        w(&mut d, &mut c, reg::NORINTSTS, intsts::DMA_INT).unwrap(); // ack: block 2 done
        assert_ne!(r(&mut d, &mut c, reg::NORINTSTS) & intsts::XFER_COMPLETE, 0);
        assert_eq!(c.disk.write_count(), 2);
        assert_eq!(c.disk.read_sector(10).unwrap()[0], 0x77);
        assert_eq!(c.disk.read_sector(11).unwrap()[511], 0x77);
    }

    #[test]
    fn sdma_multi_block_read_completes() {
        let mut d = build(QemuVersion::Patched);
        let mut c = ctx();
        c.disk.write_sector(20, &[0x42u8; 512]).unwrap();
        c.disk.write_sector(21, &[0x43u8; 512]).unwrap();
        w(&mut d, &mut c, reg::SDMASYSAD, 0x9000).unwrap();
        w(&mut d, &mut c, reg::BLKSIZE, 512).unwrap();
        w(&mut d, &mut c, reg::BLKCNT, 2).unwrap();
        w(&mut d, &mut c, reg::ARGUMENT, 20).unwrap();
        w(&mut d, &mut c, reg::TRNMOD, trnmod::DMA | trnmod::MULTI).unwrap();
        cmd(&mut d, &mut c, 18);
        assert_eq!(c.mem.read_u8(0x9000).unwrap(), 0x42);
        assert_eq!(c.mem.read_u8(0x9000 + 512).unwrap(), 0x43);
        assert_ne!(r(&mut d, &mut c, reg::NORINTSTS) & intsts::XFER_COMPLETE, 0);
    }

    #[test]
    fn cve_2021_3409_blksize_shrink_underflows_and_overruns() {
        let mut d = build(QemuVersion::V5_2_0);
        let mut c = ctx();
        c.mem.write_bytes(0x8000, &vec![0x55u8; 0x20000].to_vec()).unwrap();
        w(&mut d, &mut c, reg::SDMASYSAD, 0x8000).unwrap();
        w(&mut d, &mut c, reg::BLKSIZE, 512).unwrap();
        w(&mut d, &mut c, reg::BLKCNT, 2).unwrap();
        w(&mut d, &mut c, reg::TRNMOD, trnmod::DMA | trnmod::MULTI).unwrap();
        cmd(&mut d, &mut c, 25);
        // Mid-transfer (256 bytes staged), shrink blksize below data_count.
        w(&mut d, &mut c, reg::BLKSIZE, 128).unwrap(); // accepted: the defect
        assert_eq!(r(&mut d, &mut c, reg::BLKSIZE), 128);
        // Resume: transfer_len = 128 - 256 underflows to 65408.
        let res = w(&mut d, &mut c, reg::NORINTSTS, intsts::DMA_INT);
        match res {
            Ok(out) => {
                assert!(out.spills > 0, "underflowed length must overrun the fifo");
                assert!(out.overflow.arithmetic, "the subtraction must be flagged");
            }
            Err(f) => assert!(matches!(f, Fault::Arena(_)), "unexpected fault {f:?}"),
        }
    }

    #[test]
    fn patched_version_refuses_blksize_mid_transfer() {
        let mut d = build(QemuVersion::Patched);
        let mut c = ctx();
        w(&mut d, &mut c, reg::SDMASYSAD, 0x8000).unwrap();
        w(&mut d, &mut c, reg::BLKSIZE, 512).unwrap();
        w(&mut d, &mut c, reg::BLKCNT, 2).unwrap();
        w(&mut d, &mut c, reg::TRNMOD, trnmod::DMA | trnmod::MULTI).unwrap();
        cmd(&mut d, &mut c, 25);
        w(&mut d, &mut c, reg::BLKSIZE, 128).unwrap(); // ignored while active
        assert_eq!(r(&mut d, &mut c, reg::BLKSIZE), 512);
        let out = w(&mut d, &mut c, reg::NORINTSTS, intsts::DMA_INT).unwrap();
        assert_eq!(out.spills, 0);
        assert!(!out.overflow.arithmetic);
    }

    #[test]
    fn stop_command_clears_transfer_state() {
        let mut d = build(QemuVersion::Patched);
        let mut c = ctx();
        w(&mut d, &mut c, reg::BLKSIZE, 512).unwrap();
        cmd(&mut d, &mut c, 24);
        assert_ne!(r(&mut d, &mut c, reg::PRNSTS) & prnsts::DAT_ACTIVE, 0);
        cmd(&mut d, &mut c, 12);
        assert_eq!(r(&mut d, &mut c, reg::PRNSTS) & prnsts::DAT_ACTIVE, 0);
        // Data port now inert.
        let out = w(&mut d, &mut c, reg::BUFDATA, 0xffff_ffff).unwrap();
        assert_eq!(out.spills, 0);
        assert_eq!(c.disk.write_count(), 0);
    }
}
