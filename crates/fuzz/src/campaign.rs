//! The coverage-guided campaign driver.
//!
//! One campaign = one `(device, version)` pair, one seed, one round
//! budget. The loop is classic grey-box: pick a corpus parent, mutate
//! it (optionally splicing a donor), replay it through the lockstep
//! oracle, keep it iff it lit up a `(handler, block)` edge the corpus
//! has not seen. Everything downstream of the seed is deterministic —
//! no wall clock, no map-order dependence — so `(seed, corpus,
//! rounds)` fully reproduces a run, byte for byte.

use std::io;
use std::path::PathBuf;
use std::sync::Arc;

use sedspec::collect::TrainStep;
use sedspec::escfg::gid;
use sedspec_analysis::analyze_deep_full;
use sedspec_devices::{build_device, DeviceKind, QemuVersion};
use sedspec_obs::CoverageMap;
use sedspec_workloads::generators::training_suite;

use crate::corpus::{self, Artifact};
use crate::mutate::Mutator;
use crate::oracle::{FindingClass, Oracle};
use crate::report::{coverage_triples, DeadSpecEntry, Finding, FindingSummary, FuzzReport};
use crate::rng::FuzzRng;
use crate::train::trained_compiled;

/// Default seed-corpus size when no corpus directory is given.
const DEFAULT_SEEDS: usize = 4;

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// Target device.
    pub device: DeviceKind,
    /// Target device version.
    pub version: QemuVersion,
    /// Campaign seed.
    pub seed: u64,
    /// Bare-side I/O round budget.
    pub rounds: u64,
    /// Optional directory of seed artifacts (`*.json`).
    pub corpus_dir: Option<PathBuf>,
}

/// Everything a finished campaign produced.
pub struct CampaignOutput {
    /// The deterministic report (what `--json` prints).
    pub report: FuzzReport,
    /// Deduplicated findings with witness streams, ordered by key.
    pub findings: Vec<Finding>,
    /// Final corpus (every input that contributed new coverage).
    pub corpus: Vec<Vec<TrainStep>>,
    /// Cumulative coverage over the whole campaign.
    pub coverage: CoverageMap,
    /// The oracle, reusable for minimization / artifact export.
    pub oracle: Oracle,
}

impl CampaignOutput {
    /// Minimizes the corpus (greedy set cover over oracle coverage)
    /// and serializes it plus every finding as artifact files, ready
    /// to commit under `ci/fuzz-corpus/<device>/`. Returns
    /// `(file name, contents)` pairs; the caller does the writing.
    pub fn export_artifacts(&self) -> Vec<(String, String)> {
        let kept = corpus::minimize(&self.corpus, &self.oracle);
        let mut out = Vec::new();
        for (n, &idx) in kept.iter().enumerate() {
            let steps = self.corpus[idx].clone();
            let (expected, _) = self.oracle.run(&steps);
            let artifact = Artifact {
                device: self.report.device.clone(),
                version: self.report.version.clone(),
                steps,
                expected,
            };
            out.push((format!("corpus-{n:03}.json"), artifact.to_json()));
        }
        for (n, f) in self.findings.iter().enumerate() {
            let artifact = Artifact {
                device: self.report.device.clone(),
                version: self.report.version.clone(),
                steps: f.steps.clone(),
                expected: f.classification.clone(),
            };
            out.push((
                format!("finding-{}-{n:03}.json", f.classification.class.name()),
                artifact.to_json(),
            ));
        }
        out
    }
}

/// Runs one campaign to its round budget.
///
/// # Errors
///
/// Fails only on corpus-directory I/O (missing dir is fine — the
/// campaign self-seeds; unreadable/malformed artifacts are not).
pub fn run_campaign(opts: &FuzzOptions) -> io::Result<CampaignOutput> {
    let compiled = trained_compiled(opts.device, opts.version);
    let spec = Arc::clone(compiled.spec_arc());
    let oracle = Oracle::new(opts.device, opts.version, Arc::clone(&compiled));
    let mutator = Mutator::new(build_device(opts.device, opts.version).regions.clone());
    let mut rng = FuzzRng::new(opts.seed);

    // Seed corpus: committed artifacts if a directory was given and
    // exists, otherwise a few benign bring-up cases so the walk starts
    // from trained territory instead of dying at the first access.
    let mut seeds: Vec<Vec<TrainStep>> = Vec::new();
    if let Some(dir) = &opts.corpus_dir {
        if dir.is_dir() {
            for (_, artifact) in corpus::load_dir(dir)? {
                seeds.push(artifact.steps);
            }
        }
    }
    if seeds.is_empty() {
        seeds.extend(training_suite(opts.device, DEFAULT_SEEDS, opts.seed));
    }

    let mut coverage = CoverageMap::new();
    let mut corpus_entries: Vec<Vec<TrainStep>> = Vec::new();
    let mut findings: Vec<Finding> = Vec::new();
    let mut seen_keys: Vec<String> = Vec::new();
    let mut rounds_run = 0u64;
    let mut inputs = 0u64;

    let execute = |steps: Vec<TrainStep>,
                   coverage: &mut CoverageMap,
                   corpus_entries: &mut Vec<Vec<TrainStep>>,
                   findings: &mut Vec<Finding>,
                   seen_keys: &mut Vec<String>,
                   rounds_run: &mut u64,
                   inputs: &mut u64| {
        let (classification, cov) = oracle.run(&steps);
        // Even a stream of unrouted steps costs budget, or a degenerate
        // mutant could spin the loop forever.
        *rounds_run += classification.rounds.max(1);
        *inputs += 1;
        if coverage.absorb(&cov) > 0 {
            corpus_entries.push(steps.clone());
        }
        if classification.class != FindingClass::Clean {
            let key = classification.dedup_key();
            if !seen_keys.contains(&key) {
                seen_keys.push(key);
                findings.push(Finding { classification, steps });
            }
        }
    };

    for steps in seeds {
        execute(
            steps,
            &mut coverage,
            &mut corpus_entries,
            &mut findings,
            &mut seen_keys,
            &mut rounds_run,
            &mut inputs,
        );
    }
    if corpus_entries.is_empty() {
        // Nothing covered anything (empty seeds): start from scratch.
        corpus_entries.push(Vec::new());
    }

    while rounds_run < opts.rounds {
        let parent = &corpus_entries[rng.index(corpus_entries.len())];
        let donor_idx = rng.index(corpus_entries.len());
        let mutant = mutator.mutate(parent, Some(&corpus_entries[donor_idx].clone()), &mut rng);
        execute(
            mutant,
            &mut coverage,
            &mut corpus_entries,
            &mut findings,
            &mut seen_keys,
            &mut rounds_run,
            &mut inputs,
        );
    }

    // Order findings by dedup key so reports are stable regardless of
    // discovery order drift between corpus layouts.
    findings.sort_by_key(|f| f.classification.dedup_key());

    // Dead spec: deployed blocks no input reached, cross-checked
    // against the deep static passes (SA501 dead shadow writes, SA504
    // guest-pinnable cycles) — agreement means the block is suspect,
    // not merely under-fuzzed.
    let deep = analyze_deep_full(&spec);
    let suspect: Vec<(u64, String)> = deep
        .diagnostics
        .iter()
        .filter(|d| (d.code == "SA501" || d.code == "SA504") && d.gid.is_some())
        .map(|d| (d.gid.expect("filtered on Some"), d.code.clone()))
        .collect();
    let mut dead_spec = Vec::new();
    for cfg in &spec.cfgs {
        for (es, block) in cfg.blocks.iter().enumerate() {
            let es = es as u32;
            let program = cfg.program as u32;
            if coverage.contains(program, es) {
                continue;
            }
            let g = gid(cfg.program, es);
            dead_spec.push(DeadSpecEntry {
                program,
                handler: cfg.name.clone(),
                block: es,
                label: block.label.clone(),
                static_code: suspect.iter().find(|(sg, _)| *sg == g).map(|(_, c)| c.clone()),
            });
        }
    }

    let total_blocks = spec.block_count();
    let covered_blocks = coverage.covered();
    let report = FuzzReport {
        device: crate::train::kind_slug(opts.device).to_string(),
        version: opts.version.to_string(),
        seed: opts.seed,
        round_budget: opts.rounds,
        rounds_run,
        inputs,
        corpus_size: corpus_entries.len(),
        covered_blocks,
        total_blocks,
        coverage_permille: if total_blocks == 0 {
            0
        } else {
            (covered_blocks as u64 * 1000) / total_blocks as u64
        },
        coverage: coverage_triples(&coverage),
        findings: findings.iter().map(FindingSummary::of).collect(),
        dead_spec,
    };

    Ok(CampaignOutput { report, findings, corpus: corpus_entries, coverage, oracle })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(version: QemuVersion, seed: u64, rounds: u64) -> FuzzOptions {
        FuzzOptions { device: DeviceKind::Fdc, version, seed, rounds, corpus_dir: None }
    }

    #[test]
    fn campaign_is_deterministic() {
        let a = run_campaign(&opts(QemuVersion::Patched, 11, 400)).unwrap();
        let b = run_campaign(&opts(QemuVersion::Patched, 11, 400)).unwrap();
        assert_eq!(a.report.to_json(), b.report.to_json());
        assert_eq!(a.coverage.to_json(), b.coverage.to_json());
    }

    #[test]
    fn campaign_makes_progress_and_reports_coverage() {
        let out = run_campaign(&opts(QemuVersion::Patched, 7, 400)).unwrap();
        assert!(out.report.rounds_run >= 400);
        assert!(out.report.covered_blocks > 0);
        assert!(out.report.total_blocks >= out.report.covered_blocks);
        assert!(!out.corpus.is_empty());
    }

    #[test]
    fn export_artifacts_replays_clean() {
        let out = run_campaign(&opts(QemuVersion::Patched, 3, 200)).unwrap();
        let files = out.export_artifacts();
        assert!(!files.is_empty());
        for (name, body) in &files {
            let artifact = Artifact::from_json(body).unwrap_or_else(|e| panic!("{name}: {e}"));
            let (got, _) = out.oracle.run(&artifact.steps);
            assert_eq!(got, artifact.expected, "{name}");
        }
    }
}
