//! Coverage-guided differential fuzzing for execution specifications.
//!
//! The enforcement pipeline is only as good as its training envelope:
//! a specification that never saw a code path cannot constrain it, and
//! one trained too narrowly halts benign traffic. This crate probes
//! both failure modes mechanically. A seeded grey-box loop mutates
//! [`TrainStep`](sedspec::collect::TrainStep) streams, replays each
//! candidate against the bare device model *and* the spec-enforced
//! device in lockstep ([`oracle`]), and uses the enforced walk's
//! `(handler, block)` coverage ([`sedspec_obs::CoverageMap`]) as the
//! novelty signal. Divergences classify as:
//!
//! - **false negatives** — the device damaged itself on a path the
//!   spec never flagged (the CVE-2016-1568 class the paper targets);
//! - **false positives** — benign traffic halted, a retraining signal;
//! - **detected** — damage flagged at or before the damage round, the
//!   CVE-rediscovery shape CI asserts on vulnerable builds;
//! - **dead spec** — deployed ES blocks no input reaches, cross-checked
//!   against the deep static passes (SA501/SA504).
//!
//! Campaigns are bit-for-bit replayable from `(seed, corpus, rounds)`:
//! the only randomness is a splitmix64 walk ([`rng`]), nothing reads
//! the clock, and every report collection is deterministically ordered.
//! Interesting inputs are minimized by greedy set cover ([`corpus`])
//! and committed as JSON artifacts that a regression test replays with
//! the exact expected verdict.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod corpus;
pub mod mutate;
pub mod oracle;
pub mod report;
pub mod rng;
pub mod train;

pub use campaign::{run_campaign, CampaignOutput, FuzzOptions};
pub use corpus::{load_dir, minimize, Artifact};
pub use mutate::Mutator;
pub use oracle::{Classification, FindingClass, Oracle};
pub use report::{DeadSpecEntry, Finding, FindingSummary, FuzzReport};
pub use rng::FuzzRng;
pub use train::{kind_slug, parse_kind, parse_version, trained_compiled, trained_spec};
