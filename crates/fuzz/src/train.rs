//! Shared spec-training configuration.
//!
//! Every consumer of a fuzz artifact — the campaign that produced it,
//! the CLI that replays it, the CI regression test that asserts its
//! verdict — must deploy the *same* specification, so the training
//! recipe (benign suite size and seed, matching the `sedspec` CLI
//! defaults) lives here as constants rather than per-call knobs.

use std::sync::Arc;

use sedspec::compiled::CompiledSpec;
use sedspec::pipeline::{train_script, TrainingConfig};
use sedspec::spec::ExecutionSpecification;
use sedspec_devices::{build_device, DeviceKind, QemuVersion};
use sedspec_vmm::VmContext;
use sedspec_workloads::generators::training_suite;

/// Benign training cases per spec (the `sedspec` CLI default).
pub const TRAIN_CASES: usize = 60;

/// Training-suite seed (the `sedspec` CLI default).
pub const TRAIN_SEED: u64 = 0x7a11;

/// Trains the canonical fuzzing spec for `(kind, version)`.
///
/// # Panics
///
/// Panics if the benign suite produces no I/O rounds — that means the
/// generators are broken, not that the input was unlucky.
pub fn trained_spec(kind: DeviceKind, version: QemuVersion) -> ExecutionSpecification {
    let mut device = build_device(kind, version);
    let mut ctx = VmContext::new(crate::oracle::GUEST_MEM, crate::oracle::DISK_SECTORS);
    let suite = training_suite(kind, TRAIN_CASES, TRAIN_SEED);
    train_script(&mut device, &mut ctx, &suite, &TrainingConfig::default())
        .expect("benign training suite must produce I/O rounds")
}

/// [`trained_spec`] compiled and shareable across replays.
pub fn trained_compiled(kind: DeviceKind, version: QemuVersion) -> Arc<CompiledSpec> {
    Arc::new(CompiledSpec::compile(Arc::new(trained_spec(kind, version))))
}

/// Directory-safe device slug used in reports and the corpus layout
/// (`DeviceKind::name` is the paper's display form, with spaces).
pub fn kind_slug(kind: DeviceKind) -> &'static str {
    match kind {
        DeviceKind::Fdc => "fdc",
        DeviceKind::UsbEhci => "usb-ehci",
        DeviceKind::Pcnet => "pcnet",
        DeviceKind::Sdhci => "sdhci",
        DeviceKind::Scsi => "scsi",
    }
}

/// Parses a device name as the corpus directory layout spells it
/// (`fdc`, `usb-ehci`, `pcnet`, `sdhci`, `scsi`).
pub fn parse_kind(s: &str) -> Option<DeviceKind> {
    DeviceKind::all().into_iter().find(|&k| kind_slug(k) == s)
}

/// Parses a version as [`QemuVersion`]'s `Display` spells it
/// (`v2.3.0` … `patched`).
pub fn parse_version(s: &str) -> Option<QemuVersion> {
    QemuVersion::all().into_iter().find(|v| v.to_string() == s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_and_version_round_trip_through_names() {
        for k in DeviceKind::all() {
            assert_eq!(parse_kind(kind_slug(k)), Some(k));
        }
        for v in QemuVersion::all() {
            assert_eq!(parse_version(&v.to_string()), Some(v));
        }
        assert_eq!(parse_kind("floppy"), None);
        assert_eq!(parse_version("v9.9.9"), None);
    }
}
