//! Corpus and artifact lifecycle.
//!
//! Artifacts are self-contained JSON files: device, version, the step
//! stream, and the classification the producing campaign observed. A
//! regression run replays the stream with the canonical training
//! recipe ([`crate::train`]) and asserts the classification matches
//! byte for byte — any drift in device models, spec construction or
//! checker semantics shows up as a failing artifact, pinned to a file.
//!
//! On disk a corpus is a directory of `*.json` files; load order is
//! sorted by file name so campaigns seeded from a directory are
//! deterministic regardless of readdir order.

use std::collections::BTreeSet;
use std::io;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use sedspec::collect::TrainStep;
use sedspec_obs::CoverageMap;

use crate::oracle::{Classification, Oracle};

/// One replayable corpus entry / crash artifact.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Artifact {
    /// Device short name (`DeviceKind::name`).
    pub device: String,
    /// Version string (`QemuVersion` display form).
    pub version: String,
    /// The input stream.
    pub steps: Vec<TrainStep>,
    /// Verdict the producing campaign observed (and CI re-asserts).
    pub expected: Classification,
}

impl Artifact {
    /// Serializes deterministically (field order is declaration order).
    /// Compact, not pretty: witness streams run to hundreds of steps
    /// and these files are committed to the repository.
    ///
    /// # Panics
    ///
    /// Panics if serialization fails, which for this in-memory type
    /// means a serializer bug rather than bad input.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("artifact serializes")
    }

    /// Parses an artifact file's contents.
    ///
    /// # Errors
    ///
    /// Returns the underlying JSON error for malformed input.
    pub fn from_json(s: &str) -> Result<Artifact, serde_json::Error> {
        serde_json::from_str(s)
    }
}

/// Loads every `*.json` artifact under `dir`, sorted by file name.
///
/// # Errors
///
/// Propagates directory/file I/O errors; malformed artifact files are
/// reported as `InvalidData` naming the offending path.
pub fn load_dir(dir: &Path) -> io::Result<Vec<(PathBuf, Artifact)>> {
    let mut names: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    names.sort();
    let mut out = Vec::with_capacity(names.len());
    for path in names {
        let text = std::fs::read_to_string(&path)?;
        let artifact = Artifact::from_json(&text).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("{}: {e}", path.display()))
        })?;
        out.push((path, artifact));
    }
    Ok(out)
}

/// Greedy coverage-preserving reduction.
///
/// Re-runs every entry through the oracle, then repeatedly keeps the
/// entry covering the most not-yet-covered blocks (ties broken by
/// lowest index, so the result is deterministic) until the kept set
/// covers everything the full corpus covered. Returns the indices of
/// the kept entries, in selection order.
pub fn minimize(entries: &[Vec<TrainStep>], oracle: &Oracle) -> Vec<usize> {
    let coverages: Vec<CoverageMap> = entries.iter().map(|e| oracle.run(e).1).collect();
    let union: BTreeSet<(u32, u32)> =
        coverages.iter().flat_map(|c| c.blocks.keys().copied()).collect();
    let mut covered: BTreeSet<(u32, u32)> = BTreeSet::new();
    let mut kept = Vec::new();
    let mut available: Vec<usize> = (0..entries.len()).collect();
    while covered.len() < union.len() {
        let (best_pos, best_gain) = available
            .iter()
            .enumerate()
            .map(|(pos, &i)| {
                let gain = coverages[i].blocks.keys().filter(|k| !covered.contains(k)).count();
                (pos, gain)
            })
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            .expect("union non-empty implies a contributing entry");
        if best_gain == 0 {
            break;
        }
        let idx = available.remove(best_pos);
        covered.extend(coverages[idx].blocks.keys().copied());
        kept.push(idx);
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::FindingClass;
    use sedspec_vmm::{AddressSpace, IoRequest};

    fn artifact() -> Artifact {
        Artifact {
            device: "fdc".to_string(),
            version: "v2.3.0".to_string(),
            steps: vec![
                TrainStep::Io(IoRequest::write(AddressSpace::Pmio, 0x3f5, 1, 0x8e)),
                TrainStep::MemWrite { gpa: 0x100, bytes: vec![1, 2, 3] },
                TrainStep::DelayNs(50),
            ],
            expected: Classification {
                class: FindingClass::Detected,
                rounds: 1,
                damage_round: Some(0),
                damage: Some("spills".to_string()),
                flag_round: Some(0),
                violation: Some("BufferOverflow".to_string()),
                site: Some((0, 7)),
            },
        }
    }

    #[test]
    fn artifact_round_trips_through_json() {
        let a = artifact();
        let back = Artifact::from_json(&a.to_json()).unwrap();
        assert_eq!(a, back);
    }

    #[test]
    fn load_dir_is_sorted_and_strict() {
        let dir = std::env::temp_dir().join("sedspec-fuzz-corpus-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let a = artifact();
        std::fs::write(dir.join("b-second.json"), a.to_json()).unwrap();
        std::fs::write(dir.join("a-first.json"), a.to_json()).unwrap();
        std::fs::write(dir.join("ignored.txt"), "not json").unwrap();
        let loaded = load_dir(&dir).unwrap();
        assert_eq!(loaded.len(), 2);
        assert!(loaded[0].0.ends_with("a-first.json"));
        std::fs::write(dir.join("broken.json"), "{").unwrap();
        assert!(load_dir(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn minimize_drops_redundant_entries() {
        use crate::train::trained_compiled;
        use sedspec_devices::{DeviceKind, QemuVersion};
        let compiled = trained_compiled(DeviceKind::Fdc, QemuVersion::Patched);
        let oracle = Oracle::new(DeviceKind::Fdc, QemuVersion::Patched, compiled);
        let probe = vec![TrainStep::Io(IoRequest::read(AddressSpace::Pmio, 0x3f4, 1))];
        let richer = vec![
            TrainStep::Io(IoRequest::write(AddressSpace::Pmio, 0x3f5, 1, 0x08)),
            TrainStep::Io(IoRequest::read(AddressSpace::Pmio, 0x3f4, 1)),
            TrainStep::Io(IoRequest::read(AddressSpace::Pmio, 0x3f5, 1)),
        ];
        // Duplicate of `richer` adds nothing: greedy keeps at most one.
        let kept = minimize(&[probe, richer.clone(), richer], &oracle);
        assert!(kept.len() <= 2, "{kept:?}");
        assert!(!kept.is_empty());
    }
}
