//! The lockstep differential oracle.
//!
//! Every candidate stream is replayed twice from boot state: once
//! against the bare device model (ground truth — did the emulated
//! device actually misbehave?) and once against the spec-enforced
//! device (verdict — did the walk flag it, and where?). Divergence
//! between the two sides *is* the finding:
//!
//! | bare side            | enforced side              | class           |
//! |----------------------|----------------------------|-----------------|
//! | damaged at round *d* | stopped at round *f* ≤ *d* | `Detected`      |
//! | damaged at round *d* | unstopped, or *f* > *d*    | `FalseNegative` |
//! | clean                | halted                     | `FalsePositive` |
//! | clean                | clean / warned             | `Clean`         |
//!
//! "Stopped" means the checker flagged the round *or* the
//! interpreter's typed-fault containment seam (e.g. `Fault::DmaLimit`)
//! killed it — either way nothing past round *f* reaches the host.
//!
//! `FalseNegative` is the CVE-2016-1568 shape the paper documents: the
//! device tears itself apart on a path the specification never
//! constrained. `FalsePositive` is benign traffic outside the trained
//! envelope — the trace is exported so it can be folded back into
//! training. Both replays share one compiled spec; the enforced side
//! carries a [`CoverageSink`] so the campaign can judge novelty.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use sedspec::checker::WorkingMode;
use sedspec::collect::TrainStep;
use sedspec::compiled::CompiledSpec;
use sedspec::enforce::EnforcingDevice;
use sedspec::replay::{replay_bare, replay_enforced};
use sedspec_dbl::interp::ExecLimits;
use sedspec_devices::{build_device, DeviceKind, QemuVersion};
use sedspec_obs::CoverageMap;
use sedspec_obs::CoverageSink;
use sedspec_vmm::VmContext;

/// Step budget per I/O round: generous for legitimate handlers, tight
/// enough to turn guest-pinned loops into `Fault::StepLimit` quickly
/// (matches the attack-workload harness).
pub const ROUND_STEP_LIMIT: u64 = 50_000;

/// Guest memory given to each replay VM.
pub const GUEST_MEM: usize = 0x20_0000;

/// Disk sectors given to each replay VM.
pub const DISK_SECTORS: usize = 8192;

/// What one differential replay concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FindingClass {
    /// Bare device damaged; enforcement flagged at or before the
    /// damage round — the spec caught it (CVE-rediscovery shape).
    Detected,
    /// Bare device damaged; enforcement missed it or flagged too late.
    FalseNegative,
    /// Bare device clean; enforcement halted the stream anyway.
    FalsePositive,
    /// No divergence.
    Clean,
}

impl FindingClass {
    /// Stable lowercase name used in reports and artifact files.
    pub fn name(self) -> &'static str {
        match self {
            FindingClass::Detected => "detected",
            FindingClass::FalseNegative => "false_negative",
            FindingClass::FalsePositive => "false_positive",
            FindingClass::Clean => "clean",
        }
    }
}

/// Full classification of one input — the artifact "expected verdict".
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Classification {
    /// Divergence class.
    pub class: FindingClass,
    /// Bare-side rounds serviced.
    pub rounds: u64,
    /// First damaged bare round, when any.
    pub damage_round: Option<u64>,
    /// Damage signature (`"spills"`, `"overflow"`, `"fault:…"`).
    pub damage: Option<String>,
    /// First flagged enforced round, when any.
    pub flag_round: Option<u64>,
    /// `kind_name` of the first violation, when flagged.
    pub violation: Option<String>,
    /// `(program, block)` site of the first violation, when known.
    pub site: Option<(u32, u32)>,
}

impl Classification {
    /// Deduplication key: one finding per distinct divergence shape,
    /// not per input that happens to reach it.
    pub fn dedup_key(&self) -> String {
        format!(
            "{}|{}|{}|{:?}",
            self.class.name(),
            self.damage.as_deref().unwrap_or("-"),
            self.violation.as_deref().unwrap_or("-"),
            self.site,
        )
    }
}

/// The differential harness for one `(device, version, spec)` triple.
pub struct Oracle {
    kind: DeviceKind,
    version: QemuVersion,
    compiled: Arc<CompiledSpec>,
    sink: Arc<CoverageSink>,
}

impl Oracle {
    /// Builds an oracle around an already-compiled specification.
    pub fn new(kind: DeviceKind, version: QemuVersion, compiled: Arc<CompiledSpec>) -> Self {
        Oracle { kind, version, compiled, sink: Arc::new(CoverageSink::new()) }
    }

    /// Replays `steps` on both sides from boot state. Returns the
    /// classification and the ES blocks the enforced walk covered.
    pub fn run(&self, steps: &[TrainStep]) -> (Classification, CoverageMap) {
        // Ground truth: the unprotected device.
        let mut bare_dev = build_device(self.kind, self.version);
        bare_dev.set_limits(ExecLimits { max_steps: ROUND_STEP_LIMIT, ..Default::default() });
        let mut bare_ctx = VmContext::new(GUEST_MEM, DISK_SECTORS);
        let bare = replay_bare(&mut bare_dev, &mut bare_ctx, steps);

        // Verdict: the same stream under enforcement, coverage observed.
        let mut enf_dev = build_device(self.kind, self.version);
        enf_dev.set_limits(ExecLimits { max_steps: ROUND_STEP_LIMIT, ..Default::default() });
        let mut enforcer = EnforcingDevice::new_compiled(
            enf_dev,
            Arc::clone(&self.compiled),
            WorkingMode::Protection,
        );
        enforcer.set_sink(Some(self.sink.clone() as Arc<dyn sedspec_obs::ObsSink>));
        let mut enf_ctx = VmContext::new(GUEST_MEM, DISK_SECTORS);
        let enforced = replay_enforced(&mut enforcer, &mut enf_ctx, steps);
        let coverage = self.sink.take();

        let flag_round = enforced.flagged.as_ref().map(|f| f.round);
        // The enforced stream counts as *stopped* whether the checker
        // flagged it or the interpreter's typed-fault containment seam
        // (e.g. `Fault::DmaLimit`) killed the round: either way nothing
        // past that round reaches the host. A false negative requires
        // bare-side damage while the enforced stream ran on unstopped.
        let stop_round = flag_round.or(enforced.unflagged_fault.as_ref().map(|&(r, _)| r));
        // The bare side is the sole ground truth for damage: an
        // enforced-side fault with no bare-side damage is not a finding
        // (the checker's clock charges can shift step-limit timing).
        let class = match (&bare.damage, stop_round) {
            (Some(d), Some(f)) if f <= d.round => FindingClass::Detected,
            (Some(_), _) => FindingClass::FalseNegative,
            (None, _) if enforced.flagged.as_ref().is_some_and(|f| f.halted) => {
                FindingClass::FalsePositive
            }
            (None, _) => FindingClass::Clean,
        };

        let c =
            Classification {
                class,
                rounds: bare.rounds,
                damage_round: bare.damage.as_ref().map(|d| d.round),
                damage: bare.damage.as_ref().map(sedspec::replay::DamageEvent::signature),
                flag_round,
                violation: enforced.flagged.as_ref().map(|f| f.violation.clone()).or_else(|| {
                    enforced.unflagged_fault.as_ref().map(|_| "DeviceFault".to_string())
                }),
                site: enforced.flagged.as_ref().and_then(|f| f.site).map(|(p, b)| (p as u32, b)),
            };
        (c, coverage)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::trained_compiled;
    use sedspec_vmm::{AddressSpace, IoRequest};

    fn wr(port: u64, v: u64) -> TrainStep {
        TrainStep::Io(IoRequest::write(AddressSpace::Pmio, port, 1, v))
    }

    #[test]
    fn venom_is_detected_on_vulnerable_build() {
        let compiled = trained_compiled(DeviceKind::Fdc, QemuVersion::V2_3_0);
        let oracle = Oracle::new(DeviceKind::Fdc, QemuVersion::V2_3_0, compiled);
        let mut steps = vec![wr(0x3f5, 0x8e)];
        steps.extend(std::iter::repeat_n(wr(0x3f5, 0x01), 600));
        let (c, cov) = oracle.run(&steps);
        assert_eq!(c.class, FindingClass::Detected, "{c:?}");
        assert!(cov.covered() > 0, "walk must emit coverage");
    }

    #[test]
    fn benign_training_traffic_is_clean() {
        let compiled = trained_compiled(DeviceKind::Fdc, QemuVersion::Patched);
        let oracle = Oracle::new(DeviceKind::Fdc, QemuVersion::Patched, compiled);
        let steps =
            vec![wr(0x3f5, 0x08), TrainStep::Io(IoRequest::read(AddressSpace::Pmio, 0x3f4, 1))];
        let (c, _) = oracle.run(&steps);
        assert_eq!(c.class, FindingClass::Clean, "{c:?}");
    }

    #[test]
    fn classification_is_deterministic() {
        let compiled = trained_compiled(DeviceKind::Fdc, QemuVersion::V2_3_0);
        let oracle = Oracle::new(DeviceKind::Fdc, QemuVersion::V2_3_0, compiled);
        let steps = vec![wr(0x3f5, 0x8e), wr(0x3f5, 1), wr(0x3f5, 2)];
        let (a, ca) = oracle.run(&steps);
        let (b, cb) = oracle.run(&steps);
        assert_eq!(a, b);
        assert_eq!(ca, cb);
    }
}
