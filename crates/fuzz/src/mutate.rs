//! Stream mutation engine.
//!
//! Inputs are [`TrainStep`] streams — the same unit training scripts
//! and CVE PoCs are written in, so corpus entries, PoC prefixes and
//! mutants all replay through one code path. Operators are the usual
//! grey-box set (bit flips, interesting constants, duplication for
//! loop amplification, deletion, swap, truncation, splice, appended
//! random I/O) constrained to the device's claimed regions so mutants
//! keep routing to the device instead of dying in the bus.

use sedspec::collect::TrainStep;
use sedspec_vmm::{AddressSpace, IoRequest};

use crate::rng::FuzzRng;

/// Boundary and sentinel values that historically break device models:
/// sign boundaries, width boundaries, all-ones of each width.
pub const INTERESTING: [u64; 14] = [
    0,
    1,
    0x7f,
    0x80,
    0xff,
    0x100,
    0x7fff,
    0x8000,
    0xffff,
    0x1_0000,
    0x7fff_ffff,
    0x8000_0000,
    0xffff_ffff,
    u64::MAX,
];

/// Caps mutant growth: duplication and splicing stop extending a
/// stream past this many steps (Venom-class floods need ~600).
const MAX_STEPS: usize = 1200;

/// Stream mutator bound to one device's address regions.
#[derive(Debug, Clone)]
pub struct Mutator {
    regions: Vec<(AddressSpace, u64, u64)>,
    accepts_frames: bool,
}

impl Mutator {
    /// A mutator targeting a device claiming `regions`
    /// (`(space, base, len)` as [`sedspec_devices::Device::regions`]).
    pub fn new(regions: Vec<(AddressSpace, u64, u64)>) -> Self {
        let accepts_frames = regions.iter().any(|(s, ..)| *s == AddressSpace::NetFrame);
        Mutator { regions, accepts_frames }
    }

    /// A random register access within the device's claimed regions.
    fn random_io(&self, rng: &mut FuzzRng) -> IoRequest {
        let io_regions: Vec<_> =
            self.regions.iter().filter(|(s, ..)| *s != AddressSpace::NetFrame).collect();
        if self.accepts_frames && (io_regions.is_empty() || rng.chance(1, 6)) {
            let len = 14 + rng.index(1600);
            let fill = rng.next_u64() as u8;
            return IoRequest::net_frame(vec![fill; len]);
        }
        let &&(space, base, len) = &io_regions[rng.index(io_regions.len())];
        let addr = base + rng.below(len);
        let size = [1u8, 2, 4][rng.index(3)];
        if rng.chance(2, 3) {
            let data = if rng.chance(1, 2) {
                INTERESTING[rng.index(INTERESTING.len())]
            } else {
                rng.next_u64() & 0xffff
            };
            IoRequest::write(space, addr, size, data)
        } else {
            IoRequest::read(space, addr, size)
        }
    }

    /// Applies one random operator to `steps` in place. Returns the
    /// operator's short name (campaign statistics / debugging).
    #[allow(clippy::too_many_lines)]
    fn apply_one(&self, steps: &mut Vec<TrainStep>, rng: &mut FuzzRng) -> &'static str {
        if steps.is_empty() {
            steps.push(TrainStep::Io(self.random_io(rng)));
            return "seed";
        }
        match rng.below(10) {
            // Bit flip in a write's data value.
            0 => {
                let i = rng.index(steps.len());
                if let TrainStep::Io(req) = &mut steps[i] {
                    if req.is_write() {
                        req.data ^= 1 << rng.below(32);
                        return "bitflip";
                    }
                }
                steps.push(TrainStep::Io(self.random_io(rng)));
                "append"
            }
            // Replace a write's data with an interesting constant.
            1 => {
                let i = rng.index(steps.len());
                if let TrainStep::Io(req) = &mut steps[i] {
                    if req.is_write() {
                        req.data = INTERESTING[rng.index(INTERESTING.len())];
                        return "interesting";
                    }
                }
                steps.push(TrainStep::Io(self.random_io(rng)));
                "append"
            }
            // Small additive delta on a write's data.
            2 => {
                let i = rng.index(steps.len());
                if let TrainStep::Io(req) = &mut steps[i] {
                    if req.is_write() {
                        let delta = rng.below(64) as i64 - 32;
                        req.data = req.data.wrapping_add(delta as u64);
                        return "delta";
                    }
                }
                steps.push(TrainStep::Io(self.random_io(rng)));
                "append"
            }
            // Re-aim an access at another claimed address.
            3 => {
                let i = rng.index(steps.len());
                if let TrainStep::Io(req) = &mut steps[i] {
                    if req.space != AddressSpace::NetFrame {
                        if let Some(&(_, base, len)) = self
                            .regions
                            .iter()
                            .find(|(s, ..)| *s == req.space && *s != AddressSpace::NetFrame)
                        {
                            req.addr = base + rng.below(len);
                            return "reaim";
                        }
                    }
                }
                steps.push(TrainStep::Io(self.random_io(rng)));
                "append"
            }
            // Duplicate one step many times: loop / flood amplification
            // (the Venom shape is one command byte repeated past FIFO).
            4 => {
                let i = rng.index(steps.len());
                let reps = [2usize, 8, 32, 128, 700][rng.index(5)];
                let reps = reps.min(MAX_STEPS.saturating_sub(steps.len()));
                let step = steps[i].clone();
                let tail = steps.split_off(i + 1);
                steps.extend(std::iter::repeat_n(step, reps));
                steps.extend(tail);
                "amplify"
            }
            // Delete a step.
            5 => {
                let i = rng.index(steps.len());
                steps.remove(i);
                "delete"
            }
            // Swap two steps.
            6 => {
                let a = rng.index(steps.len());
                let b = rng.index(steps.len());
                steps.swap(a, b);
                "swap"
            }
            // Truncate the tail.
            7 => {
                let keep = 1 + rng.index(steps.len());
                steps.truncate(keep);
                "truncate"
            }
            // Mutate guest memory staged for DMA descriptors, or a
            // frame payload byte; falls back to append.
            8 => {
                let i = rng.index(steps.len());
                match &mut steps[i] {
                    TrainStep::MemWrite { bytes, .. } if !bytes.is_empty() => {
                        let k = rng.index(bytes.len());
                        bytes[k] = if rng.chance(1, 2) {
                            bytes[k] ^ (1 << rng.below(8)) as u8
                        } else {
                            (INTERESTING[rng.index(INTERESTING.len())] & 0xff) as u8
                        };
                        "memwrite"
                    }
                    TrainStep::Io(req) if !req.payload.is_empty() => {
                        let k = rng.index(req.payload.len());
                        req.payload[k] ^= (1 << rng.below(8)) as u8;
                        "payload"
                    }
                    _ => {
                        steps.push(TrainStep::Io(self.random_io(rng)));
                        "append"
                    }
                }
            }
            // Insert a fresh random access at a random position.
            _ => {
                let i = rng.index(steps.len() + 1);
                steps.insert(i, TrainStep::Io(self.random_io(rng)));
                "insert"
            }
        }
    }

    /// Produces a mutant of `parent`, optionally splicing a prefix of
    /// `donor` (another corpus entry) in front of the mutation burst.
    pub fn mutate(
        &self,
        parent: &[TrainStep],
        donor: Option<&[TrainStep]>,
        rng: &mut FuzzRng,
    ) -> Vec<TrainStep> {
        let mut steps: Vec<TrainStep> = parent.to_vec();
        if let Some(d) = donor {
            if !d.is_empty() && rng.chance(1, 5) {
                let cut = 1 + rng.index(d.len());
                let at = rng.index(steps.len() + 1);
                let mut spliced = steps[..at].to_vec();
                spliced.extend_from_slice(&d[..cut]);
                spliced.extend_from_slice(&steps[at..]);
                steps = spliced;
                steps.truncate(MAX_STEPS);
            }
        }
        let ops = 1 + rng.index(4);
        for _ in 0..ops {
            self.apply_one(&mut steps, rng);
        }
        steps.truncate(MAX_STEPS);
        if steps.is_empty() {
            // A delete can empty a one-step parent; an empty mutant
            // replays zero rounds and teaches the campaign nothing.
            steps.push(TrainStep::Io(self.random_io(rng)));
        }
        steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pmio_mutator() -> Mutator {
        Mutator::new(vec![(AddressSpace::Pmio, 0x3f0, 8)])
    }

    #[test]
    fn mutants_stay_bounded_and_nonempty() {
        let m = pmio_mutator();
        let mut rng = FuzzRng::new(3);
        let parent = vec![TrainStep::Io(IoRequest::write(AddressSpace::Pmio, 0x3f5, 1, 8))];
        for _ in 0..200 {
            let child = m.mutate(&parent, Some(&parent), &mut rng);
            assert!(!child.is_empty());
            assert!(child.len() <= MAX_STEPS);
        }
    }

    #[test]
    fn mutation_is_deterministic_per_seed() {
        let m = pmio_mutator();
        let parent = vec![
            TrainStep::Io(IoRequest::write(AddressSpace::Pmio, 0x3f5, 1, 8)),
            TrainStep::Io(IoRequest::read(AddressSpace::Pmio, 0x3f4, 1)),
        ];
        let run = |seed| {
            let mut rng = FuzzRng::new(seed);
            (0..32).map(|_| m.mutate(&parent, None, &mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn random_io_respects_regions() {
        let m = pmio_mutator();
        let mut rng = FuzzRng::new(1);
        for _ in 0..300 {
            let io = m.random_io(&mut rng);
            assert_eq!(io.space, AddressSpace::Pmio);
            assert!((0x3f0..0x3f8).contains(&io.addr));
        }
    }

    #[test]
    fn frame_mutation_only_for_frame_devices() {
        let m =
            Mutator::new(vec![(AddressSpace::Pmio, 0x300, 0x20), (AddressSpace::NetFrame, 0, 1)]);
        let mut rng = FuzzRng::new(5);
        let saw_frame = (0..200).any(|_| m.random_io(&mut rng).space == AddressSpace::NetFrame);
        assert!(saw_frame);
    }
}
