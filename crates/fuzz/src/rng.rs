//! The fuzzer's deterministic random stream.
//!
//! Same splitmix64 core as `sedspec-chaos` uses for fault injection:
//! no wall clock, no OS entropy, every draw a pure function of the
//! seed, so a campaign is bit-for-bit replayable from `(seed, corpus)`.

/// One splitmix64 scramble step.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic generator over a splitmix64 walk.
#[derive(Debug, Clone)]
pub struct FuzzRng {
    state: u64,
}

impl FuzzRng {
    /// Seeds the stream. Equal seeds yield equal streams forever.
    pub fn new(seed: u64) -> Self {
        FuzzRng { state: splitmix64(seed ^ 0x5ed5_9ec5_ed59_ec01) }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        splitmix64(self.state)
    }

    /// Uniform draw in `[0, n)`; `n = 0` yields 0.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        self.next_u64() % n
    }

    /// Uniform usize index into a slice of length `n`; `n = 0` yields 0.
    pub fn index(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// True with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = FuzzRng::new(42);
        let mut b = FuzzRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = FuzzRng::new(1);
        let mut b = FuzzRng::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn below_respects_bound() {
        let mut r = FuzzRng::new(7);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
        }
        assert_eq!(r.below(0), 0);
    }
}
