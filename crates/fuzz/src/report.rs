//! Deterministic campaign reports.
//!
//! The report is the CI contract: two runs with the same `(seed,
//! corpus, rounds)` must serialize to the *same bytes* (the workflow
//! literally `cmp`s them), so everything here is ordered — findings by
//! dedup key, coverage by block key, dead-spec by site — and nothing
//! records wall-clock time or host state.

use serde::{Deserialize, Serialize};

use sedspec::collect::TrainStep;
use sedspec_obs::CoverageMap;

use crate::oracle::{Classification, FindingClass};

/// One deduplicated divergence, with the witness stream attached.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Finding {
    /// The verdict that made this a finding.
    pub classification: Classification,
    /// The witness input.
    pub steps: Vec<TrainStep>,
}

/// Finding summary embedded in the report (witness length, not body —
/// full streams live in exported artifacts).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FindingSummary {
    /// Divergence class name (`detected` / `false_negative` / …).
    pub class: String,
    /// Damage signature on the bare side, when damaged.
    pub damage: Option<String>,
    /// Bare round the damage landed in.
    pub damage_round: Option<u64>,
    /// Enforced round the walk flagged.
    pub flag_round: Option<u64>,
    /// Violation kind name, when flagged.
    pub violation: Option<String>,
    /// `(program, block)` violation site, when known.
    pub site: Option<(u32, u32)>,
    /// Steps in the witness stream.
    pub steps_len: usize,
}

impl FindingSummary {
    /// Summarizes a finding for the report body.
    pub fn of(f: &Finding) -> FindingSummary {
        FindingSummary {
            class: f.classification.class.name().to_string(),
            damage: f.classification.damage.clone(),
            damage_round: f.classification.damage_round,
            flag_round: f.classification.flag_round,
            violation: f.classification.violation.clone(),
            site: f.classification.site,
            steps_len: f.steps.len(),
        }
    }
}

/// A spec block no fuzz input reached.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeadSpecEntry {
    /// Handler program index.
    pub program: u32,
    /// Handler name.
    pub handler: String,
    /// ES block index.
    pub block: u32,
    /// Block label.
    pub label: String,
    /// Static-analysis code (`SA501`/`SA504`) that independently
    /// flagged this site, when the deep passes agree it is suspect.
    pub static_code: Option<String>,
}

/// Full campaign report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FuzzReport {
    /// Device short name.
    pub device: String,
    /// Device version string.
    pub version: String,
    /// Campaign seed.
    pub seed: u64,
    /// Requested round budget.
    pub round_budget: u64,
    /// Bare-side I/O rounds actually consumed.
    pub rounds_run: u64,
    /// Inputs executed (seeds + mutants).
    pub inputs: u64,
    /// Inputs that contributed new coverage (final corpus size).
    pub corpus_size: usize,
    /// Distinct ES blocks covered.
    pub covered_blocks: usize,
    /// Total ES blocks in the deployed spec.
    pub total_blocks: usize,
    /// Coverage in permille of `total_blocks` (integer, so the report
    /// never depends on float formatting).
    pub coverage_permille: u64,
    /// Ordered `(program, block, hits)` coverage triples.
    pub coverage: Vec<(u32, u32, u64)>,
    /// Deduplicated findings, ordered by dedup key.
    pub findings: Vec<FindingSummary>,
    /// Spec blocks never reached, with static cross-check.
    pub dead_spec: Vec<DeadSpecEntry>,
}

impl FuzzReport {
    /// Count of findings in `class`.
    pub fn count(&self, class: FindingClass) -> usize {
        self.findings.iter().filter(|f| f.class == class.name()).count()
    }

    /// Deterministic JSON (field order = declaration order, every
    /// collection pre-sorted).
    ///
    /// # Panics
    ///
    /// Panics only on a serializer bug — the type is self-contained.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// Parses a serialized report.
    ///
    /// # Errors
    ///
    /// Returns the underlying JSON error for malformed input.
    pub fn from_json(s: &str) -> Result<FuzzReport, serde_json::Error> {
        serde_json::from_str(s)
    }
}

/// Flattens a [`CoverageMap`] into the report's ordered triples.
pub fn coverage_triples(map: &CoverageMap) -> Vec<(u32, u32, u64)> {
    map.blocks.iter().map(|(&(p, b), &h)| (p, b, h)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trips_and_is_stable() {
        let r = FuzzReport {
            device: "fdc".to_string(),
            version: "patched".to_string(),
            seed: 7,
            round_budget: 100,
            rounds_run: 100,
            inputs: 12,
            corpus_size: 3,
            covered_blocks: 10,
            total_blocks: 40,
            coverage_permille: 250,
            coverage: vec![(0, 1, 5), (0, 2, 1)],
            findings: vec![FindingSummary {
                class: "detected".to_string(),
                damage: Some("spills".to_string()),
                damage_round: Some(9),
                flag_round: Some(3),
                violation: Some("BufferOverflow".to_string()),
                site: Some((0, 7)),
                steps_len: 601,
            }],
            dead_spec: vec![DeadSpecEntry {
                program: 1,
                handler: "fdc_write".to_string(),
                block: 9,
                label: "dead".to_string(),
                static_code: Some("SA501".to_string()),
            }],
        };
        let json = r.to_json();
        assert_eq!(json, r.to_json(), "serialization must be stable");
        let back = FuzzReport::from_json(&json).unwrap();
        assert_eq!(r, back);
        assert_eq!(back.count(crate::oracle::FindingClass::Detected), 1);
    }
}
