//! Ergonomic construction of DBL programs.
//!
//! [`ProgramBuilder`] lets device authors declare blocks first (so
//! forward jumps are easy), then fill each block with statements and a
//! terminator. [`ProgramBuilder::finish`] runs the structural validator
//! before handing out the program.

use std::collections::BTreeMap;

use crate::ir::{
    Block, BlockId, BlockKind, BufId, Expr, Intrinsic, LocalId, Program, Stmt, Terminator, VarId,
    Width,
};
use crate::verify::{self, VerifyError};

/// Builder for one device handler program.
///
/// # Examples
///
/// ```
/// use sedspec_dbl::builder::ProgramBuilder;
/// use sedspec_dbl::ir::Expr;
///
/// let mut b = ProgramBuilder::new("noop");
/// let entry = b.entry_block("entry");
/// b.select(entry);
/// b.exit();
/// let prog = b.finish()?;
/// assert_eq!(prog.name, "noop");
/// # Ok::<(), sedspec_dbl::verify::VerifyError>(())
/// ```
#[derive(Debug)]
pub struct ProgramBuilder {
    name: String,
    blocks: Vec<PendingBlock>,
    entry: Option<BlockId>,
    current: Option<BlockId>,
    fn_table: BTreeMap<u64, BlockId>,
    locals: Vec<(String, Width)>,
}

#[derive(Debug)]
struct PendingBlock {
    label: String,
    stmts: Vec<Stmt>,
    term: Option<Terminator>,
    kind: BlockKind,
}

impl ProgramBuilder {
    /// A new builder for a program named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            blocks: Vec::new(),
            entry: None,
            current: None,
            fn_table: BTreeMap::new(),
            locals: Vec::new(),
        }
    }

    /// Declares a block with a label; statements are added after
    /// [`ProgramBuilder::select`]ing it.
    pub fn block(&mut self, label: impl Into<String>) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(PendingBlock {
            label: label.into(),
            stmts: Vec::new(),
            term: None,
            kind: BlockKind::Plain,
        });
        id
    }

    /// Declares the entry block (must be called exactly once).
    pub fn entry_block(&mut self, label: impl Into<String>) -> BlockId {
        let id = self.block(label);
        self.entry = Some(id);
        id
    }

    /// Declares a block that immediately exits; convenient as a shared
    /// "done" target.
    pub fn exit_block(&mut self, label: impl Into<String>) -> BlockId {
        let id = self.block(label);
        self.blocks[id.0 as usize].term = Some(Terminator::Exit);
        id
    }

    /// Declares a command-decision block (paper block type).
    pub fn cmd_decision_block(&mut self, label: impl Into<String>) -> BlockId {
        let id = self.block(label);
        self.blocks[id.0 as usize].kind = BlockKind::CmdDecision;
        id
    }

    /// Declares a command-end block (paper block type).
    pub fn cmd_end_block(&mut self, label: impl Into<String>) -> BlockId {
        let id = self.block(label);
        self.blocks[id.0 as usize].kind = BlockKind::CmdEnd;
        id
    }

    /// Declares a handler-scope local.
    pub fn local(&mut self, name: impl Into<String>, width: Width) -> LocalId {
        let id = LocalId(self.locals.len() as u32);
        self.locals.push((name.into(), width));
        id
    }

    /// Registers `fn_id -> entry` in the indirect-call table.
    pub fn register_fn(&mut self, fn_id: u64, entry: BlockId) {
        self.fn_table.insert(fn_id, entry);
    }

    /// Makes `block` the target of subsequent statement/terminator calls.
    ///
    /// # Panics
    ///
    /// Panics if `block` was not declared by this builder.
    pub fn select(&mut self, block: BlockId) {
        assert!((block.0 as usize) < self.blocks.len(), "select of undeclared block {block:?}");
        self.current = Some(block);
    }

    fn cur(&mut self) -> &mut PendingBlock {
        let id = self.current.expect("no block selected");
        &mut self.blocks[id.0 as usize]
    }

    /// Appends `SetVar(var, e)`.
    pub fn set_var(&mut self, var: VarId, e: Expr) {
        self.cur().stmts.push(Stmt::SetVar(var, e));
    }

    /// Appends `SetLocal(l, e)`.
    pub fn set_local(&mut self, l: LocalId, e: Expr) {
        self.cur().stmts.push(Stmt::SetLocal(l, e));
    }

    /// Appends `BufStore(buf, idx, val)`.
    pub fn buf_store(&mut self, buf: BufId, idx: Expr, val: Expr) {
        self.cur().stmts.push(Stmt::BufStore(buf, idx, val));
    }

    /// Appends `BufFill(buf, val)`.
    pub fn buf_fill(&mut self, buf: BufId, val: Expr) {
        self.cur().stmts.push(Stmt::BufFill(buf, val));
    }

    /// Appends a payload copy.
    pub fn copy_payload(&mut self, buf: BufId, buf_off: Expr, len: Expr) {
        self.cur().stmts.push(Stmt::CopyPayload { buf, buf_off, len });
    }

    /// Appends an intrinsic.
    pub fn intrinsic(&mut self, i: Intrinsic) {
        self.cur().stmts.push(Stmt::Intrinsic(i));
    }

    /// Appends `IoReply { value }` — the value a guest read returns.
    pub fn reply(&mut self, value: Expr) {
        self.intrinsic(Intrinsic::IoReply { value });
    }

    /// Terminates the current block with an unconditional jump.
    pub fn jump(&mut self, to: BlockId) {
        self.cur().term = Some(Terminator::Jump(to));
    }

    /// Terminates the current block with a conditional branch.
    pub fn branch(&mut self, cond: Expr, taken: BlockId, not_taken: BlockId) {
        self.cur().term = Some(Terminator::Branch { cond, taken, not_taken });
    }

    /// Terminates the current block with a multi-way switch.
    pub fn switch(&mut self, scrutinee: Expr, arms: Vec<(u64, BlockId)>, default: BlockId) {
        self.cur().term = Some(Terminator::Switch { scrutinee, arms, default });
    }

    /// Terminates the current block with an indirect call through `ptr`.
    pub fn indirect_call(&mut self, ptr: VarId, ret: BlockId) {
        self.cur().term = Some(Terminator::IndirectCall { ptr, ret });
    }

    /// Terminates the current block with a return (from an indirect call).
    pub fn ret(&mut self) {
        self.cur().term = Some(Terminator::Return);
    }

    /// Terminates the current block with handler exit.
    pub fn exit(&mut self) {
        self.cur().term = Some(Terminator::Exit);
    }

    /// Validates and returns the program.
    ///
    /// # Errors
    ///
    /// Returns a [`VerifyError`] if the entry block is missing, any block
    /// lacks a terminator, or any reference is out of range.
    pub fn finish(self) -> Result<Program, VerifyError> {
        let entry = self.entry.ok_or(VerifyError::NoEntry)?;
        let mut blocks = Vec::with_capacity(self.blocks.len());
        for (i, pb) in self.blocks.into_iter().enumerate() {
            let term = pb.term.ok_or(VerifyError::MissingTerminator {
                block: BlockId(i as u32),
                label: pb.label.clone(),
            })?;
            blocks.push(Block { label: pb.label, stmts: pb.stmts, term, kind: pb.kind });
        }
        let prog = Program {
            name: self.name,
            blocks,
            entry,
            fn_table: self.fn_table,
            locals: self.locals,
        };
        verify::verify(&prog)?;
        Ok(prog)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::BinOp;

    #[test]
    fn builds_branching_program() {
        let mut b = ProgramBuilder::new("p");
        let e = b.entry_block("entry");
        let t = b.block("t");
        let x = b.exit_block("x");
        b.select(e);
        b.branch(Expr::bin(BinOp::Eq, Expr::IoData, Expr::lit(1)), t, x);
        b.select(t);
        b.jump(x);
        let p = b.finish().unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.entry, e);
    }

    #[test]
    fn missing_terminator_is_error() {
        let mut b = ProgramBuilder::new("p");
        let e = b.entry_block("entry");
        b.select(e); // never terminated
        assert!(matches!(b.finish(), Err(VerifyError::MissingTerminator { .. })));
    }

    #[test]
    fn missing_entry_is_error() {
        let b = ProgramBuilder::new("p");
        assert!(matches!(b.finish(), Err(VerifyError::NoEntry)));
    }

    #[test]
    fn block_kinds_are_recorded() {
        let mut b = ProgramBuilder::new("p");
        let e = b.entry_block("entry");
        let d = b.cmd_decision_block("decide");
        let end = b.cmd_end_block("cmd_end");
        let x = b.exit_block("x");
        b.select(e);
        b.jump(d);
        b.select(d);
        b.switch(Expr::IoData, vec![(0, end)], end);
        b.select(end);
        b.jump(x);
        let p = b.finish().unwrap();
        assert_eq!(p.block(d).kind, BlockKind::CmdDecision);
        assert_eq!(p.block(end).kind, BlockKind::CmdEnd);
        assert_eq!(p.block(e).kind, BlockKind::Plain);
    }

    #[test]
    fn locals_and_fn_table() {
        let mut b = ProgramBuilder::new("p");
        let e = b.entry_block("entry");
        let f = b.block("fn");
        let x = b.exit_block("x");
        let l = b.local("tmp", Width::W32);
        b.register_fn(0x10, f);
        b.select(e);
        b.set_local(l, Expr::lit(1));
        b.jump(x);
        b.select(f);
        b.ret();
        let p = b.finish().unwrap();
        assert_eq!(p.locals.len(), 1);
        assert_eq!(p.fn_table[&0x10], f);
        assert_eq!(l, LocalId(0));
    }
}
