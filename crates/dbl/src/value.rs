//! Width-aware arithmetic with overflow reporting.
//!
//! DBL arithmetic wraps at the result width — like the machine code the
//! paper instruments — and every operation reports whether it wrapped.
//! That report is the reproduction of "changes in relevant bits in the
//! flag register at runtime" which the parameter check strategy consumes
//! (Section VI-A of the paper), combined with UBSan-style type metadata
//! (each variable's declared width and signedness).

use serde::{Deserialize, Serialize};

use crate::ir::{BinOp, UnOp, Width};

/// A value tagged with its width and signedness.
///
/// The raw bits live in `bits`, always zero-extended to 64; signed
/// interpretation happens at the operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TypedValue {
    /// Raw bits, zero-extended.
    pub bits: u64,
    /// Operand width.
    pub width: Width,
    /// Whether comparisons/shifts treat the value as two's-complement.
    pub signed: bool,
}

impl TypedValue {
    /// An unsigned value of the given width (truncating `bits`).
    pub fn unsigned(bits: u64, width: Width) -> Self {
        TypedValue { bits: bits & width.mask(), width, signed: false }
    }

    /// A signed value of the given width (truncating `bits`).
    pub fn signed(bits: u64, width: Width) -> Self {
        TypedValue { bits: bits & width.mask(), width, signed: true }
    }

    /// A 64-bit unsigned value.
    pub fn u64(bits: u64) -> Self {
        TypedValue::unsigned(bits, Width::W64)
    }

    /// The value interpreted according to its signedness, as `i128`.
    pub fn as_i128(&self) -> i128 {
        if self.signed {
            let shift = 64 - self.width.bits();
            (((self.bits << shift) as i64) >> shift) as i128
        } else {
            self.bits as i128
        }
    }

    /// Whether the value is nonzero (branch truthiness).
    pub fn is_true(&self) -> bool {
        self.bits != 0
    }

    /// Re-types the value to `width`/`signed`, truncating and reporting
    /// whether the mathematical value survived.
    pub fn convert(&self, width: Width, signed: bool) -> (TypedValue, bool) {
        let math = self.as_i128();
        let out = if signed {
            TypedValue::signed(self.bits, width)
        } else {
            TypedValue::unsigned(self.bits, width)
        };
        (out, out.as_i128() != math)
    }
}

/// Kinds of arithmetic anomaly one operation can report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OverflowKind {
    /// No anomaly.
    None,
    /// Result of `+`/`-`/`*` did not fit the operand width.
    Arithmetic,
    /// Assignment truncated the value (destination too narrow).
    Truncation,
}

/// Flags accumulated while evaluating an expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct OverflowFlags {
    /// Some `+`/`-`/`*` in the expression wrapped.
    pub arithmetic: bool,
    /// Some assignment/conversion truncated.
    pub truncation: bool,
}

impl OverflowFlags {
    /// Flags with nothing set.
    pub fn clear() -> Self {
        OverflowFlags::default()
    }

    /// Whether any anomaly was recorded.
    pub fn any(&self) -> bool {
        self.arithmetic || self.truncation
    }

    /// Merges another set of flags into this one.
    pub fn merge(&mut self, other: OverflowFlags) {
        self.arithmetic |= other.arithmetic;
        self.truncation |= other.truncation;
    }
}

/// Evaluation errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithError {
    /// Division or remainder by zero.
    DivideByZero,
}

impl std::fmt::Display for ArithError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArithError::DivideByZero => write!(f, "division by zero"),
        }
    }
}

impl std::error::Error for ArithError {}

/// Applies a unary operator.
#[inline]
pub fn apply_unop(op: UnOp, a: TypedValue) -> TypedValue {
    let bits = match op {
        UnOp::Not => !a.bits,
        UnOp::Neg => a.bits.wrapping_neg(),
        UnOp::BoolNot => u64::from(a.bits == 0),
    };
    if op == UnOp::BoolNot {
        TypedValue::unsigned(bits, Width::W8)
    } else if a.signed {
        TypedValue::signed(bits, a.width)
    } else {
        TypedValue::unsigned(bits, a.width)
    }
}

/// Applies a binary operator at the common width, reporting overflow.
///
/// The result width is the wider operand's width; signedness is OR of the
/// operands' (mixed-signedness comparisons compare as signed, which is
/// what lets a negative `setup_index` be seen as such — CVE-2020-14364).
/// Comparisons yield an unsigned 8-bit 0/1.
///
/// # Errors
///
/// Returns [`ArithError::DivideByZero`] for `/` or `%` by zero.
#[inline]
pub fn apply_binop(
    op: BinOp,
    a: TypedValue,
    b: TypedValue,
) -> Result<(TypedValue, OverflowKind), ArithError> {
    let width = a.width.max(b.width);
    let signed = a.signed || b.signed;
    let (la, lb) = (a.as_i128(), b.as_i128());
    // Operand bits materialized at the *result* width: a narrower signed
    // operand sign-extends (its mathematical value modulo 2^width), so
    // e.g. `u64 + i32(-1)` wraps the same way the C expression does.
    let (ea, eb) = (la as u64 & width.mask(), lb as u64 & width.mask());
    let make = |bits: u64| {
        if signed {
            TypedValue::signed(bits, width)
        } else {
            TypedValue::unsigned(bits, width)
        }
    };
    let range_check = |math: Option<i128>, v: TypedValue| -> OverflowKind {
        match math {
            Some(m) if v.as_i128() == m => OverflowKind::None,
            _ => OverflowKind::Arithmetic,
        }
    };
    let out = match op {
        BinOp::Add => {
            let math = la.checked_add(lb);
            let v = make(ea.wrapping_add(eb) & width.mask());
            (v, range_check(math, v))
        }
        BinOp::Sub => {
            let math = la.checked_sub(lb);
            let v = make(ea.wrapping_sub(eb) & width.mask());
            (v, range_check(math, v))
        }
        BinOp::Mul => {
            let math = la.checked_mul(lb);
            let v = make(ea.wrapping_mul(eb) & width.mask());
            (v, range_check(math, v))
        }
        BinOp::Div => {
            if lb == 0 {
                return Err(ArithError::DivideByZero);
            }
            let bits = if signed { ((la / lb) as i64) as u64 } else { a.bits / b.bits };
            (make(bits & width.mask()), OverflowKind::None)
        }
        BinOp::Rem => {
            if lb == 0 {
                return Err(ArithError::DivideByZero);
            }
            let bits = if signed { ((la % lb) as i64) as u64 } else { a.bits % b.bits };
            (make(bits & width.mask()), OverflowKind::None)
        }
        BinOp::And => (make(a.bits & b.bits), OverflowKind::None),
        BinOp::Or => (make(a.bits | b.bits), OverflowKind::None),
        BinOp::Xor => (make(a.bits ^ b.bits), OverflowKind::None),
        BinOp::Shl => {
            // C-style: the left operand is promoted before shifting, so
            // `u8 << 8` widens instead of wrapping. Results are 64-bit
            // unsigned; shifts of 64+ bits yield 0.
            let sh = b.bits;
            let bits = if sh >= 64 { 0 } else { a.bits << sh };
            (TypedValue::unsigned(bits, Width::W64), OverflowKind::None)
        }
        BinOp::Shr => {
            let sh = b.bits;
            let bits = if sh >= u64::from(a.width.bits()) {
                if a.signed && a.as_i128() < 0 {
                    a.width.mask()
                } else {
                    0
                }
            } else if a.signed {
                (((a.as_i128() as i64) >> sh) as u64) & a.width.mask()
            } else {
                a.bits >> sh
            };
            (make(bits & width.mask()), OverflowKind::None)
        }
        BinOp::Eq => (TypedValue::unsigned(u64::from(la == lb), Width::W8), OverflowKind::None),
        BinOp::Ne => (TypedValue::unsigned(u64::from(la != lb), Width::W8), OverflowKind::None),
        BinOp::Lt => (TypedValue::unsigned(u64::from(la < lb), Width::W8), OverflowKind::None),
        BinOp::Le => (TypedValue::unsigned(u64::from(la <= lb), Width::W8), OverflowKind::None),
        BinOp::Gt => (TypedValue::unsigned(u64::from(la > lb), Width::W8), OverflowKind::None),
        BinOp::Ge => (TypedValue::unsigned(u64::from(la >= lb), Width::W8), OverflowKind::None),
    };
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u16v(v: u64) -> TypedValue {
        TypedValue::unsigned(v, Width::W16)
    }

    #[test]
    fn unsigned_underflow_is_flagged() {
        // The CVE-2021-3409 shape: blksize - data_count with blksize < data_count.
        let (v, of) = apply_binop(BinOp::Sub, u16v(0x100), u16v(0x200)).unwrap();
        assert_eq!(of, OverflowKind::Arithmetic);
        assert_eq!(v.bits, 0xff00);
    }

    #[test]
    fn in_range_subtraction_is_clean() {
        let (v, of) = apply_binop(BinOp::Sub, u16v(0x200), u16v(0x100)).unwrap();
        assert_eq!(of, OverflowKind::None);
        assert_eq!(v.bits, 0x100);
    }

    #[test]
    fn addition_overflow_at_width() {
        let (v, of) = apply_binop(
            BinOp::Add,
            TypedValue::unsigned(0xff, Width::W8),
            TypedValue::unsigned(1, Width::W8),
        )
        .unwrap();
        assert_eq!(of, OverflowKind::Arithmetic);
        assert_eq!(v.bits, 0);
    }

    #[test]
    fn mixed_width_uses_wider() {
        let (v, of) =
            apply_binop(BinOp::Add, TypedValue::unsigned(0xff, Width::W8), u16v(1)).unwrap();
        assert_eq!(v.width, Width::W16);
        assert_eq!(of, OverflowKind::None);
        assert_eq!(v.bits, 0x100);
    }

    #[test]
    fn signed_negative_comparison() {
        // setup_index = -1 (i16) must compare below 0.
        let idx = TypedValue::signed(0xffff, Width::W16);
        let (lt, _) = apply_binop(BinOp::Lt, idx, TypedValue::signed(0, Width::W16)).unwrap();
        assert!(lt.is_true());
    }

    #[test]
    fn signed_mul_overflow() {
        let a = TypedValue::signed(0x7fff, Width::W16);
        let (_, of) = apply_binop(BinOp::Mul, a, TypedValue::signed(2, Width::W16)).unwrap();
        assert_eq!(of, OverflowKind::Arithmetic);
    }

    #[test]
    fn division_by_zero_errors() {
        assert_eq!(
            apply_binop(BinOp::Div, u16v(4), u16v(0)).unwrap_err(),
            ArithError::DivideByZero
        );
        assert_eq!(
            apply_binop(BinOp::Rem, u16v(4), u16v(0)).unwrap_err(),
            ArithError::DivideByZero
        );
    }

    #[test]
    fn shifts_promote_and_respect_sign() {
        // Left shift promotes (C-style): u16 << 20 does not wrap at 16 bits.
        let (v, _) = apply_binop(BinOp::Shl, u16v(1), u16v(20)).unwrap();
        assert_eq!(v.bits, 1 << 20);
        assert_eq!(v.width, Width::W64);
        // u8 << 8 widens — the wLength decode pattern `buf[7] << 8`.
        let (w, _) = apply_binop(
            BinOp::Shl,
            TypedValue::unsigned(0xff, Width::W8),
            TypedValue::unsigned(8, Width::W8),
        )
        .unwrap();
        assert_eq!(w.bits, 0xff00);
        let neg = TypedValue::signed(0x8000, Width::W16);
        let (sar, _) = apply_binop(BinOp::Shr, neg, TypedValue::unsigned(1, Width::W16)).unwrap();
        assert_eq!(sar.bits, 0xc000); // arithmetic shift keeps the sign bit
                                      // Oversized right shifts saturate instead of wrapping the amount.
        let (z, _) = apply_binop(BinOp::Shr, u16v(0x1234), u16v(40)).unwrap();
        assert_eq!(z.bits, 0);
        let (m, _) = apply_binop(BinOp::Shr, neg, u16v(40)).unwrap();
        assert_eq!(m.bits, 0xffff);
    }

    #[test]
    fn conversion_reports_truncation() {
        let v = TypedValue::u64(0x1_0000);
        let (t, truncated) = v.convert(Width::W16, false);
        assert!(truncated);
        assert_eq!(t.bits, 0);
        let (ok, kept) = TypedValue::u64(0x1234).convert(Width::W16, false);
        assert!(!kept);
        assert_eq!(ok.bits, 0x1234);
    }

    #[test]
    fn unops() {
        let v = TypedValue::unsigned(0x0f, Width::W8);
        assert_eq!(apply_unop(UnOp::Not, v).bits, 0xf0);
        assert_eq!(apply_unop(UnOp::Neg, TypedValue::unsigned(1, Width::W8)).bits, 0xff);
        assert_eq!(apply_unop(UnOp::BoolNot, v).bits, 0);
        assert_eq!(apply_unop(UnOp::BoolNot, TypedValue::unsigned(0, Width::W8)).bits, 1);
    }

    #[test]
    fn flags_merge() {
        let mut f = OverflowFlags::clear();
        assert!(!f.any());
        f.merge(OverflowFlags { arithmetic: true, truncation: false });
        assert!(f.any() && f.arithmetic && !f.truncation);
    }
}
