//! Structural validation of DBL programs.
//!
//! Device programs are authored by hand (in the `sedspec-devices`
//! crate); the verifier catches dangling block references, out-of-range
//! locals and malformed indirect-call plumbing before a program is ever
//! interpreted.

use std::fmt;

use crate::ir::{BlockId, Expr, LocalId, Program, Stmt, Terminator};

/// Structural defects a program can have.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VerifyError {
    /// No entry block was declared.
    NoEntry,
    /// A declared block was never given a terminator.
    MissingTerminator {
        /// Offending block.
        block: BlockId,
        /// Its label.
        label: String,
    },
    /// A terminator or table entry references a block that does not exist.
    DanglingBlock {
        /// Referencing block.
        from: BlockId,
        /// Missing target.
        to: BlockId,
    },
    /// An expression references a local past the declared count.
    UndeclaredLocal {
        /// Block containing the reference.
        block: BlockId,
        /// The local.
        local: LocalId,
    },
    /// An `IndirectCall` exists but the function table is empty.
    EmptyFnTable {
        /// Block with the call.
        block: BlockId,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::NoEntry => write!(f, "program has no entry block"),
            VerifyError::MissingTerminator { block, label } => {
                write!(f, "block {} ({label:?}) has no terminator", block.0)
            }
            VerifyError::DanglingBlock { from, to } => {
                write!(f, "block {} references nonexistent block {}", from.0, to.0)
            }
            VerifyError::UndeclaredLocal { block, local } => {
                write!(f, "block {} references undeclared local {}", block.0, local.0)
            }
            VerifyError::EmptyFnTable { block } => {
                write!(f, "block {} performs an indirect call but the fn table is empty", block.0)
            }
        }
    }
}

impl std::error::Error for VerifyError {}

fn check_expr(prog: &Program, block: BlockId, e: &Expr) -> Result<(), VerifyError> {
    let mut err = None;
    e.visit(&mut |n| {
        if let Expr::Local(l) = n {
            if l.0 as usize >= prog.locals.len() && err.is_none() {
                err = Some(VerifyError::UndeclaredLocal { block, local: *l });
            }
        }
    });
    match err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

fn exprs_of_stmt(s: &Stmt) -> Vec<&Expr> {
    use crate::ir::Intrinsic as I;
    match s {
        Stmt::SetVar(_, e) | Stmt::SetLocal(_, e) | Stmt::BufFill(_, e) => vec![e],
        Stmt::BufStore(_, a, b) => vec![a, b],
        Stmt::CopyPayload { buf_off, len, .. } => vec![buf_off, len],
        Stmt::Intrinsic(i) => match i {
            I::DmaToBuf { buf_off, gpa, len, .. } | I::DmaFromBuf { buf_off, gpa, len, .. } => {
                vec![buf_off, gpa, len]
            }
            I::DmaLoadVar { gpa, .. } => vec![gpa],
            I::DmaStore { gpa, value, .. } => vec![gpa, value],
            I::IrqRaise { line } | I::IrqLower { line } => vec![line],
            I::IoReply { value } => vec![value],
            I::DiskReadToBuf { buf_off, sector, .. }
            | I::DiskWriteFromBuf { buf_off, sector, .. } => {
                vec![buf_off, sector]
            }
            I::NetTransmit { off, len, .. } => vec![off, len],
            I::DelayNs { ns } => vec![ns],
            I::Note(_) => vec![],
        },
    }
}

/// Validates a program's structure.
///
/// # Errors
///
/// Returns the first [`VerifyError`] encountered, if any.
pub fn verify(prog: &Program) -> Result<(), VerifyError> {
    let n = prog.blocks.len() as u32;
    let valid = |b: BlockId| b.0 < n;
    if !valid(prog.entry) {
        return Err(VerifyError::DanglingBlock { from: prog.entry, to: prog.entry });
    }
    for (i, blk) in prog.blocks.iter().enumerate() {
        let id = BlockId(i as u32);
        for s in &blk.stmts {
            if let Stmt::SetLocal(l, _) = s {
                if l.0 as usize >= prog.locals.len() {
                    return Err(VerifyError::UndeclaredLocal { block: id, local: *l });
                }
            }
            for e in exprs_of_stmt(s) {
                check_expr(prog, id, e)?;
            }
        }
        match &blk.term {
            Terminator::Branch { cond, .. } => check_expr(prog, id, cond)?,
            Terminator::Switch { scrutinee, .. } => check_expr(prog, id, scrutinee)?,
            _ => {}
        }
        for to in blk.term.successors() {
            if !valid(to) {
                return Err(VerifyError::DanglingBlock { from: id, to });
            }
        }
        if let Terminator::IndirectCall { .. } = blk.term {
            if prog.fn_table.is_empty() {
                return Err(VerifyError::EmptyFnTable { block: id });
            }
        }
    }
    for (&fid, &target) in &prog.fn_table {
        if !valid(target) {
            let _ = fid;
            return Err(VerifyError::DanglingBlock { from: prog.entry, to: target });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Block, BlockKind};
    use std::collections::BTreeMap;

    fn one_block(term: Terminator) -> Program {
        Program {
            name: "t".into(),
            blocks: vec![Block { label: "b".into(), stmts: vec![], term, kind: BlockKind::Plain }],
            entry: BlockId(0),
            fn_table: BTreeMap::new(),
            locals: vec![],
        }
    }

    #[test]
    fn accepts_minimal_program() {
        assert!(verify(&one_block(Terminator::Exit)).is_ok());
    }

    #[test]
    fn rejects_dangling_jump() {
        let p = one_block(Terminator::Jump(BlockId(5)));
        assert!(matches!(verify(&p), Err(VerifyError::DanglingBlock { .. })));
    }

    #[test]
    fn rejects_undeclared_local() {
        let mut p = one_block(Terminator::Exit);
        p.blocks[0].stmts.push(Stmt::SetLocal(LocalId(0), Expr::lit(1)));
        assert!(matches!(verify(&p), Err(VerifyError::UndeclaredLocal { .. })));
    }

    #[test]
    fn rejects_indirect_call_without_table() {
        let p = one_block(Terminator::IndirectCall { ptr: crate::ir::VarId(0), ret: BlockId(0) });
        assert!(matches!(verify(&p), Err(VerifyError::EmptyFnTable { .. })));
    }

    #[test]
    fn rejects_dangling_fn_table_target() {
        let mut p = one_block(Terminator::Exit);
        p.fn_table.insert(1, BlockId(9));
        assert!(matches!(verify(&p), Err(VerifyError::DanglingBlock { .. })));
    }

    #[test]
    fn checks_branch_condition_locals() {
        let mut p = one_block(Terminator::Branch {
            cond: Expr::local(LocalId(3)),
            taken: BlockId(0),
            not_taken: BlockId(0),
        });
        p.locals = vec![];
        assert!(matches!(verify(&p), Err(VerifyError::UndeclaredLocal { .. })));
    }
}
