//! DBL — the *device behaviour language*.
//!
//! In the paper, emulated devices are QEMU C code: Intel PT observes
//! their branches, and source/`angr` analysis recovers which statements
//! touch the device control structure. This crate replaces both with a
//! small, typed intermediate representation in which all five reproduced
//! devices are written:
//!
//! * [`ir`] — programs, basic blocks, statements, terminators, expressions;
//! * [`state`] — the device **control structure** declaration and its
//!   runtime instance, a flat byte arena with C layout semantics so that
//!   out-of-bounds buffer writes corrupt neighbouring fields exactly as
//!   they do in QEMU (this is what makes the CVE exploits real);
//! * [`value`] — width-aware wrapping arithmetic with overflow reporting
//!   (the "flag register" the paper's parameter check consumes);
//! * [`interp`] — the interpreter that *is* the emulated device at
//!   runtime, with hook points for tracing and observation;
//! * [`analysis`] — def-use chains, branch-variable extraction and
//!   expression rewriting (the `angr` replacement used by data-dependency
//!   recovery);
//! * [`layout`] — synthetic code addresses for blocks so the IPT-style
//!   tracer has real-looking branch sites to report;
//! * [`verify`] — structural validation of programs.
//!
//! # Examples
//!
//! A three-block program that increments a counter each time the guest
//! writes to it, and wraps at 4:
//!
//! ```
//! use sedspec_dbl::ir::{BinOp, Expr, Width};
//! use sedspec_dbl::state::ControlStructure;
//! use sedspec_dbl::builder::ProgramBuilder;
//! use sedspec_dbl::interp::{Interpreter, NullHook};
//! use sedspec_vmm::{AddressSpace, IoRequest, VmContext};
//!
//! let mut cs = ControlStructure::new("Demo");
//! let count = cs.var("count", Width::W8);
//!
//! let mut b = ProgramBuilder::new("demo_write");
//! let entry = b.entry_block("entry");
//! let wrap = b.block("wrap");
//! let done = b.exit_block("done");
//! b.select(entry);
//! b.set_var(count, Expr::bin(BinOp::Add, Expr::var(count), Expr::lit(1)));
//! b.branch(Expr::bin(BinOp::Ge, Expr::var(count), Expr::lit(4)), wrap, done);
//! b.select(wrap);
//! b.set_var(count, Expr::lit(0));
//! b.jump(done);
//! let prog = b.finish().unwrap();
//!
//! let mut state = cs.instantiate();
//! let mut ctx = VmContext::new(0x1000, 1);
//! let req = IoRequest::write(AddressSpace::Pmio, 0, 1, 0);
//! for _ in 0..5 {
//!     Interpreter::new(&prog, &cs).run(&mut state, &mut ctx, &req, &mut NullHook).unwrap();
//! }
//! assert_eq!(state.var(count), 1); // 1,2,3,wrap->0,1
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod builder;
pub mod interp;
pub mod ir;
pub mod layout;
pub mod state;
pub mod value;
pub mod verify;
