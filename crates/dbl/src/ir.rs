//! Core IR types: programs, blocks, statements, terminators, expressions.
//!
//! Every handler of an emulated device (PMIO read/write, MMIO
//! read/write, frame receive, ...) is one [`Program`]. Programs are
//! graphs of [`Block`]s; a block holds straight-line [`Stmt`]s and ends
//! in a [`Terminator`]. Expressions read device-state variables,
//! buffers, locals and the fields of the in-flight I/O request.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Index of a device-state scalar variable in its control structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VarId(pub u32);

/// Index of a device-state fixed-length buffer in its control structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BufId(pub u32);

/// Index of a handler-scope temporary (not part of the control structure).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LocalId(pub u32);

/// Index of a basic block within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlockId(pub u32);

/// Operand/storage width in bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Width {
    /// 8-bit.
    W8,
    /// 16-bit.
    W16,
    /// 32-bit.
    W32,
    /// 64-bit.
    W64,
}

impl Width {
    /// Width in bytes.
    pub fn bytes(self) -> usize {
        match self {
            Width::W8 => 1,
            Width::W16 => 2,
            Width::W32 => 4,
            Width::W64 => 8,
        }
    }

    /// Width in bits.
    pub fn bits(self) -> u32 {
        self.bytes() as u32 * 8
    }

    /// Bitmask selecting the low `bits()` bits.
    pub fn mask(self) -> u64 {
        match self {
            Width::W64 => u64::MAX,
            w => (1u64 << w.bits()) - 1,
        }
    }

    /// The wider of `self` and `other`.
    pub fn max(self, other: Width) -> Width {
        if self.bits() >= other.bits() {
            self
        } else {
            other
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnOp {
    /// Bitwise complement.
    Not,
    /// Two's-complement negation.
    Neg,
    /// Logical negation: 0 → 1, nonzero → 0.
    BoolNot,
}

/// Binary operators.
///
/// Arithmetic wraps at the result width and reports overflow through
/// [`crate::value::OverflowFlags`] — DBL deliberately has no C integer
/// promotion, so `u16 - u16` underflows at 16 bits, which is the
/// behaviour the paper's parameter check looks for (CVE-2021-3409).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Division (division by zero faults).
    Div,
    /// Remainder (division by zero faults).
    Rem,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Left shift (shift amount taken modulo result width).
    Shl,
    /// Right shift (logical for unsigned, arithmetic for signed).
    Shr,
    /// Equality; yields 0/1.
    Eq,
    /// Inequality; yields 0/1.
    Ne,
    /// Less-than; yields 0/1.
    Lt,
    /// Less-or-equal; yields 0/1.
    Le,
    /// Greater-than; yields 0/1.
    Gt,
    /// Greater-or-equal; yields 0/1.
    Ge,
}

impl BinOp {
    /// Whether the operator is a comparison (result is 0/1, width 8).
    pub fn is_comparison(self) -> bool {
        matches!(self, BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge)
    }

    /// Whether the operator can overflow/underflow at a finite width.
    pub fn can_overflow(self) -> bool {
        matches!(self, BinOp::Add | BinOp::Sub | BinOp::Mul)
    }
}

/// An expression tree.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Expr {
    /// Integer literal.
    Const(u64),
    /// Device-state scalar variable.
    Var(VarId),
    /// Handler-scope temporary.
    Local(LocalId),
    /// Value the guest wrote (0 for reads).
    IoData,
    /// Port / MMIO address of the request.
    IoAddr,
    /// Access width of the request in bytes.
    IoSize,
    /// Length of the request payload (network frames).
    IoLen,
    /// Byte `idx` of the request payload, zero-padded past the end.
    IoByte(Box<Expr>),
    /// Byte at `idx` of a device buffer, with C layout semantics: an
    /// index past the declared length reads the *next fields* of the
    /// control structure (and faults only past the whole structure).
    BufLoad(BufId, Box<Expr>),
    /// Declared length of a device buffer.
    BufLen(BufId),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Integer literal.
    pub fn lit(v: u64) -> Expr {
        Expr::Const(v)
    }

    /// Device-state variable reference.
    pub fn var(v: VarId) -> Expr {
        Expr::Var(v)
    }

    /// Local reference.
    pub fn local(l: LocalId) -> Expr {
        Expr::Local(l)
    }

    /// Binary operation.
    pub fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::Binary(op, Box::new(a), Box::new(b))
    }

    /// Unary operation.
    pub fn un(op: UnOp, a: Expr) -> Expr {
        Expr::Unary(op, Box::new(a))
    }

    /// Buffer byte load.
    pub fn buf(b: BufId, idx: Expr) -> Expr {
        Expr::BufLoad(b, Box::new(idx))
    }

    /// `a == b`.
    pub fn eq(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Eq, a, b)
    }

    /// `a != b`.
    pub fn ne(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Ne, a, b)
    }

    /// `a & b` (used as logical AND on 0/1 operands).
    pub fn and(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::And, a, b)
    }

    /// Calls `f` on every node of the tree, pre-order.
    pub fn visit(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::IoByte(e) | Expr::BufLoad(_, e) | Expr::Unary(_, e) => e.visit(f),
            Expr::Binary(_, a, b) => {
                a.visit(f);
                b.visit(f);
            }
            _ => {}
        }
    }

    /// Device-state variables referenced anywhere in the tree.
    pub fn vars(&self) -> Vec<VarId> {
        let mut out = Vec::new();
        self.visit(&mut |e| {
            if let Expr::Var(v) = e {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
        });
        out
    }

    /// Locals referenced anywhere in the tree.
    pub fn locals(&self) -> Vec<LocalId> {
        let mut out = Vec::new();
        self.visit(&mut |e| {
            if let Expr::Local(l) = e {
                if !out.contains(l) {
                    out.push(*l);
                }
            }
        });
        out
    }

    /// Buffers referenced anywhere in the tree.
    pub fn buffers(&self) -> Vec<BufId> {
        let mut out = Vec::new();
        self.visit(&mut |e| {
            if let Expr::BufLoad(b, _) | Expr::BufLen(b) = e {
                if !out.contains(b) {
                    out.push(*b);
                }
            }
        });
        out
    }

    /// Whether the tree references any [`Expr::Local`].
    pub fn has_locals(&self) -> bool {
        !self.locals().is_empty()
    }

    /// Returns a copy with every `Local(l)` replaced via `subst`.
    ///
    /// Locals missing from `subst` are left in place.
    pub fn substitute_locals(&self, subst: &BTreeMap<LocalId, Expr>) -> Expr {
        match self {
            Expr::Local(l) => subst.get(l).cloned().unwrap_or_else(|| self.clone()),
            Expr::IoByte(e) => Expr::IoByte(Box::new(e.substitute_locals(subst))),
            Expr::BufLoad(b, e) => Expr::BufLoad(*b, Box::new(e.substitute_locals(subst))),
            Expr::Unary(op, e) => Expr::Unary(*op, Box::new(e.substitute_locals(subst))),
            Expr::Binary(op, a, b) => Expr::Binary(
                *op,
                Box::new(a.substitute_locals(subst)),
                Box::new(b.substitute_locals(subst)),
            ),
            other => other.clone(),
        }
    }
}

/// A statement: one step of straight-line device code.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Stmt {
    /// Assign to a device-state variable (truncating to its width).
    SetVar(VarId, Expr),
    /// Assign to a handler temporary.
    SetLocal(LocalId, Expr),
    /// Store one byte into a device buffer at an index. C layout
    /// semantics: an index past the declared buffer length writes into
    /// the following control-structure fields (the CVE enabler).
    BufStore(BufId, Expr, Expr),
    /// Fill the declared extent of a buffer with a byte value (memset).
    BufFill(BufId, Expr),
    /// Copy `len` bytes of the request payload into a buffer starting at
    /// `buf_off`, byte-wise with C spill semantics. Source bytes past the
    /// payload end read as zero.
    CopyPayload {
        /// Destination buffer.
        buf: BufId,
        /// Destination start offset.
        buf_off: Expr,
        /// Number of bytes to copy.
        len: Expr,
    },
    /// A side-effecting operation on the VM context.
    Intrinsic(Intrinsic),
}

/// Side-effecting operations a device performs on its environment.
///
/// Intrinsics are the boundary between device-state computation (which
/// the execution specification can re-execute) and the outside world
/// (guest memory, disk, network, interrupts). Loads of *external* data
/// into device state are what the paper's data-dependency recovery turns
/// into sync points.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Intrinsic {
    /// DMA `len` bytes from guest memory at `gpa` into `buf[buf_off..]`,
    /// byte-wise with C spill semantics.
    DmaToBuf {
        /// Destination buffer.
        buf: BufId,
        /// Destination start offset.
        buf_off: Expr,
        /// Guest physical source address.
        gpa: Expr,
        /// Number of bytes.
        len: Expr,
    },
    /// DMA `len` bytes from `buf[buf_off..]` into guest memory at `gpa`.
    DmaFromBuf {
        /// Source buffer.
        buf: BufId,
        /// Source start offset.
        buf_off: Expr,
        /// Guest physical destination address.
        gpa: Expr,
        /// Number of bytes.
        len: Expr,
    },
    /// Load an unsigned little-endian value of `width` from guest memory
    /// at `gpa` into a device-state variable. This brings *external*
    /// data into the control structure — a sync-point source for the
    /// execution specification.
    DmaLoadVar {
        /// Destination device-state variable.
        var: VarId,
        /// Guest physical source address.
        gpa: Expr,
        /// Access width.
        width: Width,
    },
    /// Store `value` (width `width`) to guest memory at `gpa`.
    DmaStore {
        /// Guest physical destination address.
        gpa: Expr,
        /// Value to store.
        value: Expr,
        /// Access width.
        width: Width,
    },
    /// Assert an interrupt line.
    IrqRaise {
        /// Line number.
        line: Expr,
    },
    /// Deassert an interrupt line.
    IrqLower {
        /// Line number.
        line: Expr,
    },
    /// Set the value returned to the guest for a read request.
    IoReply {
        /// Replied value.
        value: Expr,
    },
    /// Read one disk sector into `buf[buf_off..buf_off+512]` (spill
    /// semantics). External data — sync-point source.
    DiskReadToBuf {
        /// Destination buffer.
        buf: BufId,
        /// Destination start offset.
        buf_off: Expr,
        /// Sector number.
        sector: Expr,
    },
    /// Write `buf[buf_off..buf_off+512]` to a disk sector.
    DiskWriteFromBuf {
        /// Source buffer.
        buf: BufId,
        /// Source start offset.
        buf_off: Expr,
        /// Sector number.
        sector: Expr,
    },
    /// Transmit `buf[off..off+len]` as a network frame.
    NetTransmit {
        /// Source buffer.
        buf: BufId,
        /// Source start offset.
        off: Expr,
        /// Frame length.
        len: Expr,
    },
    /// Charge virtual time.
    DelayNs {
        /// Nanoseconds to charge.
        ns: Expr,
    },
    /// No-op marker kept in listings for readability.
    Note(String),
}

impl Intrinsic {
    /// Whether this intrinsic loads *external* data (guest memory, disk)
    /// into the device control structure. Such statements cannot be
    /// re-executed by the execution specification on its shadow state
    /// and become sync points.
    pub fn loads_external_data(&self) -> bool {
        matches!(
            self,
            Intrinsic::DmaToBuf { .. }
                | Intrinsic::DmaLoadVar { .. }
                | Intrinsic::DiskReadToBuf { .. }
        )
    }

    /// The device-state variable this intrinsic writes, if any.
    pub fn written_var(&self) -> Option<VarId> {
        match self {
            Intrinsic::DmaLoadVar { var, .. } => Some(*var),
            _ => None,
        }
    }

    /// The device-state buffer this intrinsic writes, if any.
    pub fn written_buf(&self) -> Option<BufId> {
        match self {
            Intrinsic::DmaToBuf { buf, .. } | Intrinsic::DiskReadToBuf { buf, .. } => Some(*buf),
            _ => None,
        }
    }
}

/// How a basic block ends.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way conditional branch; nonzero condition takes `taken`.
    Branch {
        /// Branch condition.
        cond: Expr,
        /// Successor when the condition is nonzero.
        taken: BlockId,
        /// Successor when the condition is zero.
        not_taken: BlockId,
    },
    /// Multi-way dispatch on a value. Compiles to an indirect jump
    /// through a jump table in real device code, and is what the paper's
    /// *command decision block* looks like at the IR level.
    Switch {
        /// Dispatched value.
        scrutinee: Expr,
        /// `(match value, successor)` arms.
        arms: Vec<(u64, BlockId)>,
        /// Successor when no arm matches.
        default: BlockId,
    },
    /// Indirect call through a device-state function-pointer variable;
    /// the callee's `Return` resumes at `ret`. The target is resolved
    /// through [`Program::fn_table`]; a value with no entry is a wild
    /// jump (control-flow hijack) and faults the interpreter.
    IndirectCall {
        /// Function-pointer device-state variable.
        ptr: VarId,
        /// Block to resume at after the callee returns.
        ret: BlockId,
    },
    /// Return from an indirect call.
    Return,
    /// End of the handler: the I/O interaction round is complete.
    Exit,
}

impl Terminator {
    /// Static successor blocks (not including indirect-call targets).
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(b) => vec![*b],
            Terminator::Branch { taken, not_taken, .. } => vec![*taken, *not_taken],
            Terminator::Switch { arms, default, .. } => {
                let mut v: Vec<BlockId> = arms.iter().map(|&(_, b)| b).collect();
                v.push(*default);
                v
            }
            Terminator::IndirectCall { ret, .. } => vec![*ret],
            Terminator::Return | Terminator::Exit => vec![],
        }
    }
}

/// Block classification recorded as the paper's "auxiliary information
/// for identifying different block types".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum BlockKind {
    /// Ordinary block.
    #[default]
    Plain,
    /// Decodes the current device command (its terminator is the command
    /// dispatch).
    CmdDecision,
    /// Marks completion of the current device command.
    CmdEnd,
}

/// A basic block.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Block {
    /// Human-readable label (used in logs and spec dumps).
    pub label: String,
    /// Straight-line statements.
    pub stmts: Vec<Stmt>,
    /// Terminator.
    pub term: Terminator,
    /// Block classification.
    pub kind: BlockKind,
}

/// A device handler: one entry point's control-flow graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Program {
    /// Handler name, e.g. `"fdc_pmio_write"`.
    pub name: String,
    /// Basic blocks; [`BlockId`] indexes this vector.
    pub blocks: Vec<Block>,
    /// Entry block.
    pub entry: BlockId,
    /// Indirect-call table: function-pointer *values* → entry blocks.
    pub fn_table: BTreeMap<u64, BlockId>,
    /// Declared locals: `(name, width)` per [`LocalId`].
    pub locals: Vec<(String, Width)>,
}

impl Program {
    /// The block with id `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range (programs are validated at build time).
    pub fn block(&self, b: BlockId) -> &Block {
        &self.blocks[b.0 as usize]
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the program has no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// All `(from, to)` static edges.
    pub fn edges(&self) -> Vec<(BlockId, BlockId)> {
        let mut out = Vec::new();
        for (i, blk) in self.blocks.iter().enumerate() {
            let from = BlockId(i as u32);
            for to in blk.term.successors() {
                out.push((from, to));
            }
            if let Terminator::IndirectCall { .. } = blk.term {
                for &target in self.fn_table.values() {
                    out.push((from, target));
                }
            }
        }
        out
    }

    /// Predecessor map over static edges.
    pub fn predecessors(&self) -> BTreeMap<BlockId, Vec<BlockId>> {
        let mut map: BTreeMap<BlockId, Vec<BlockId>> = BTreeMap::new();
        for (from, to) in self.edges() {
            map.entry(to).or_default().push(from);
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_expr() -> Expr {
        // (var0 + 1) < buf0[local0]
        Expr::bin(
            BinOp::Lt,
            Expr::bin(BinOp::Add, Expr::var(VarId(0)), Expr::lit(1)),
            Expr::buf(BufId(0), Expr::local(LocalId(0))),
        )
    }

    #[test]
    fn width_helpers() {
        assert_eq!(Width::W16.bytes(), 2);
        assert_eq!(Width::W8.mask(), 0xff);
        assert_eq!(Width::W64.mask(), u64::MAX);
        assert_eq!(Width::W8.max(Width::W32), Width::W32);
    }

    #[test]
    fn expr_collectors() {
        let e = sample_expr();
        assert_eq!(e.vars(), vec![VarId(0)]);
        assert_eq!(e.locals(), vec![LocalId(0)]);
        assert_eq!(e.buffers(), vec![BufId(0)]);
        assert!(e.has_locals());
    }

    #[test]
    fn substitute_locals_replaces_and_keeps() {
        let e = sample_expr();
        let mut subst = BTreeMap::new();
        subst.insert(LocalId(0), Expr::var(VarId(7)));
        let e2 = e.substitute_locals(&subst);
        assert!(!e2.has_locals());
        assert!(e2.vars().contains(&VarId(7)));
        // Unrelated locals survive.
        let e3 = Expr::local(LocalId(9)).substitute_locals(&subst);
        assert_eq!(e3, Expr::local(LocalId(9)));
    }

    #[test]
    fn terminator_successors() {
        let t = Terminator::Switch {
            scrutinee: Expr::IoData,
            arms: vec![(1, BlockId(1)), (2, BlockId(2))],
            default: BlockId(3),
        };
        assert_eq!(t.successors(), vec![BlockId(1), BlockId(2), BlockId(3)]);
        assert!(Terminator::Exit.successors().is_empty());
    }

    #[test]
    fn intrinsic_external_classification() {
        let ext = Intrinsic::DmaLoadVar { var: VarId(0), gpa: Expr::lit(0), width: Width::W32 };
        let not_ext = Intrinsic::IrqRaise { line: Expr::lit(1) };
        assert!(ext.loads_external_data());
        assert_eq!(ext.written_var(), Some(VarId(0)));
        assert!(!not_ext.loads_external_data());
    }

    #[test]
    fn program_edges_and_preds() {
        let prog = Program {
            name: "t".into(),
            blocks: vec![
                Block {
                    label: "a".into(),
                    stmts: vec![],
                    term: Terminator::Branch {
                        cond: Expr::lit(1),
                        taken: BlockId(1),
                        not_taken: BlockId(2),
                    },
                    kind: BlockKind::Plain,
                },
                Block {
                    label: "b".into(),
                    stmts: vec![],
                    term: Terminator::Jump(BlockId(2)),
                    kind: BlockKind::Plain,
                },
                Block {
                    label: "c".into(),
                    stmts: vec![],
                    term: Terminator::Exit,
                    kind: BlockKind::Plain,
                },
            ],
            entry: BlockId(0),
            fn_table: BTreeMap::new(),
            locals: vec![],
        };
        let edges = prog.edges();
        assert_eq!(edges.len(), 3);
        let preds = prog.predecessors();
        assert_eq!(preds[&BlockId(2)], vec![BlockId(0), BlockId(1)]);
    }

    #[test]
    fn serde_round_trip() {
        let e = sample_expr();
        let json = serde_json::to_string(&e).unwrap();
        let back: Expr = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
    }
}
