//! The DBL interpreter: executing a device handler against its control
//! structure and the VM context.
//!
//! The interpreter *is* the emulated device at runtime. It exposes the
//! hook points ([`ExecHook`]) that the Intel-PT-style tracer and the
//! paper's observation points attach to: block entries, conditional
//! branch outcomes, switch dispatches, indirect calls, device-state
//! writes and external-data loads.
//!
//! Error philosophy, mirroring QEMU: guest-memory and backend errors are
//! tolerated (reads yield zeros, writes are dropped) because device
//! models must survive arbitrary guest-supplied addresses; what *does*
//! fault is corruption of the device's own control structure beyond its
//! arena ([`Fault::Arena`] ≈ host crash), an indirect call through a
//! clobbered function pointer ([`Fault::WildIndirectCall`] ≈ control-flow
//! hijack) and runaway loops ([`Fault::StepLimit`] ≈ the DoS of
//! CVE-2016-7909).

use sedspec_vmm::{IoRequest, VmContext};

use crate::ir::{
    BlockId, BlockKind, BufId, Expr, Intrinsic, Program, Stmt, Terminator, VarId, Width,
};
use crate::state::{AccessEffect, ArenaOutOfBounds, ControlStructure, CsState};
use crate::value::{apply_binop, apply_unop, ArithError, OverflowFlags, OverflowKind, TypedValue};

/// Why device execution aborted.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Fault {
    /// A control-structure access left the arena entirely (host crash).
    Arena(ArenaOutOfBounds),
    /// An indirect call went through a pointer value with no entry in
    /// the program's function table (control-flow hijack).
    WildIndirectCall {
        /// Block performing the call.
        block: BlockId,
        /// The bogus pointer value.
        value: u64,
    },
    /// The block-transition budget was exhausted (infinite loop / DoS).
    StepLimit {
        /// The configured limit.
        limit: u64,
    },
    /// Arithmetic error (division by zero).
    Arith(ArithError),
    /// A `Return` executed with an empty call stack.
    ReturnWithoutCall {
        /// Offending block.
        block: BlockId,
    },
    /// A DMA/frame intrinsic asked for more bytes than the per-round
    /// budget allows (guest-controlled length would otherwise buy
    /// unbounded host allocation and copy work that `max_steps` cannot
    /// see, since the whole transfer happens inside one block).
    DmaLimit {
        /// Bytes the round had moved, including the offending request.
        requested: u64,
        /// The configured budget.
        limit: u64,
    },
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Fault::Arena(e) => write!(f, "arena fault: {e}"),
            Fault::WildIndirectCall { block, value } => {
                write!(f, "wild indirect call in block {} through value {value:#x}", block.0)
            }
            Fault::StepLimit { limit } => write!(f, "step limit of {limit} exceeded"),
            Fault::Arith(e) => write!(f, "arithmetic fault: {e}"),
            Fault::ReturnWithoutCall { block } => {
                write!(f, "return with empty call stack in block {}", block.0)
            }
            Fault::DmaLimit { requested, limit } => {
                write!(f, "dma byte budget exceeded: {requested} bytes requested, limit {limit}")
            }
        }
    }
}

impl std::error::Error for Fault {}

impl From<ArenaOutOfBounds> for Fault {
    fn from(e: ArenaOutOfBounds) -> Self {
        Fault::Arena(e)
    }
}

impl From<ArithError> for Fault {
    fn from(e: ArithError) -> Self {
        Fault::Arith(e)
    }
}

/// Execution limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecLimits {
    /// Maximum number of block transitions per handler invocation.
    pub max_steps: u64,
    /// Maximum bytes any one invocation may move through DMA, disk and
    /// network intrinsics combined. Transfer lengths are guest data;
    /// without a budget a malformed stream buys an allocation and a
    /// byte-copy loop proportional to an arbitrary register value,
    /// invisible to `max_steps` (the transfer is a single block).
    pub max_dma_bytes: u64,
}

impl Default for ExecLimits {
    fn default() -> Self {
        ExecLimits { max_steps: 200_000, max_dma_bytes: 4 << 20 }
    }
}

/// Summary of one handler invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecOutcome {
    /// Value replied to the guest (for read requests); 0 otherwise.
    pub reply: u64,
    /// Block transitions executed.
    pub steps: u64,
    /// Ground truth: buffer accesses that spilled past their declared
    /// extent (but stayed inside the arena).
    pub spills: u64,
    /// Ground truth: arithmetic anomalies accumulated across the run.
    pub overflow: OverflowFlags,
    /// Bytes moved by DMA, disk and network intrinsics this invocation
    /// (the quantity [`ExecLimits::max_dma_bytes`] bounds).
    pub dma_bytes: u64,
}

/// Observer interface for tracing and observation points.
///
/// All methods have empty default bodies; implement only what you need.
/// The `sedspec-trace` crate implements this to emit IPT-style packets;
/// the `sedspec` crate implements it for the device-state change log.
#[allow(unused_variables)]
pub trait ExecHook {
    /// A block is about to execute.
    fn on_block_enter(&mut self, block: BlockId, kind: BlockKind) {}
    /// A device-state variable was written (`of` reports whether the
    /// producing arithmetic wrapped or the assignment truncated).
    fn on_var_write(&mut self, var: VarId, old: u64, new: u64, of: OverflowKind) {}
    /// A device buffer byte was stored.
    fn on_buf_store(&mut self, buf: BufId, index: i64, effect: AccessEffect) {}
    /// External data (guest memory / disk) was loaded into device state.
    /// `var` is set for scalar loads; buffer loads report the buffer.
    fn on_external_load(&mut self, var: Option<VarId>, buf: Option<BufId>, value: u64) {}
    /// External bytes were copied into a device buffer at `off` — the
    /// content a sync point must be able to replay.
    fn on_external_buf(&mut self, buf: BufId, off: i64, bytes: &[u8]) {}
    /// A conditional branch resolved.
    fn on_cond_branch(&mut self, block: BlockId, taken: bool) {}
    /// A switch dispatched `value` to `target`.
    fn on_switch(&mut self, block: BlockId, value: u64, target: BlockId) {}
    /// An indirect call resolved (target `None` means wild).
    fn on_indirect_call(&mut self, block: BlockId, fn_value: u64, target: Option<BlockId>) {}
    /// A `Return` is transferring to `to`.
    fn on_return(&mut self, block: BlockId, to: BlockId) {}
    /// The handler exited normally from `block`.
    fn on_exit(&mut self, block: BlockId) {}
}

/// A hook that observes nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullHook;

impl ExecHook for NullHook {}

/// Reusable per-invocation interpreter scratch (handler locals and the
/// indirect-call return stack). Dispatch loops that service millions of
/// requests hold one of these so the steady state allocates nothing;
/// one-shot callers can let [`Interpreter::run`] create a throwaway.
#[derive(Debug, Default, Clone)]
pub struct ExecScratch {
    locals: Vec<TypedValue>,
    call_stack: Vec<BlockId>,
}

/// Evaluation context: everything an [`Expr`] can read.
#[derive(Debug)]
pub struct EvalCtx<'a> {
    /// Device control-structure instance.
    pub cs: &'a CsState,
    /// Handler locals (empty slice when evaluating rewritten spec expressions).
    pub locals: &'a [TypedValue],
    /// The in-flight I/O request.
    pub io: &'a IoRequest,
}

/// Errors from expression evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// Arena fault during a buffer load.
    Arena(ArenaOutOfBounds),
    /// Arithmetic fault.
    Arith(ArithError),
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::Arena(e) => write!(f, "{e}"),
            EvalError::Arith(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<EvalError> for Fault {
    fn from(e: EvalError) -> Self {
        match e {
            EvalError::Arena(a) => Fault::Arena(a),
            EvalError::Arith(a) => Fault::Arith(a),
        }
    }
}

/// Whether constant `c` fits the width/signedness of `other`'s type.
fn fits(c: u64, other: TypedValue) -> bool {
    if other.signed {
        c <= other.width.mask() >> 1
    } else {
        c <= other.width.mask()
    }
}

/// Evaluates `e` in `ctx`, accumulating overflow flags into `flags`.
///
/// This is the single evaluator shared by the device interpreter and the
/// ES-Checker's shadow walk, so both see identical arithmetic.
///
/// # Errors
///
/// Returns [`EvalError`] on arena faults (spilled buffer loads stay
/// legal; only leaving the arena faults) and division by zero.
pub fn eval_expr(
    e: &Expr,
    ctx: &EvalCtx<'_>,
    flags: &mut OverflowFlags,
) -> Result<TypedValue, EvalError> {
    Ok(match e {
        Expr::Const(v) => TypedValue::u64(*v),
        Expr::Var(v) => ctx.cs.var_typed(*v),
        Expr::Local(l) => ctx.locals.get(l.0 as usize).copied().unwrap_or(TypedValue::u64(0)),
        Expr::IoData => TypedValue::u64(ctx.io.data),
        Expr::IoAddr => TypedValue::u64(ctx.io.addr),
        Expr::IoSize => TypedValue::u64(u64::from(ctx.io.size)),
        Expr::IoLen => TypedValue::u64(ctx.io.payload.len() as u64),
        Expr::IoByte(idx) => {
            let i = eval_expr(idx, ctx, flags)?;
            TypedValue::unsigned(
                u64::from(ctx.io.payload_byte(i.as_i128().max(0) as usize)),
                Width::W8,
            )
        }
        Expr::BufLoad(b, idx) => {
            let i = eval_expr(idx, ctx, flags)?;
            let (byte, _) = ctx.cs.buf_read(*b, i.as_i128() as i64).map_err(EvalError::Arena)?;
            TypedValue::unsigned(u64::from(byte), Width::W8)
        }
        Expr::BufLen(b) => TypedValue::u64(ctx.cs.buf_len(*b) as u64),
        Expr::Unary(op, a) => {
            let v = eval_expr(a, ctx, flags)?;
            apply_unop(*op, v)
        }
        Expr::Binary(op, a, b) => {
            let mut va = eval_expr(a, ctx, flags)?;
            let mut vb = eval_expr(b, ctx, flags)?;
            // Bare literals are untyped, like C integer constants: they
            // adopt the other operand's width when they fit, so
            // `data_pos + 1` overflows at data_pos's width.
            match (&**a, &**b) {
                (Expr::Const(_), Expr::Const(_)) => {}
                (Expr::Const(c), _) if fits(*c, vb) => {
                    va = TypedValue { bits: *c, width: vb.width, signed: vb.signed }
                }
                (_, Expr::Const(c)) if fits(*c, va) => {
                    vb = TypedValue { bits: *c, width: va.width, signed: va.signed }
                }
                _ => {}
            }
            let (v, of) = apply_binop(*op, va, vb).map_err(EvalError::Arith)?;
            if of == OverflowKind::Arithmetic {
                flags.arithmetic = true;
            }
            v
        }
    })
}

/// Evaluates `e` when it is a non-recursing leaf, `None` otherwise.
#[inline]
fn eval_leaf_expr(e: &Expr, ctx: &EvalCtx<'_>) -> Option<TypedValue> {
    Some(match e {
        Expr::Const(v) => TypedValue::u64(*v),
        Expr::Var(v) => ctx.cs.var_typed(*v),
        Expr::Local(l) => ctx.locals.get(l.0 as usize).copied().unwrap_or(TypedValue::u64(0)),
        Expr::IoData => TypedValue::u64(ctx.io.data),
        Expr::IoAddr => TypedValue::u64(ctx.io.addr),
        Expr::IoSize => TypedValue::u64(u64::from(ctx.io.size)),
        Expr::IoLen => TypedValue::u64(ctx.io.payload.len() as u64),
        _ => return None,
    })
}

/// [`eval_expr`] with the dominant handler shapes — a bare leaf, a
/// unary over a leaf, a binary over two leaves — evaluated inline
/// without recursing through the boxed tree. Deeper trees fall back to
/// the general evaluator; results are bit-identical either way (the
/// literal-typing rule is replicated from [`eval_expr`]'s binary arm).
///
/// Device dispatch loops call this; the ES-Checker's interpreted
/// reference walk deliberately stays on plain [`eval_expr`].
#[inline]
fn eval_expr_fast(
    e: &Expr,
    ctx: &EvalCtx<'_>,
    flags: &mut OverflowFlags,
) -> Result<TypedValue, EvalError> {
    match e {
        Expr::Unary(op, a) => {
            if let Some(v) = eval_leaf_expr(a, ctx) {
                return Ok(apply_unop(*op, v));
            }
        }
        Expr::Binary(op, a, b) => {
            if let (Some(mut va), Some(mut vb)) = (eval_leaf_expr(a, ctx), eval_leaf_expr(b, ctx)) {
                match (&**a, &**b) {
                    (Expr::Const(_), Expr::Const(_)) => {}
                    (Expr::Const(c), _) if fits(*c, vb) => {
                        va = TypedValue { bits: *c, width: vb.width, signed: vb.signed }
                    }
                    (_, Expr::Const(c)) if fits(*c, va) => {
                        vb = TypedValue { bits: *c, width: va.width, signed: va.signed }
                    }
                    _ => {}
                }
                let (v, of) = apply_binop(*op, va, vb).map_err(EvalError::Arith)?;
                if of == OverflowKind::Arithmetic {
                    flags.arithmetic = true;
                }
                return Ok(v);
            }
        }
        _ => {
            if let Some(v) = eval_leaf_expr(e, ctx) {
                return Ok(v);
            }
        }
    }
    eval_expr(e, ctx, flags)
}

/// The DBL interpreter for one program.
#[derive(Debug)]
pub struct Interpreter<'p> {
    prog: &'p Program,
    decl: &'p ControlStructure,
    limits: ExecLimits,
}

impl<'p> Interpreter<'p> {
    /// An interpreter for `prog` over control structure `decl`, with
    /// default limits.
    pub fn new(prog: &'p Program, decl: &'p ControlStructure) -> Self {
        Interpreter { prog, decl, limits: ExecLimits::default() }
    }

    /// Overrides the execution limits.
    pub fn with_limits(mut self, limits: ExecLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Runs the handler for one I/O request.
    ///
    /// # Errors
    ///
    /// Returns a [`Fault`] if the device corrupts its arena beyond the
    /// bounds, performs a wild indirect call, exceeds the step budget,
    /// divides by zero, or returns with an empty call stack.
    pub fn run(
        &self,
        state: &mut CsState,
        ctx: &mut VmContext,
        req: &IoRequest,
        hook: &mut dyn ExecHook,
    ) -> Result<ExecOutcome, Fault> {
        self.run_scratch(state, ctx, req, hook, &mut ExecScratch::default())
    }

    /// Runs the handler for one I/O request on caller-provided scratch.
    ///
    /// Generic over the hook so a [`NullHook`] run monomorphizes with
    /// every observer callback compiled out, and allocation-free in the
    /// steady state: `scratch` keeps the locals/call-stack capacity
    /// across invocations.
    ///
    /// # Errors
    ///
    /// See [`Interpreter::run`].
    pub fn run_scratch<H: ExecHook + ?Sized>(
        &self,
        state: &mut CsState,
        ctx: &mut VmContext,
        req: &IoRequest,
        hook: &mut H,
        scratch: &mut ExecScratch,
    ) -> Result<ExecOutcome, Fault> {
        let mut out = ExecOutcome::default();
        let ExecScratch { locals, call_stack } = scratch;
        locals.clear();
        locals.extend(self.prog.locals.iter().map(|&(_, w)| TypedValue::unsigned(0, w)));
        call_stack.clear();
        let mut cur = self.prog.entry;

        loop {
            out.steps += 1;
            if out.steps > self.limits.max_steps {
                return Err(Fault::StepLimit { limit: self.limits.max_steps });
            }
            let blk = self.prog.block(cur);
            hook.on_block_enter(cur, blk.kind);

            for stmt in &blk.stmts {
                self.exec_stmt(stmt, state, ctx, req, locals, &mut out, hook)?;
            }

            match &blk.term {
                Terminator::Jump(b) => cur = *b,
                Terminator::Branch { cond, taken, not_taken } => {
                    let mut flags = OverflowFlags::clear();
                    let v =
                        eval_expr_fast(cond, &EvalCtx { cs: state, locals, io: req }, &mut flags)?;
                    out.overflow.merge(flags);
                    let t = v.is_true();
                    hook.on_cond_branch(cur, t);
                    cur = if t { *taken } else { *not_taken };
                }
                Terminator::Switch { scrutinee, arms, default } => {
                    let mut flags = OverflowFlags::clear();
                    let v = eval_expr_fast(
                        scrutinee,
                        &EvalCtx { cs: state, locals, io: req },
                        &mut flags,
                    )?;
                    out.overflow.merge(flags);
                    let target =
                        arms.iter().find(|&&(k, _)| k == v.bits).map_or(*default, |&(_, b)| b);
                    hook.on_switch(cur, v.bits, target);
                    cur = target;
                }
                Terminator::IndirectCall { ptr, ret } => {
                    let value = state.var(*ptr);
                    let target = self.prog.fn_table.get(&value).copied();
                    hook.on_indirect_call(cur, value, target);
                    match target {
                        Some(t) => {
                            call_stack.push(*ret);
                            cur = t;
                        }
                        None => return Err(Fault::WildIndirectCall { block: cur, value }),
                    }
                }
                Terminator::Return => match call_stack.pop() {
                    Some(to) => {
                        hook.on_return(cur, to);
                        cur = to;
                    }
                    None => return Err(Fault::ReturnWithoutCall { block: cur }),
                },
                Terminator::Exit => {
                    hook.on_exit(cur);
                    return Ok(out);
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_stmt<H: ExecHook + ?Sized>(
        &self,
        stmt: &Stmt,
        state: &mut CsState,
        ctx: &mut VmContext,
        req: &IoRequest,
        locals: &mut [TypedValue],
        out: &mut ExecOutcome,
        hook: &mut H,
    ) -> Result<(), Fault> {
        let mut flags = OverflowFlags::clear();
        match stmt {
            Stmt::SetVar(v, e) => {
                let val = eval_expr_fast(e, &EvalCtx { cs: state, locals, io: req }, &mut flags)?;
                let decl = self.decl.var_decl(*v);
                let (conv, truncated) = val.convert(decl.width, decl.signed);
                if truncated {
                    flags.truncation = true;
                }
                let old = state.var(*v);
                state.set_var(*v, conv.bits);
                let kind = if flags.arithmetic {
                    OverflowKind::Arithmetic
                } else if truncated {
                    OverflowKind::Truncation
                } else {
                    OverflowKind::None
                };
                hook.on_var_write(*v, old, conv.bits, kind);
            }
            Stmt::SetLocal(l, e) => {
                let val = eval_expr_fast(e, &EvalCtx { cs: state, locals, io: req }, &mut flags)?;
                let w = self.prog.locals[l.0 as usize].1;
                let (conv, truncated) = val.convert(w, false);
                if truncated {
                    flags.truncation = true;
                }
                locals[l.0 as usize] = conv;
            }
            Stmt::BufStore(b, idx, val) => {
                let i = eval_expr_fast(idx, &EvalCtx { cs: state, locals, io: req }, &mut flags)?;
                let v = eval_expr_fast(val, &EvalCtx { cs: state, locals, io: req }, &mut flags)?;
                let index = i.as_i128() as i64;
                let effect = state.buf_write(*b, index, v.bits as u8)?;
                if effect == AccessEffect::Spilled {
                    out.spills += 1;
                }
                hook.on_buf_store(*b, index, effect);
            }
            Stmt::BufFill(b, val) => {
                let v = eval_expr_fast(val, &EvalCtx { cs: state, locals, io: req }, &mut flags)?;
                state.buf_fill(*b, v.bits as u8);
            }
            Stmt::CopyPayload { buf, buf_off, len } => {
                let off =
                    eval_expr_fast(buf_off, &EvalCtx { cs: state, locals, io: req }, &mut flags)?
                        .as_i128() as i64;
                let n = eval_expr_fast(len, &EvalCtx { cs: state, locals, io: req }, &mut flags)?
                    .as_i128()
                    .max(0) as i64;
                for k in 0..n {
                    let byte = req.payload_byte(k as usize);
                    let effect = state.buf_write(*buf, off + k, byte)?;
                    if effect == AccessEffect::Spilled {
                        out.spills += 1;
                    }
                    hook.on_buf_store(*buf, off + k, effect);
                }
            }
            Stmt::Intrinsic(i) => {
                self.exec_intrinsic(i, state, ctx, req, locals, out, hook, &mut flags)?;
            }
        }
        out.overflow.merge(flags);
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_intrinsic<H: ExecHook + ?Sized>(
        &self,
        i: &Intrinsic,
        state: &mut CsState,
        ctx: &mut VmContext,
        req: &IoRequest,
        locals: &mut [TypedValue],
        out: &mut ExecOutcome,
        hook: &mut H,
        flags: &mut OverflowFlags,
    ) -> Result<(), Fault> {
        let ev = |e: &Expr, state: &CsState, locals: &[TypedValue], flags: &mut OverflowFlags| {
            eval_expr_fast(e, &EvalCtx { cs: state, locals, io: req }, flags)
        };
        // Charges `n` transfer bytes against the round's DMA budget
        // *before* any allocation or copy loop sized by `n` runs.
        let charge = |n: u64, out: &mut ExecOutcome| -> Result<(), Fault> {
            out.dma_bytes = out.dma_bytes.saturating_add(n);
            if out.dma_bytes > self.limits.max_dma_bytes {
                return Err(Fault::DmaLimit {
                    requested: out.dma_bytes,
                    limit: self.limits.max_dma_bytes,
                });
            }
            Ok(())
        };
        match i {
            Intrinsic::DmaToBuf { buf, buf_off, gpa, len } => {
                let off = ev(buf_off, state, locals, flags)?.as_i128() as i64;
                let addr = ev(gpa, state, locals, flags)?.bits;
                let n = ev(len, state, locals, flags)?.as_i128().max(0) as u64;
                charge(n, out)?;
                // Guest-memory errors tolerated: unreadable bytes read as 0.
                let data =
                    ctx.mem.read_vec(addr, n as usize).unwrap_or_else(|_| vec![0; n as usize]);
                ctx.clock.advance_ns(100 + 2 * n); // DMA setup + ~500 MB/s
                hook.on_external_buf(*buf, off, &data);
                for (k, byte) in data.iter().enumerate() {
                    let effect = state.buf_write(*buf, off + k as i64, *byte)?;
                    if effect == AccessEffect::Spilled {
                        out.spills += 1;
                    }
                    hook.on_buf_store(*buf, off + k as i64, effect);
                }
                hook.on_external_load(None, Some(*buf), n);
            }
            Intrinsic::DmaFromBuf { buf, buf_off, gpa, len } => {
                let off = ev(buf_off, state, locals, flags)?.as_i128() as i64;
                let addr = ev(gpa, state, locals, flags)?.bits;
                let n = ev(len, state, locals, flags)?.as_i128().max(0) as u64;
                charge(n, out)?;
                let mut data = Vec::with_capacity(n as usize);
                for k in 0..n {
                    let (byte, effect) = state.buf_read(*buf, off + k as i64)?;
                    if effect == AccessEffect::Spilled {
                        out.spills += 1;
                    }
                    data.push(byte);
                }
                ctx.clock.advance_ns(100 + 2 * n); // DMA setup + ~500 MB/s
                let _ = ctx.mem.write_bytes(addr, &data); // drop on bad address
            }
            Intrinsic::DmaLoadVar { var, gpa, width } => {
                let addr = ev(gpa, state, locals, flags)?.bits;
                let value = ctx.mem.read_uint(addr, width.bytes()).unwrap_or(0);
                let old = state.var(*var);
                let decl = self.decl.var_decl(*var);
                let (conv, _) = TypedValue::u64(value).convert(decl.width, decl.signed);
                state.set_var(*var, conv.bits);
                hook.on_var_write(*var, old, conv.bits, OverflowKind::None);
                hook.on_external_load(Some(*var), None, conv.bits);
            }
            Intrinsic::DmaStore { gpa, value, width } => {
                let addr = ev(gpa, state, locals, flags)?.bits;
                let v = ev(value, state, locals, flags)?.bits;
                let _ = ctx.mem.write_uint(addr, width.bytes(), v);
            }
            Intrinsic::IrqRaise { line } => {
                let n = ev(line, state, locals, flags)?.bits as usize;
                if let Ok(l) = ctx.irqs.try_line(n % ctx.irqs.len().max(1)) {
                    l.raise();
                }
            }
            Intrinsic::IrqLower { line } => {
                let n = ev(line, state, locals, flags)?.bits as usize;
                if let Ok(l) = ctx.irqs.try_line(n % ctx.irqs.len().max(1)) {
                    l.lower();
                }
            }
            Intrinsic::IoReply { value } => {
                out.reply = ev(value, state, locals, flags)?.bits;
            }
            Intrinsic::DiskReadToBuf { buf, buf_off, sector } => {
                let off = ev(buf_off, state, locals, flags)?.as_i128() as i64;
                let s = ev(sector, state, locals, flags)?.bits;
                charge(sedspec_vmm::SECTOR_SIZE as u64, out)?;
                let data =
                    ctx.disk.read_sector(s).unwrap_or_else(|_| vec![0; sedspec_vmm::SECTOR_SIZE]);
                hook.on_external_buf(*buf, off, &data);
                for (k, byte) in data.iter().enumerate() {
                    let effect = state.buf_write(*buf, off + k as i64, *byte)?;
                    if effect == AccessEffect::Spilled {
                        out.spills += 1;
                    }
                    hook.on_buf_store(*buf, off + k as i64, effect);
                }
                ctx.clock.advance_ns(20_000); // sector service time
                hook.on_external_load(None, Some(*buf), s);
            }
            Intrinsic::DiskWriteFromBuf { buf, buf_off, sector } => {
                let off = ev(buf_off, state, locals, flags)?.as_i128() as i64;
                let s = ev(sector, state, locals, flags)?.bits;
                charge(sedspec_vmm::SECTOR_SIZE as u64, out)?;
                let mut data = vec![0u8; sedspec_vmm::SECTOR_SIZE];
                for (k, slot) in data.iter_mut().enumerate() {
                    let (byte, effect) = state.buf_read(*buf, off + k as i64)?;
                    if effect == AccessEffect::Spilled {
                        out.spills += 1;
                    }
                    *slot = byte;
                }
                let _ = ctx.disk.write_sector(s, &data);
                ctx.clock.advance_ns(25_000);
            }
            Intrinsic::NetTransmit { buf, off, len } => {
                let o = ev(off, state, locals, flags)?.as_i128() as i64;
                let n = ev(len, state, locals, flags)?.as_i128().max(0) as i64;
                charge(n as u64, out)?;
                let mut frame = Vec::with_capacity(n as usize);
                for k in 0..n {
                    let (byte, effect) = state.buf_read(*buf, o + k)?;
                    if effect == AccessEffect::Spilled {
                        out.spills += 1;
                    }
                    frame.push(byte);
                }
                ctx.clock.advance_ns(800 + frame.len() as u64 * 8);
                ctx.net.transmit(frame);
            }
            Intrinsic::DelayNs { ns } => {
                let n = ev(ns, state, locals, flags)?.bits;
                ctx.clock.advance_ns(n);
            }
            Intrinsic::Note(_) => {}
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::ir::BinOp;
    use sedspec_vmm::AddressSpace;

    fn ctx() -> VmContext {
        VmContext::new(0x1000, 8)
    }

    fn wreq(data: u64) -> IoRequest {
        IoRequest::write(AddressSpace::Pmio, 0x10, 1, data)
    }

    #[test]
    fn executes_straight_line_and_replies() {
        let mut cs = ControlStructure::new("T");
        let a = cs.var("a", Width::W16);
        let mut b = ProgramBuilder::new("p");
        let e = b.entry_block("e");
        b.select(e);
        b.set_var(a, Expr::bin(BinOp::Add, Expr::var(a), Expr::IoData));
        b.reply(Expr::var(a));
        b.exit();
        let p = b.finish().unwrap();
        let mut st = cs.instantiate();
        let out =
            Interpreter::new(&p, &cs).run(&mut st, &mut ctx(), &wreq(5), &mut NullHook).unwrap();
        assert_eq!(st.var(a), 5);
        assert_eq!(out.reply, 5);
        assert_eq!(out.steps, 1);
    }

    #[test]
    fn branch_follows_condition() {
        let mut cs = ControlStructure::new("T");
        let a = cs.var("a", Width::W8);
        let mut b = ProgramBuilder::new("p");
        let e = b.entry_block("e");
        let yes = b.block("yes");
        let no = b.block("no");
        let x = b.exit_block("x");
        b.select(e);
        b.branch(Expr::bin(BinOp::Gt, Expr::IoData, Expr::lit(10)), yes, no);
        b.select(yes);
        b.set_var(a, Expr::lit(1));
        b.jump(x);
        b.select(no);
        b.set_var(a, Expr::lit(2));
        b.jump(x);
        let p = b.finish().unwrap();
        let mut st = cs.instantiate();
        Interpreter::new(&p, &cs).run(&mut st, &mut ctx(), &wreq(50), &mut NullHook).unwrap();
        assert_eq!(st.var(a), 1);
        Interpreter::new(&p, &cs).run(&mut st, &mut ctx(), &wreq(3), &mut NullHook).unwrap();
        assert_eq!(st.var(a), 2);
    }

    #[test]
    fn switch_dispatches_with_default() {
        let mut cs = ControlStructure::new("T");
        let a = cs.var("a", Width::W8);
        let mut b = ProgramBuilder::new("p");
        let e = b.entry_block("e");
        let one = b.block("one");
        let other = b.block("other");
        let x = b.exit_block("x");
        b.select(e);
        b.switch(Expr::IoData, vec![(1, one)], other);
        b.select(one);
        b.set_var(a, Expr::lit(11));
        b.jump(x);
        b.select(other);
        b.set_var(a, Expr::lit(99));
        b.jump(x);
        let p = b.finish().unwrap();
        let mut st = cs.instantiate();
        Interpreter::new(&p, &cs).run(&mut st, &mut ctx(), &wreq(1), &mut NullHook).unwrap();
        assert_eq!(st.var(a), 11);
        Interpreter::new(&p, &cs).run(&mut st, &mut ctx(), &wreq(7), &mut NullHook).unwrap();
        assert_eq!(st.var(a), 99);
    }

    #[test]
    fn indirect_call_and_return() {
        let mut cs = ControlStructure::new("T");
        let ptr = cs.fn_ptr("handler", 0x42);
        let a = cs.var("a", Width::W8);
        let mut b = ProgramBuilder::new("p");
        let e = b.entry_block("e");
        let f = b.block("callee");
        let after = b.block("after");
        let x = b.exit_block("x");
        b.register_fn(0x42, f);
        b.select(e);
        b.indirect_call(ptr, after);
        b.select(f);
        b.set_var(a, Expr::lit(7));
        b.ret();
        b.select(after);
        b.jump(x);
        let p = b.finish().unwrap();
        let mut st = cs.instantiate();
        let out =
            Interpreter::new(&p, &cs).run(&mut st, &mut ctx(), &wreq(0), &mut NullHook).unwrap();
        assert_eq!(st.var(a), 7);
        assert_eq!(out.steps, 4);
    }

    #[test]
    fn clobbered_fn_ptr_is_wild_call() {
        let mut cs = ControlStructure::new("T");
        let ptr = cs.fn_ptr("handler", 0x42);
        let mut b = ProgramBuilder::new("p");
        let e = b.entry_block("e");
        let f = b.block("callee");
        let x = b.exit_block("x");
        b.register_fn(0x42, f);
        b.select(e);
        b.indirect_call(ptr, x);
        b.select(f);
        b.ret();
        let p = b.finish().unwrap();
        let mut st = cs.instantiate();
        st.set_var(ptr, 0xdead); // attacker overwrote the pointer
        let err = Interpreter::new(&p, &cs).run(&mut st, &mut ctx(), &wreq(0), &mut NullHook);
        assert!(matches!(err, Err(Fault::WildIndirectCall { value: 0xdead, .. })));
    }

    #[test]
    fn infinite_loop_hits_step_limit() {
        let cs = ControlStructure::new("T");
        let mut b = ProgramBuilder::new("p");
        let e = b.entry_block("e");
        b.select(e);
        b.jump(e);
        let p = b.finish().unwrap();
        let mut st = cs.instantiate();
        let r = Interpreter::new(&p, &cs)
            .with_limits(ExecLimits { max_steps: 100, ..ExecLimits::default() })
            .run(&mut st, &mut ctx(), &wreq(0), &mut NullHook);
        assert!(matches!(r, Err(Fault::StepLimit { limit: 100 })));
    }

    #[test]
    fn buffer_spill_is_counted_and_corrupts() {
        let mut cs = ControlStructure::new("T");
        let fifo = cs.buffer("fifo", 4);
        let tail = cs.var("tail", Width::W8);
        let mut b = ProgramBuilder::new("p");
        let e = b.entry_block("e");
        b.select(e);
        b.buf_store(fifo, Expr::IoData, Expr::lit(0x77));
        b.exit();
        let p = b.finish().unwrap();
        let mut st = cs.instantiate();
        let out =
            Interpreter::new(&p, &cs).run(&mut st, &mut ctx(), &wreq(4), &mut NullHook).unwrap();
        assert_eq!(out.spills, 1);
        assert_eq!(st.var(tail), 0x77);
    }

    #[test]
    fn arena_escape_faults() {
        let mut cs = ControlStructure::new("T");
        let fifo = cs.buffer("fifo", 4);
        let mut b = ProgramBuilder::new("p");
        let e = b.entry_block("e");
        b.select(e);
        b.buf_store(fifo, Expr::IoData, Expr::lit(1));
        b.exit();
        let p = b.finish().unwrap();
        let mut st = cs.instantiate();
        let r = Interpreter::new(&p, &cs).run(&mut st, &mut ctx(), &wreq(10_000), &mut NullHook);
        assert!(matches!(r, Err(Fault::Arena(_))));
    }

    #[test]
    fn dma_round_trip_through_buffer() {
        let mut cs = ControlStructure::new("T");
        let buf = cs.buffer("buf", 8);
        let mut b = ProgramBuilder::new("p");
        let e = b.entry_block("e");
        b.select(e);
        b.intrinsic(Intrinsic::DmaToBuf {
            buf,
            buf_off: Expr::lit(0),
            gpa: Expr::lit(0x100),
            len: Expr::lit(4),
        });
        b.intrinsic(Intrinsic::DmaFromBuf {
            buf,
            buf_off: Expr::lit(0),
            gpa: Expr::lit(0x200),
            len: Expr::lit(4),
        });
        b.exit();
        let p = b.finish().unwrap();
        let mut st = cs.instantiate();
        let mut c = ctx();
        c.mem.write_u32(0x100, 0xaabbccdd).unwrap();
        Interpreter::new(&p, &cs).run(&mut st, &mut c, &wreq(0), &mut NullHook).unwrap();
        assert_eq!(c.mem.read_u32(0x200).unwrap(), 0xaabbccdd);
    }

    #[test]
    fn bad_guest_address_reads_zero() {
        let mut cs = ControlStructure::new("T");
        let v = cs.var("v", Width::W32);
        let mut b = ProgramBuilder::new("p");
        let e = b.entry_block("e");
        b.select(e);
        b.intrinsic(Intrinsic::DmaLoadVar {
            var: v,
            gpa: Expr::lit(u64::MAX - 2),
            width: Width::W32,
        });
        b.exit();
        let p = b.finish().unwrap();
        let mut st = cs.instantiate();
        st.set_var(v, 0xffff);
        Interpreter::new(&p, &cs).run(&mut st, &mut ctx(), &wreq(0), &mut NullHook).unwrap();
        assert_eq!(st.var(v), 0);
    }

    #[test]
    fn overflow_flags_propagate_to_outcome() {
        let mut cs = ControlStructure::new("T");
        let a = cs.var("a", Width::W8);
        let mut b = ProgramBuilder::new("p");
        let e = b.entry_block("e");
        b.select(e);
        b.set_var(a, Expr::bin(BinOp::Add, Expr::lit(0xff_u64), Expr::var(a)));
        b.exit();
        let p = b.finish().unwrap();
        let mut st = cs.instantiate();
        st.set_var(a, 2);
        let out =
            Interpreter::new(&p, &cs).run(&mut st, &mut ctx(), &wreq(0), &mut NullHook).unwrap();
        assert!(out.overflow.arithmetic);
        assert_eq!(st.var(a), 1);
    }

    /// Budget-regression helper: a single-block program running `i`
    /// under a tight DMA budget, expected to fault typed, not allocate.
    fn run_charged(cs: &ControlStructure, i: Intrinsic, budget: u64) -> Result<ExecOutcome, Fault> {
        let mut b = ProgramBuilder::new("p");
        let e = b.entry_block("e");
        b.select(e);
        b.intrinsic(i);
        b.exit();
        let p = b.finish().unwrap();
        let mut st = cs.instantiate();
        Interpreter::new(&p, cs)
            .with_limits(ExecLimits { max_dma_bytes: budget, ..ExecLimits::default() })
            .run(&mut st, &mut ctx(), &wreq(0), &mut NullHook)
    }

    #[test]
    fn dma_to_buf_over_budget_is_typed_fault() {
        // A guest-length DMA read beyond the budget must fail *before*
        // the `vec![0; n]` fallback sizes an allocation by guest data.
        let mut cs = ControlStructure::new("T");
        let buf = cs.buffer("buf", 8);
        let i = Intrinsic::DmaToBuf {
            buf,
            buf_off: Expr::lit(0),
            gpa: Expr::lit(0x100),
            len: Expr::lit(u64::from(u32::MAX)),
        };
        let r = run_charged(&cs, i, 1024);
        assert!(matches!(r, Err(Fault::DmaLimit { limit: 1024, .. })), "{r:?}");
    }

    #[test]
    fn dma_from_buf_over_budget_is_typed_fault() {
        let mut cs = ControlStructure::new("T");
        let buf = cs.buffer("buf", 8);
        let i = Intrinsic::DmaFromBuf {
            buf,
            buf_off: Expr::lit(0),
            gpa: Expr::lit(0x100),
            len: Expr::lit(u64::from(u32::MAX)),
        };
        let r = run_charged(&cs, i, 1024);
        assert!(matches!(r, Err(Fault::DmaLimit { limit: 1024, .. })), "{r:?}");
    }

    #[test]
    fn net_transmit_over_budget_is_typed_fault() {
        let mut cs = ControlStructure::new("T");
        let buf = cs.buffer("buf", 8);
        let i =
            Intrinsic::NetTransmit { buf, off: Expr::lit(0), len: Expr::lit(u64::from(u32::MAX)) };
        let r = run_charged(&cs, i, 1024);
        assert!(matches!(r, Err(Fault::DmaLimit { limit: 1024, .. })), "{r:?}");
    }

    #[test]
    fn disk_intrinsics_charge_sector_size() {
        let mut cs = ControlStructure::new("T");
        let buf = cs.buffer("buf", sedspec_vmm::SECTOR_SIZE);
        let rd = Intrinsic::DiskReadToBuf { buf, buf_off: Expr::lit(0), sector: Expr::lit(0) };
        let out = run_charged(&cs, rd.clone(), 1 << 20).unwrap();
        assert_eq!(out.dma_bytes, sedspec_vmm::SECTOR_SIZE as u64);
        // One sector over a sub-sector budget faults instead of copying.
        let r = run_charged(&cs, rd, 64);
        assert!(matches!(r, Err(Fault::DmaLimit { limit: 64, .. })), "{r:?}");
        let wr = Intrinsic::DiskWriteFromBuf { buf, buf_off: Expr::lit(0), sector: Expr::lit(0) };
        let r = run_charged(&cs, wr, 64);
        assert!(matches!(r, Err(Fault::DmaLimit { limit: 64, .. })), "{r:?}");
    }

    #[test]
    fn dma_budget_accumulates_across_transfers_in_one_round() {
        let mut cs = ControlStructure::new("T");
        let buf = cs.buffer("buf", 8);
        let mut b = ProgramBuilder::new("p");
        let e = b.entry_block("e");
        b.select(e);
        for _ in 0..3 {
            b.intrinsic(Intrinsic::DmaToBuf {
                buf,
                buf_off: Expr::lit(0),
                gpa: Expr::lit(0x100),
                len: Expr::lit(4),
            });
        }
        b.exit();
        let p = b.finish().unwrap();
        let mut st = cs.instantiate();
        let out = Interpreter::new(&p, &cs)
            .with_limits(ExecLimits { max_dma_bytes: 12, ..ExecLimits::default() })
            .run(&mut st, &mut ctx(), &wreq(0), &mut NullHook)
            .unwrap();
        assert_eq!(out.dma_bytes, 12);
        let mut st2 = cs.instantiate();
        let r = Interpreter::new(&p, &cs)
            .with_limits(ExecLimits { max_dma_bytes: 11, ..ExecLimits::default() })
            .run(&mut st2, &mut ctx(), &wreq(0), &mut NullHook);
        assert!(matches!(r, Err(Fault::DmaLimit { requested: 12, limit: 11 })), "{r:?}");
    }

    #[test]
    fn copy_payload_zero_pads() {
        let mut cs = ControlStructure::new("T");
        let buf = cs.buffer("buf", 8);
        let mut b = ProgramBuilder::new("p");
        let e = b.entry_block("e");
        b.select(e);
        b.copy_payload(buf, Expr::lit(0), Expr::lit(6));
        b.exit();
        let p = b.finish().unwrap();
        let mut st = cs.instantiate();
        st.buf_fill(buf, 0xff);
        let mut req = IoRequest::net_frame(vec![1, 2, 3]);
        req.space = AddressSpace::NetFrame;
        Interpreter::new(&p, &cs).run(&mut st, &mut ctx(), &req, &mut NullHook).unwrap();
        assert_eq!(st.buf_bytes(buf), vec![1, 2, 3, 0, 0, 0, 0xff, 0xff]);
    }
}
