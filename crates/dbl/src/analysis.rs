//! Static analysis over DBL programs — the `angr` replacement.
//!
//! Three analyses feed the SEDSpec pipeline:
//!
//! 1. **Usage classification** ([`classify`]): which device-state
//!    variables index buffers, carry lengths into copy operations, feed
//!    indirect calls or influence branches. The CFG analyzer's Rule 2
//!    filter (paper Table I) is built on these classes.
//! 2. **Branch influencers** ([`branch_influencers`]): per block, the
//!    device-state variables that (transitively, through locals) decide
//!    its terminator — the variables observation points must record.
//! 3. **Path-sensitive rewriting** ([`rewrite_along_path`]): expressing
//!    a branch condition purely over device state and I/O data by
//!    substituting local definitions backwards along an executed path —
//!    the paper's data-dependency recovery. When a local cannot be
//!    resolved (or resolving would be unsound because an input was
//!    overwritten after the definition), the result demands a sync
//!    point instead.

use std::collections::{BTreeMap, BTreeSet};

use crate::ir::{BlockId, BufId, Expr, Intrinsic, LocalId, Program, Stmt, Terminator, VarId};

/// Usage classes of device-state variables across a device's handlers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UsageClasses {
    /// Variables used in buffer index positions (`buf[v]`, store offsets).
    pub index_vars: BTreeSet<VarId>,
    /// Variables used as lengths of copy-like operations.
    pub count_vars: BTreeSet<VarId>,
    /// Variables dispatched through `IndirectCall`.
    pub fn_ptr_vars: BTreeSet<VarId>,
    /// Variables that influence a conditional branch or switch
    /// (directly or through a local).
    pub cond_vars: BTreeSet<VarId>,
    /// Buffers touched by any handler.
    pub buffers: BTreeSet<BufId>,
}

fn flow_insensitive_local_defs(prog: &Program) -> BTreeMap<LocalId, Vec<Expr>> {
    let mut defs: BTreeMap<LocalId, Vec<Expr>> = BTreeMap::new();
    for blk in &prog.blocks {
        for s in &blk.stmts {
            if let Stmt::SetLocal(l, e) = s {
                defs.entry(*l).or_default().push(e.clone());
            }
        }
    }
    defs
}

fn vars_closure(e: &Expr, defs: &BTreeMap<LocalId, Vec<Expr>>) -> BTreeSet<VarId> {
    let mut out: BTreeSet<VarId> = e.vars().into_iter().collect();
    let mut work: Vec<LocalId> = e.locals();
    let mut seen: BTreeSet<LocalId> = work.iter().copied().collect();
    while let Some(l) = work.pop() {
        if let Some(exprs) = defs.get(&l) {
            for d in exprs {
                out.extend(d.vars());
                for nl in d.locals() {
                    if seen.insert(nl) {
                        work.push(nl);
                    }
                }
            }
        }
    }
    out
}

fn index_exprs_of_stmt(s: &Stmt) -> Vec<&Expr> {
    match s {
        Stmt::BufStore(_, idx, _) => vec![idx],
        Stmt::CopyPayload { buf_off, .. } => vec![buf_off],
        Stmt::Intrinsic(Intrinsic::DmaToBuf { buf_off, .. })
        | Stmt::Intrinsic(Intrinsic::DmaFromBuf { buf_off, .. })
        | Stmt::Intrinsic(Intrinsic::DiskReadToBuf { buf_off, .. })
        | Stmt::Intrinsic(Intrinsic::DiskWriteFromBuf { buf_off, .. }) => vec![buf_off],
        Stmt::Intrinsic(Intrinsic::NetTransmit { off, .. }) => vec![off],
        _ => vec![],
    }
}

fn len_exprs_of_stmt(s: &Stmt) -> Vec<&Expr> {
    match s {
        Stmt::CopyPayload { len, .. } => vec![len],
        Stmt::Intrinsic(Intrinsic::DmaToBuf { len, .. })
        | Stmt::Intrinsic(Intrinsic::DmaFromBuf { len, .. })
        | Stmt::Intrinsic(Intrinsic::NetTransmit { len, .. }) => vec![len],
        _ => vec![],
    }
}

fn buffers_of_stmt(s: &Stmt) -> Vec<BufId> {
    match s {
        Stmt::BufStore(b, idx, v) => {
            let mut out = vec![*b];
            out.extend(idx.buffers());
            out.extend(v.buffers());
            out
        }
        Stmt::BufFill(b, _) => vec![*b],
        Stmt::CopyPayload { buf, .. } => vec![*buf],
        Stmt::Intrinsic(i) => {
            let mut out = Vec::new();
            if let Some(b) = i.written_buf() {
                out.push(b);
            }
            if let Intrinsic::DmaFromBuf { buf, .. }
            | Intrinsic::DiskWriteFromBuf { buf, .. }
            | Intrinsic::NetTransmit { buf, .. } = i
            {
                out.push(*buf);
            }
            out
        }
        Stmt::SetVar(_, e) | Stmt::SetLocal(_, e) => e.buffers(),
    }
}

/// Classifies device-state variable usage across `programs`.
///
/// Also walks index/length expressions that go through locals
/// (flow-insensitively), so `tmp = xmit_pos; buf[tmp] = x` still marks
/// `xmit_pos` as an index variable.
pub fn classify(programs: &[&Program]) -> UsageClasses {
    let mut out = UsageClasses::default();
    for prog in programs {
        let defs = flow_insensitive_local_defs(prog);
        for blk in &prog.blocks {
            for s in &blk.stmts {
                for e in index_exprs_of_stmt(s) {
                    out.index_vars.extend(vars_closure(e, &defs));
                }
                // Indices appearing inside BufLoad nodes anywhere.
                let walk_bufload = |e: &Expr, out: &mut UsageClasses| {
                    e.visit(&mut |n| {
                        if let Expr::BufLoad(_, idx) = n {
                            out.index_vars.extend(vars_closure(idx, &defs));
                        }
                    });
                };
                match s {
                    Stmt::SetVar(_, e) | Stmt::SetLocal(_, e) | Stmt::BufFill(_, e) => {
                        walk_bufload(e, &mut out);
                    }
                    Stmt::BufStore(_, a, b) => {
                        walk_bufload(a, &mut out);
                        walk_bufload(b, &mut out);
                    }
                    _ => {}
                }
                for e in len_exprs_of_stmt(s) {
                    out.count_vars.extend(vars_closure(e, &defs));
                }
                out.buffers.extend(buffers_of_stmt(s));
            }
            match &blk.term {
                Terminator::Branch { cond, .. } => {
                    out.cond_vars.extend(vars_closure(cond, &defs));
                    cond.visit(&mut |n| {
                        if let Expr::BufLoad(_, idx) = n {
                            out.index_vars.extend(vars_closure(idx, &defs));
                        }
                    });
                }
                Terminator::Switch { scrutinee, .. } => {
                    out.cond_vars.extend(vars_closure(scrutinee, &defs));
                }
                Terminator::IndirectCall { ptr, .. } => {
                    out.fn_ptr_vars.insert(*ptr);
                    out.cond_vars.insert(*ptr);
                }
                _ => {}
            }
        }
    }
    out
}

/// Per-block device-state variables that decide the block's terminator.
pub fn branch_influencers(prog: &Program) -> BTreeMap<BlockId, BTreeSet<VarId>> {
    let defs = flow_insensitive_local_defs(prog);
    let mut out = BTreeMap::new();
    for (i, blk) in prog.blocks.iter().enumerate() {
        let id = BlockId(i as u32);
        let vars = match &blk.term {
            Terminator::Branch { cond, .. } => vars_closure(cond, &defs),
            Terminator::Switch { scrutinee, .. } => vars_closure(scrutinee, &defs),
            Terminator::IndirectCall { ptr, .. } => [*ptr].into_iter().collect(),
            _ => BTreeSet::new(),
        };
        if !vars.is_empty() {
            out.insert(id, vars);
        }
    }
    out
}

/// Result of data-dependency recovery for one expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rewrite {
    /// The expression was rewritten purely over device state, I/O data
    /// and buffer contents; it can be evaluated on the shadow state.
    Pure(Expr),
    /// Some locals could not be soundly resolved; runtime needs a sync
    /// point that reports the values of the listed locals.
    NeedsSync {
        /// Best-effort partially rewritten expression.
        partial: Expr,
        /// Locals whose values must be synchronized from the device.
        unresolved: Vec<LocalId>,
    },
}

impl Rewrite {
    /// Whether the rewrite is fully resolved.
    pub fn is_pure(&self) -> bool {
        matches!(self, Rewrite::Pure(_))
    }
}

/// Statements between the definition point and the use that invalidate a
/// substitution: writes to any var/buffer the definition reads.
fn stmt_clobbers(s: &Stmt, vars: &BTreeSet<VarId>, bufs: &BTreeSet<BufId>) -> bool {
    match s {
        Stmt::SetVar(v, _) => vars.contains(v),
        Stmt::SetLocal(..) => false,
        Stmt::BufStore(b, ..) | Stmt::BufFill(b, _) => bufs.contains(b),
        Stmt::CopyPayload { buf, .. } => bufs.contains(buf),
        Stmt::Intrinsic(i) => {
            i.written_var().is_some_and(|v| vars.contains(&v))
                || i.written_buf().is_some_and(|b| bufs.contains(&b))
        }
    }
}

/// Rewrites `expr` (a terminator condition evaluated at the end of the
/// last block of `path`) over device state and I/O data by substituting
/// local definitions backwards along the executed statement sequence.
///
/// The statement sequence is the concatenation of all statements of the
/// blocks in `path`, oldest first. A local is substituted by its most
/// recent definition, provided none of the definition's inputs (vars or
/// buffers) are written between the definition and the end of the path —
/// otherwise the substitution would change meaning and the local is
/// reported as unresolved.
pub fn rewrite_along_path(prog: &Program, path: &[BlockId], expr: &Expr) -> Rewrite {
    // Flatten executed statements.
    let stmts: Vec<&Stmt> = path.iter().flat_map(|b| prog.block(*b).stmts.iter()).collect();

    let mut current = expr.clone();
    let mut unresolved: BTreeSet<LocalId> = BTreeSet::new();
    // Iterate until no substitutable locals remain.
    for _round in 0..64 {
        let locals = current.locals();
        let pending: Vec<LocalId> =
            locals.into_iter().filter(|l| !unresolved.contains(l)).collect();
        if pending.is_empty() {
            break;
        }
        let mut subst: BTreeMap<LocalId, Expr> = BTreeMap::new();
        for l in pending {
            // Find the last definition of l in the flattened sequence.
            let def_pos =
                stmts.iter().rposition(|s| matches!(s, Stmt::SetLocal(dl, _) if dl == &l));
            match def_pos {
                None => {
                    unresolved.insert(l);
                }
                Some(pos) => {
                    let Stmt::SetLocal(_, def) = stmts[pos] else { unreachable!() };
                    let in_vars: BTreeSet<VarId> = def.vars().into_iter().collect();
                    let in_bufs: BTreeSet<BufId> = def.buffers().into_iter().collect();
                    let clobbered =
                        stmts[pos + 1..].iter().any(|s| stmt_clobbers(s, &in_vars, &in_bufs));
                    if clobbered {
                        unresolved.insert(l);
                    } else {
                        subst.insert(l, def.clone());
                    }
                }
            }
        }
        if subst.is_empty() {
            break;
        }
        current = current.substitute_locals(&subst);
    }
    let leftover: Vec<LocalId> =
        current.locals().into_iter().filter(|l| unresolved.contains(l)).collect();
    if leftover.is_empty() && !current.has_locals() {
        Rewrite::Pure(current)
    } else {
        Rewrite::NeedsSync { partial: current.clone(), unresolved: current.locals() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::ir::{BinOp, Width};
    use crate::state::ControlStructure;

    struct Fixture {
        prog: Program,
        data_pos: VarId,
        limit: VarId,
        irq: VarId,
        entry: BlockId,
    }

    /// entry: tmp = data_pos + 1; branch(tmp < limit) -> a | b
    /// a: indirect call through irq
    fn fixture() -> Fixture {
        let mut cs = ControlStructure::new("T");
        let fifo = cs.buffer("fifo", 8);
        let data_pos = cs.var("data_pos", Width::W32);
        let limit = cs.var("limit", Width::W32);
        let irq = cs.fn_ptr("irq", 1);
        let mut b = ProgramBuilder::new("p");
        let entry = b.entry_block("entry");
        let a = b.block("a");
        let f = b.block("f");
        let x = b.exit_block("x");
        let tmp = b.local("tmp", Width::W32);
        b.register_fn(1, f);
        b.select(entry);
        b.set_local(tmp, Expr::bin(BinOp::Add, Expr::var(data_pos), Expr::lit(1)));
        b.buf_store(fifo, Expr::local(tmp), Expr::lit(0));
        b.branch(Expr::bin(BinOp::Lt, Expr::local(tmp), Expr::var(limit)), a, x);
        b.select(a);
        b.indirect_call(irq, x);
        b.select(f);
        b.ret();
        Fixture { prog: b.finish().unwrap(), data_pos, limit, irq, entry }
    }

    #[test]
    fn classify_finds_roles() {
        let fx = fixture();
        let c = classify(&[&fx.prog]);
        assert!(c.index_vars.contains(&fx.data_pos), "tmp feeds a buffer index");
        assert!(c.cond_vars.contains(&fx.data_pos));
        assert!(c.cond_vars.contains(&fx.limit));
        assert!(c.fn_ptr_vars.contains(&fx.irq));
        assert_eq!(c.buffers.len(), 1);
    }

    #[test]
    fn branch_influencers_follow_locals() {
        let fx = fixture();
        let infl = branch_influencers(&fx.prog);
        let entry_vars = &infl[&fx.entry];
        assert!(entry_vars.contains(&fx.data_pos));
        assert!(entry_vars.contains(&fx.limit));
    }

    #[test]
    fn rewrite_resolves_local_to_device_state() {
        let fx = fixture();
        let cond = match &fx.prog.block(fx.entry).term {
            Terminator::Branch { cond, .. } => cond.clone(),
            _ => unreachable!(),
        };
        let rw = rewrite_along_path(&fx.prog, &[fx.entry], &cond);
        match rw {
            Rewrite::Pure(e) => {
                assert!(!e.has_locals());
                assert!(e.vars().contains(&fx.data_pos));
            }
            other => panic!("expected pure rewrite, got {other:?}"),
        }
    }

    #[test]
    fn rewrite_detects_clobbered_inputs() {
        // tmp = v; v = v + 1; branch(tmp) — substituting tmp:=v would be wrong.
        let mut cs = ControlStructure::new("T");
        let v = cs.var("v", Width::W8);
        let mut b = ProgramBuilder::new("p");
        let e = b.entry_block("e");
        let x = b.exit_block("x");
        let tmp = b.local("tmp", Width::W8);
        b.select(e);
        b.set_local(tmp, Expr::var(v));
        b.set_var(v, Expr::bin(BinOp::Add, Expr::var(v), Expr::lit(1)));
        b.branch(Expr::local(tmp), x, x);
        let prog = b.finish().unwrap();
        let cond = Expr::local(tmp);
        let rw = rewrite_along_path(&prog, &[e], &cond);
        assert!(
            matches!(rw, Rewrite::NeedsSync { ref unresolved, .. } if unresolved == &vec![tmp])
        );
    }

    #[test]
    fn rewrite_spans_blocks_along_path() {
        let mut cs = ControlStructure::new("T");
        let v = cs.var("v", Width::W8);
        let mut b = ProgramBuilder::new("p");
        let e = b.entry_block("e");
        let mid = b.block("mid");
        let x = b.exit_block("x");
        let tmp = b.local("tmp", Width::W8);
        b.select(e);
        b.set_local(tmp, Expr::var(v));
        b.jump(mid);
        b.select(mid);
        b.branch(Expr::local(tmp), x, x);
        let prog = b.finish().unwrap();
        let rw = rewrite_along_path(&prog, &[e, mid], &Expr::local(tmp));
        assert_eq!(rw, Rewrite::Pure(Expr::var(v)));
        // Without the defining block on the path, the local is unresolved.
        let rw2 = rewrite_along_path(&prog, &[mid], &Expr::local(tmp));
        assert!(!rw2.is_pure());
    }

    #[test]
    fn rewrite_chains_locals() {
        let mut cs = ControlStructure::new("T");
        let v = cs.var("v", Width::W8);
        let mut b = ProgramBuilder::new("p");
        let e = b.entry_block("e");
        let x = b.exit_block("x");
        let t0 = b.local("t0", Width::W8);
        let t1 = b.local("t1", Width::W8);
        b.select(e);
        b.set_local(t0, Expr::bin(BinOp::Add, Expr::var(v), Expr::lit(2)));
        b.set_local(t1, Expr::bin(BinOp::Mul, Expr::local(t0), Expr::lit(3)));
        b.branch(Expr::local(t1), x, x);
        let prog = b.finish().unwrap();
        let rw = rewrite_along_path(&prog, &[e], &Expr::local(t1));
        match rw {
            Rewrite::Pure(expr) => assert_eq!(expr.vars(), vec![v]),
            other => panic!("expected pure, got {other:?}"),
        }
    }
}
