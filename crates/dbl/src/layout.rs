//! Synthetic code addresses for programs and blocks.
//!
//! Intel PT reports branch *addresses*; to reproduce that pipeline the
//! tracer needs every basic block to live at a code address. A
//! [`CodeLayout`] assigns each program a base address and each block a
//! fixed-stride slot, and can map addresses back to `(program, block)`.
//! Devices occupy the "device code" range; a separate well-known range
//! models shared-library helpers so the tracer's address filter has
//! something real to exclude (paper Section IV-A).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::ir::{BlockId, Program};

/// Base of the device-code address range.
pub const DEVICE_CODE_BASE: u64 = 0x5555_0000_0000;
/// Base of the simulated shared-library range (filtered out by tracing).
pub const LIBRARY_CODE_BASE: u64 = 0x7f00_0000_0000;
/// Base of the simulated kernel range (filtered out by tracing).
pub const KERNEL_CODE_BASE: u64 = 0xffff_8000_0000_0000;
/// Bytes reserved per basic block.
pub const BLOCK_STRIDE: u64 = 0x10;
/// Bytes reserved per program.
pub const PROGRAM_STRIDE: u64 = 0x1_0000;

/// Address assignment for a set of programs (one device's handlers).
///
/// # Examples
///
/// ```
/// use sedspec_dbl::builder::ProgramBuilder;
/// use sedspec_dbl::layout::CodeLayout;
///
/// let mut b = ProgramBuilder::new("h");
/// let e = b.entry_block("e");
/// b.select(e);
/// b.exit();
/// let prog = b.finish().unwrap();
///
/// let layout = CodeLayout::assign(&[&prog]);
/// let addr = layout.block_addr(0, prog.entry);
/// assert_eq!(layout.resolve(addr), Some((0, prog.entry)));
/// assert!(layout.device_range().contains(&addr));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CodeLayout {
    program_base: Vec<u64>,
    blocks_per_program: Vec<u32>,
    by_addr: BTreeMap<u64, (usize, BlockId)>,
}

impl CodeLayout {
    /// Assigns addresses to `programs` in order.
    pub fn assign(programs: &[&Program]) -> Self {
        let mut program_base = Vec::with_capacity(programs.len());
        let mut blocks_per_program = Vec::with_capacity(programs.len());
        let mut by_addr = BTreeMap::new();
        for (pi, prog) in programs.iter().enumerate() {
            let base = DEVICE_CODE_BASE + pi as u64 * PROGRAM_STRIDE;
            program_base.push(base);
            blocks_per_program.push(prog.len() as u32);
            for bi in 0..prog.len() {
                by_addr.insert(base + bi as u64 * BLOCK_STRIDE, (pi, BlockId(bi as u32)));
            }
        }
        CodeLayout { program_base, blocks_per_program, by_addr }
    }

    /// Address of block `b` of program index `pi`.
    ///
    /// # Panics
    ///
    /// Panics if `pi` is out of range.
    pub fn block_addr(&self, pi: usize, b: BlockId) -> u64 {
        self.program_base[pi] + u64::from(b.0) * BLOCK_STRIDE
    }

    /// Maps an address back to `(program index, block)`.
    pub fn resolve(&self, addr: u64) -> Option<(usize, BlockId)> {
        self.by_addr.get(&addr).copied()
    }

    /// The half-open device-code address range covered by this layout.
    pub fn device_range(&self) -> std::ops::Range<u64> {
        let end = self
            .program_base
            .iter()
            .zip(&self.blocks_per_program)
            .map(|(&b, &n)| b + u64::from(n) * BLOCK_STRIDE)
            .max()
            .unwrap_or(DEVICE_CODE_BASE);
        DEVICE_CODE_BASE..end
    }

    /// Number of programs in the layout.
    pub fn programs(&self) -> usize {
        self.program_base.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    fn prog(name: &str, blocks: usize) -> Program {
        let mut b = ProgramBuilder::new(name);
        let e = b.entry_block("e");
        let mut prev = e;
        for i in 1..blocks {
            let nb = b.block(format!("b{i}"));
            b.select(prev);
            b.jump(nb);
            prev = nb;
        }
        b.select(prev);
        b.exit();
        b.finish().unwrap()
    }

    #[test]
    fn addresses_are_unique_and_resolvable() {
        let p0 = prog("a", 3);
        let p1 = prog("b", 2);
        let layout = CodeLayout::assign(&[&p0, &p1]);
        let mut seen = std::collections::BTreeSet::new();
        for (pi, p) in [&p0, &p1].iter().enumerate() {
            for bi in 0..p.len() {
                let addr = layout.block_addr(pi, BlockId(bi as u32));
                assert!(seen.insert(addr));
                assert_eq!(layout.resolve(addr), Some((pi, BlockId(bi as u32))));
            }
        }
    }

    #[test]
    fn ranges_do_not_overlap_library_or_kernel() {
        let p0 = prog("a", 100);
        let layout = CodeLayout::assign(&[&p0]);
        let r = layout.device_range();
        assert!(r.end <= LIBRARY_CODE_BASE);
        assert!(r.end <= KERNEL_CODE_BASE);
    }

    #[test]
    fn unknown_address_resolves_to_none() {
        let p0 = prog("a", 1);
        let layout = CodeLayout::assign(&[&p0]);
        assert_eq!(layout.resolve(LIBRARY_CODE_BASE), None);
        assert_eq!(layout.resolve(DEVICE_CODE_BASE + 1), None); // misaligned
    }
}
