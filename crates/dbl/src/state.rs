//! Device control structures and their C-layout runtime instances.
//!
//! A [`ControlStructure`] declares the fields of a device's state struct
//! (QEMU's `FDCtrl`, `USBDevice`, `PCNetState`, ...). At runtime the
//! fields live packed in declaration order inside one flat byte arena
//! ([`CsState`]), so a buffer store that runs past the declared buffer
//! length lands in the *following fields* — exactly the C behaviour the
//! eight reproduced CVEs exploit (e.g. PCNet's receive CRC spilling onto
//! the adjacent `irq` function pointer). Only stores past the whole
//! arena fault, modelling the host crash/ASan abort.

use serde::{Deserialize, Serialize};

use crate::ir::{BufId, VarId, Width};
use crate::value::TypedValue;

/// Semantic role a device-state variable plays, used by the CFG
/// analyzer's Rule 1/Rule 2 filters (paper Table I). Roles other than
/// [`VarRole::Register`] and [`VarRole::FnPtr`] are *inferred* from IR
/// usage by `analysis::classify`; the declared value here is only the
/// register mapping (Rule 1) and pointer typing, which in QEMU come from
/// the device source too.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum VarRole {
    /// Plain scalar with no declared mapping.
    #[default]
    Scalar,
    /// Mirrors a physical device register (Rule 1).
    Register,
    /// Holds a function-pointer value dispatched by `IndirectCall`.
    FnPtr,
}

/// Declaration of one scalar field.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VarDecl {
    /// Field name, e.g. `"data_pos"`.
    pub name: String,
    /// Storage width.
    pub width: Width,
    /// Two's-complement interpretation.
    pub signed: bool,
    /// Declared role.
    pub role: VarRole,
    /// Initial value at device reset.
    pub init: u64,
}

/// Declaration of one fixed-length buffer field.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BufDecl {
    /// Field name, e.g. `"fifo"`.
    pub name: String,
    /// Declared length in bytes.
    pub len: usize,
}

/// Order of fields in the structure (determines arena layout).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum FieldRef {
    Var(u32),
    Buf(u32),
}

/// A device control-structure declaration.
///
/// # Examples
///
/// ```
/// use sedspec_dbl::ir::Width;
/// use sedspec_dbl::state::ControlStructure;
///
/// let mut cs = ControlStructure::new("FDCtrl");
/// let msr = cs.register("msr", Width::W8, 0x80);
/// let fifo = cs.buffer("fifo", 512);
/// let data_pos = cs.var("data_pos", Width::W32);
/// let st = cs.instantiate();
/// assert_eq!(st.var(msr), 0x80);
/// assert_eq!(cs.buf_decl(fifo).len, 512);
/// assert_eq!(cs.var_decl(data_pos).name, "data_pos");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ControlStructure {
    /// Structure name, e.g. `"FDCtrl"`.
    pub name: String,
    vars: Vec<VarDecl>,
    bufs: Vec<BufDecl>,
    order: Vec<FieldRef>,
}

impl ControlStructure {
    /// An empty structure named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        ControlStructure {
            name: name.into(),
            vars: Vec::new(),
            bufs: Vec::new(),
            order: Vec::new(),
        }
    }

    /// Appends an unsigned scalar field initialized to 0.
    pub fn var(&mut self, name: impl Into<String>, width: Width) -> VarId {
        self.var_full(name, width, false, VarRole::Scalar, 0)
    }

    /// Appends a signed scalar field initialized to 0.
    pub fn var_signed(&mut self, name: impl Into<String>, width: Width) -> VarId {
        self.var_full(name, width, true, VarRole::Scalar, 0)
    }

    /// Appends a register-mapped field (Rule 1) with an initial value.
    pub fn register(&mut self, name: impl Into<String>, width: Width, init: u64) -> VarId {
        self.var_full(name, width, false, VarRole::Register, init)
    }

    /// Appends a function-pointer field initialized to `init` (a
    /// function id resolved through the program's `fn_table`).
    pub fn fn_ptr(&mut self, name: impl Into<String>, init: u64) -> VarId {
        self.var_full(name, Width::W64, false, VarRole::FnPtr, init)
    }

    /// Appends a fully specified scalar field.
    pub fn var_full(
        &mut self,
        name: impl Into<String>,
        width: Width,
        signed: bool,
        role: VarRole,
        init: u64,
    ) -> VarId {
        let id = VarId(self.vars.len() as u32);
        self.vars.push(VarDecl { name: name.into(), width, signed, role, init });
        self.order.push(FieldRef::Var(id.0));
        id
    }

    /// Appends a fixed-length buffer field.
    pub fn buffer(&mut self, name: impl Into<String>, len: usize) -> BufId {
        let id = BufId(self.bufs.len() as u32);
        self.bufs.push(BufDecl { name: name.into(), len });
        self.order.push(FieldRef::Buf(id.0));
        id
    }

    /// Declaration of scalar `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` was not declared on this structure.
    pub fn var_decl(&self, v: VarId) -> &VarDecl {
        &self.vars[v.0 as usize]
    }

    /// Declaration of buffer `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` was not declared on this structure.
    pub fn buf_decl(&self, b: BufId) -> &BufDecl {
        &self.bufs[b.0 as usize]
    }

    /// All scalar declarations, in id order.
    pub fn vars(&self) -> &[VarDecl] {
        &self.vars
    }

    /// All buffer declarations, in id order.
    pub fn buffers(&self) -> &[BufDecl] {
        &self.bufs
    }

    /// Looks up a scalar by name.
    pub fn var_by_name(&self, name: &str) -> Option<VarId> {
        self.vars.iter().position(|v| v.name == name).map(|i| VarId(i as u32))
    }

    /// Looks up a buffer by name.
    pub fn buf_by_name(&self, name: &str) -> Option<BufId> {
        self.bufs.iter().position(|b| b.name == name).map(|i| BufId(i as u32))
    }

    /// Total arena size in bytes.
    pub fn arena_size(&self) -> usize {
        self.order
            .iter()
            .map(|f| match f {
                FieldRef::Var(i) => self.vars[*i as usize].width.bytes(),
                FieldRef::Buf(i) => self.bufs[*i as usize].len,
            })
            .sum()
    }

    fn offsets(&self) -> (Vec<usize>, Vec<usize>) {
        let mut var_off = vec![0usize; self.vars.len()];
        let mut buf_off = vec![0usize; self.bufs.len()];
        let mut off = 0usize;
        for f in &self.order {
            match f {
                FieldRef::Var(i) => {
                    var_off[*i as usize] = off;
                    off += self.vars[*i as usize].width.bytes();
                }
                FieldRef::Buf(i) => {
                    buf_off[*i as usize] = off;
                    off += self.bufs[*i as usize].len;
                }
            }
        }
        (var_off, buf_off)
    }

    /// Arena byte offset of scalar `v` (C layout: fields in declaration
    /// order, no padding).
    ///
    /// # Panics
    ///
    /// Panics if `v` was not declared on this structure.
    pub fn var_offset(&self, v: VarId) -> usize {
        self.offsets().0[v.0 as usize]
    }

    /// Arena byte offset of buffer `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` was not declared on this structure.
    pub fn buf_offset(&self, b: BufId) -> usize {
        self.offsets().1[b.0 as usize]
    }

    /// The field covering arena byte `off`, as `(name, offset within
    /// the field)`. `None` when `off` is past the arena.
    pub fn field_at(&self, off: usize) -> Option<(&str, usize)> {
        let mut at = 0usize;
        for f in &self.order {
            let (name, len) = match f {
                FieldRef::Var(i) => {
                    let v = &self.vars[*i as usize];
                    (v.name.as_str(), v.width.bytes())
                }
                FieldRef::Buf(i) => {
                    let b = &self.bufs[*i as usize];
                    (b.name.as_str(), b.len)
                }
            };
            if off < at + len {
                return Some((name, off - at));
            }
            at += len;
        }
        None
    }

    /// Creates a reset-state runtime instance.
    pub fn instantiate(&self) -> CsState {
        let (var_off, buf_off) = self.offsets();
        let mut st = CsState {
            arena: vec![0; self.arena_size()],
            var_off,
            buf_off,
            var_meta: self.vars.iter().map(|v| (v.width, v.signed)).collect(),
            buf_len: self.bufs.iter().map(|b| b.len).collect(),
        };
        for (i, v) in self.vars.iter().enumerate() {
            st.set_var(VarId(i as u32), v.init);
        }
        st
    }
}

/// Fault raised by a control-structure access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaOutOfBounds {
    /// Byte offset that was accessed.
    pub offset: i64,
    /// Arena size.
    pub size: usize,
}

impl std::fmt::Display for ArenaOutOfBounds {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "control-structure access at offset {} outside arena of {} bytes",
            self.offset, self.size
        )
    }
}

impl std::error::Error for ArenaOutOfBounds {}

/// Effect classification of a buffer access, for ground-truth oracles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessEffect {
    /// Access stayed within the declared buffer.
    InBounds,
    /// Access landed past the declared buffer but inside the arena —
    /// i.e. it silently corrupted (or read) neighbouring fields, as the
    /// equivalent C code would.
    Spilled,
}

/// Undo journal for speculative writes to a [`CsState`] arena.
///
/// Scalars and buffers share one arena, and buffer spills overwrite
/// scalar bytes — so the journal records *raw byte ranges* in write
/// order and undoes them in strict reverse order. Keeping separate
/// per-field undo lists would restore the wrong bytes whenever a spill
/// and a scalar write overlap.
///
/// The entry vector is reused across rounds ([`CsJournal::clear`] keeps
/// its capacity), so a steady-state walk allocates nothing.
#[derive(Debug, Default)]
pub struct CsJournal {
    entries: Vec<JournalEntry>,
}

/// One journaled write: up to 8 original bytes at `off`.
#[derive(Debug, Clone, Copy)]
struct JournalEntry {
    off: u32,
    len: u8,
    old: u64,
}

impl CsJournal {
    /// An empty journal.
    pub fn new() -> Self {
        CsJournal::default()
    }

    /// Drops all entries, keeping the allocation.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Number of journaled writes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing was journaled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A runtime control-structure instance: the flat byte arena.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CsState {
    arena: Vec<u8>,
    var_off: Vec<usize>,
    buf_off: Vec<usize>,
    var_meta: Vec<(Width, bool)>,
    buf_len: Vec<usize>,
}

impl CsState {
    /// Raw bits of scalar `v`, zero-extended.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range for the owning structure.
    pub fn var(&self, v: VarId) -> u64 {
        let off = self.var_off[v.0 as usize];
        let (w, _) = self.var_meta[v.0 as usize];
        let mut bytes = [0u8; 8];
        bytes[..w.bytes()].copy_from_slice(&self.arena[off..off + w.bytes()]);
        u64::from_le_bytes(bytes)
    }

    /// Scalar `v` as a typed value.
    pub fn var_typed(&self, v: VarId) -> TypedValue {
        let (w, signed) = self.var_meta[v.0 as usize];
        if signed {
            TypedValue::signed(self.var(v), w)
        } else {
            TypedValue::unsigned(self.var(v), w)
        }
    }

    /// Stores the low bits of `val` into scalar `v` (truncating to its width).
    pub fn set_var(&mut self, v: VarId, val: u64) {
        let off = self.var_off[v.0 as usize];
        let (w, _) = self.var_meta[v.0 as usize];
        let bytes = (val & w.mask()).to_le_bytes();
        self.arena[off..off + w.bytes()].copy_from_slice(&bytes[..w.bytes()]);
    }

    /// Declared length of buffer `b`.
    pub fn buf_len(&self, b: BufId) -> usize {
        self.buf_len[b.0 as usize]
    }

    /// Reads byte `idx` of buffer `b` with C layout semantics.
    ///
    /// # Errors
    ///
    /// Returns [`ArenaOutOfBounds`] only if the effective offset leaves
    /// the whole arena; indices past the declared buffer that stay in the
    /// arena read the neighbouring fields and report [`AccessEffect::Spilled`].
    pub fn buf_read(&self, b: BufId, idx: i64) -> Result<(u8, AccessEffect), ArenaOutOfBounds> {
        let base = self.buf_off[b.0 as usize] as i64;
        let off = base + idx;
        if off < 0 || off as usize >= self.arena.len() {
            return Err(ArenaOutOfBounds { offset: off, size: self.arena.len() });
        }
        let effect = if idx >= 0 && (idx as usize) < self.buf_len[b.0 as usize] {
            AccessEffect::InBounds
        } else {
            AccessEffect::Spilled
        };
        Ok((self.arena[off as usize], effect))
    }

    /// Writes byte `idx` of buffer `b` with C layout semantics.
    ///
    /// # Errors
    ///
    /// Returns [`ArenaOutOfBounds`] only if the effective offset leaves
    /// the whole arena; see [`CsState::buf_read`].
    pub fn buf_write(
        &mut self,
        b: BufId,
        idx: i64,
        byte: u8,
    ) -> Result<AccessEffect, ArenaOutOfBounds> {
        let base = self.buf_off[b.0 as usize] as i64;
        let off = base + idx;
        if off < 0 || off as usize >= self.arena.len() {
            return Err(ArenaOutOfBounds { offset: off, size: self.arena.len() });
        }
        let effect = if idx >= 0 && (idx as usize) < self.buf_len[b.0 as usize] {
            AccessEffect::InBounds
        } else {
            AccessEffect::Spilled
        };
        self.arena[off as usize] = byte;
        Ok(effect)
    }

    /// Fills the declared extent of buffer `b` with `byte` (no spill).
    pub fn buf_fill(&mut self, b: BufId, byte: u8) {
        let off = self.buf_off[b.0 as usize];
        let len = self.buf_len[b.0 as usize];
        self.arena[off..off + len].fill(byte);
    }

    /// An in-bounds copy of buffer `b`'s declared extent.
    pub fn buf_bytes(&self, b: BufId) -> Vec<u8> {
        let off = self.buf_off[b.0 as usize];
        let len = self.buf_len[b.0 as usize];
        self.arena[off..off + len].to_vec()
    }

    /// Width and signedness of scalar `v` (the declaration metadata the
    /// instance carries, so callers need not hold the declaring
    /// [`ControlStructure`]).
    pub fn var_meta(&self, v: VarId) -> (Width, bool) {
        self.var_meta[v.0 as usize]
    }

    /// Journals the current bytes of `arena[off..off + len]` in 8-byte
    /// chunks before they are overwritten.
    fn log_range(&self, journal: &mut CsJournal, off: usize, len: usize) {
        let mut at = off;
        let end = off + len;
        while at < end {
            let n = (end - at).min(8);
            let mut old = [0u8; 8];
            old[..n].copy_from_slice(&self.arena[at..at + n]);
            journal.entries.push(JournalEntry {
                off: at as u32,
                len: n as u8,
                old: u64::from_le_bytes(old),
            });
            at += n;
        }
    }

    /// [`CsState::set_var`] with the overwritten bytes journaled.
    pub fn set_var_logged(&mut self, v: VarId, val: u64, journal: &mut CsJournal) {
        let off = self.var_off[v.0 as usize];
        let (w, _) = self.var_meta[v.0 as usize];
        self.log_range(journal, off, w.bytes());
        self.set_var(v, val);
    }

    /// [`CsState::buf_write`] with the overwritten byte journaled.
    ///
    /// # Errors
    ///
    /// Returns [`ArenaOutOfBounds`] exactly when [`CsState::buf_write`]
    /// would; nothing is journaled on error.
    pub fn buf_write_logged(
        &mut self,
        b: BufId,
        idx: i64,
        byte: u8,
        journal: &mut CsJournal,
    ) -> Result<AccessEffect, ArenaOutOfBounds> {
        let base = self.buf_off[b.0 as usize] as i64;
        let off = base + idx;
        if off < 0 || off as usize >= self.arena.len() {
            return Err(ArenaOutOfBounds { offset: off, size: self.arena.len() });
        }
        self.log_range(journal, off as usize, 1);
        self.buf_write(b, idx, byte)
    }

    /// [`CsState::buf_fill`] with the overwritten bytes journaled.
    pub fn buf_fill_logged(&mut self, b: BufId, byte: u8, journal: &mut CsJournal) {
        let off = self.buf_off[b.0 as usize];
        let len = self.buf_len[b.0 as usize];
        self.log_range(journal, off, len);
        self.buf_fill(b, byte);
    }

    /// The net byte changes the journaled writes left in the arena, as
    /// coalesced `(offset, original bytes, current bytes)` ranges.
    ///
    /// The journal is chronological, so the *first* entry covering a
    /// byte holds its pre-round value; bytes a later write restored to
    /// their original value are omitted. Call before [`CsState::undo`]
    /// — afterwards the journal is empty and the diff is too.
    pub fn journal_diff(&self, journal: &CsJournal) -> Vec<(u32, Vec<u8>, Vec<u8>)> {
        let mut original: std::collections::BTreeMap<u32, u8> = std::collections::BTreeMap::new();
        for e in &journal.entries {
            let bytes = e.old.to_le_bytes();
            for (i, &b) in bytes.iter().enumerate().take(e.len as usize) {
                original.entry(e.off + i as u32).or_insert(b);
            }
        }
        let mut out: Vec<(u32, Vec<u8>, Vec<u8>)> = Vec::new();
        for (off, old) in original {
            let new = self.arena[off as usize];
            if new == old {
                continue;
            }
            match out.last_mut() {
                Some((start, olds, news)) if *start + olds.len() as u32 == off => {
                    olds.push(old);
                    news.push(new);
                }
                _ => out.push((off, vec![old], vec![new])),
            }
        }
        out
    }

    /// Rolls back every journaled write in reverse order and clears the
    /// journal. Afterwards the arena is byte-identical to its state
    /// before the first logged write.
    pub fn undo(&mut self, journal: &mut CsJournal) {
        self.undo_to(journal, 0);
    }

    /// Rolls back journaled writes in reverse order down to (but not
    /// including) entry `mark`, truncating the journal to `mark`. With
    /// `mark == 0` this is a full [`CsState::undo`]; batched checking
    /// uses a non-zero watermark to abort one open round while keeping
    /// the batch's already-accepted prefix journaled.
    pub fn undo_to(&mut self, journal: &mut CsJournal, mark: usize) {
        for e in journal.entries[mark..].iter().rev() {
            let off = e.off as usize;
            let n = e.len as usize;
            self.arena[off..off + n].copy_from_slice(&e.old.to_le_bytes()[..n]);
        }
        journal.entries.truncate(mark);
    }

    /// Copies another instance's arena contents into this one without
    /// reallocating (both must come from the same declaration).
    ///
    /// # Panics
    ///
    /// Panics if the arenas differ in size.
    pub fn copy_arena_from(&mut self, other: &CsState) {
        self.arena.copy_from_slice(&other.arena);
    }

    /// Size of the arena in bytes.
    pub fn arena_size(&self) -> usize {
        self.arena.len()
    }

    /// Number of scalar fields.
    pub fn var_count(&self) -> usize {
        self.var_off.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fdc_like() -> (ControlStructure, VarId, BufId, VarId, VarId) {
        // Mirrors the layout relationship the CVEs rely on: a buffer with
        // scalar fields packed right behind it.
        let mut cs = ControlStructure::new("T");
        let msr = cs.register("msr", Width::W8, 0x80);
        let fifo = cs.buffer("fifo", 16);
        let data_pos = cs.var("data_pos", Width::W32);
        let irq = cs.fn_ptr("irq", 0x11);
        (cs, msr, fifo, data_pos, irq)
    }

    #[test]
    fn init_values_applied() {
        let (cs, msr, _, data_pos, irq) = fdc_like();
        let st = cs.instantiate();
        assert_eq!(st.var(msr), 0x80);
        assert_eq!(st.var(data_pos), 0);
        assert_eq!(st.var(irq), 0x11);
    }

    #[test]
    fn var_truncates_to_width() {
        let (cs, msr, ..) = fdc_like();
        let mut st = cs.instantiate();
        st.set_var(msr, 0x1ff);
        assert_eq!(st.var(msr), 0xff);
    }

    #[test]
    fn in_bounds_buffer_access() {
        let (cs, _, fifo, ..) = fdc_like();
        let mut st = cs.instantiate();
        assert_eq!(st.buf_write(fifo, 3, 0xaa).unwrap(), AccessEffect::InBounds);
        assert_eq!(st.buf_read(fifo, 3).unwrap(), (0xaa, AccessEffect::InBounds));
    }

    #[test]
    fn overflow_corrupts_next_field_like_c() {
        let (cs, _, fifo, data_pos, _) = fdc_like();
        let mut st = cs.instantiate();
        // fifo is 16 bytes; index 16 is the first byte of data_pos.
        assert_eq!(st.buf_write(fifo, 16, 0x2a).unwrap(), AccessEffect::Spilled);
        assert_eq!(st.var(data_pos), 0x2a);
    }

    #[test]
    fn overflow_can_overwrite_fn_ptr() {
        let (cs, _, fifo, _, irq) = fdc_like();
        let mut st = cs.instantiate();
        // data_pos occupies bytes 16..20 after the fifo; irq starts at 20.
        for (i, b) in 0xdead_beefu64.to_le_bytes().iter().enumerate() {
            st.buf_write(fifo, 20 + i as i64, *b).unwrap();
        }
        assert_eq!(st.var(irq), 0xdead_beef);
    }

    #[test]
    fn access_outside_arena_faults() {
        let (cs, _, fifo, ..) = fdc_like();
        let mut st = cs.instantiate();
        let far = st.arena_size() as i64; // relative to fifo base +1 offset inside
        assert!(st.buf_write(fifo, far, 0).is_err());
        assert!(st.buf_read(fifo, -2).is_err());
    }

    #[test]
    fn negative_index_spills_backwards() {
        let (cs, msr, fifo, ..) = fdc_like();
        let mut st = cs.instantiate();
        // fifo base is 1 (behind the 1-byte msr); index -1 hits msr.
        assert_eq!(st.buf_write(fifo, -1, 0x07).unwrap(), AccessEffect::Spilled);
        assert_eq!(st.var(msr), 0x07);
    }

    #[test]
    fn fill_respects_declared_extent() {
        let (cs, _, fifo, data_pos, _) = fdc_like();
        let mut st = cs.instantiate();
        st.set_var(data_pos, 0x1234);
        st.buf_fill(fifo, 0xee);
        assert!(st.buf_bytes(fifo).iter().all(|&b| b == 0xee));
        assert_eq!(st.var(data_pos), 0x1234); // untouched
    }

    #[test]
    fn typed_reads_respect_signedness() {
        let mut cs = ControlStructure::new("S");
        let s = cs.var_signed("idx", Width::W16);
        let mut st = cs.instantiate();
        st.set_var(s, 0xffff);
        assert_eq!(st.var_typed(s).as_i128(), -1);
    }

    #[test]
    fn journal_undo_restores_exactly() {
        let (cs, msr, fifo, data_pos, irq) = fdc_like();
        let mut st = cs.instantiate();
        st.set_var(data_pos, 0x1234);
        let before = st.clone();
        let mut j = CsJournal::new();
        st.set_var_logged(msr, 0x55, &mut j);
        st.buf_write_logged(fifo, 2, 0xaa, &mut j).unwrap();
        st.buf_fill_logged(fifo, 0xee, &mut j);
        st.set_var_logged(irq, 0xdeadbeef, &mut j);
        assert_ne!(st, before);
        st.undo(&mut j);
        assert_eq!(st, before);
        assert!(j.is_empty());
    }

    #[test]
    fn journal_undo_handles_aliased_spill_then_var_write() {
        // A buf spill corrupts data_pos, then a logged var write hits the
        // same bytes: only strict reverse-chronological undo restores the
        // original value.
        let (cs, _, fifo, data_pos, _) = fdc_like();
        let mut st = cs.instantiate();
        st.set_var(data_pos, 0x0102_0304);
        let before = st.clone();
        let mut j = CsJournal::new();
        st.buf_write_logged(fifo, 16, 0x2a, &mut j).unwrap(); // spills into data_pos
        st.set_var_logged(data_pos, 0x5555_5555, &mut j);
        st.undo(&mut j);
        assert_eq!(st, before);
        assert_eq!(st.var(data_pos), 0x0102_0304);
    }

    #[test]
    fn journal_out_of_arena_write_logs_nothing() {
        let (cs, _, fifo, ..) = fdc_like();
        let mut st = cs.instantiate();
        let mut j = CsJournal::new();
        assert!(st.buf_write_logged(fifo, st.arena_size() as i64, 0, &mut j).is_err());
        assert!(j.is_empty());
    }

    #[test]
    fn copy_arena_from_matches_clone() {
        let (cs, msr, fifo, ..) = fdc_like();
        let mut a = cs.instantiate();
        let mut b = cs.instantiate();
        a.set_var(msr, 0x7f);
        a.buf_write(fifo, 3, 0x99).unwrap();
        b.copy_arena_from(&a);
        assert_eq!(a, b);
    }

    #[test]
    fn var_meta_exposes_declaration() {
        let mut cs = ControlStructure::new("S");
        let s = cs.var_signed("idx", Width::W16);
        let st = cs.instantiate();
        assert_eq!(st.var_meta(s), (Width::W16, true));
    }

    #[test]
    fn field_at_walks_declaration_order() {
        let (cs, ..) = fdc_like();
        // Layout: msr @0 (1 byte), fifo @1..17, data_pos @17..21, irq @21..29.
        assert_eq!(cs.field_at(0), Some(("msr", 0)));
        assert_eq!(cs.field_at(1), Some(("fifo", 0)));
        assert_eq!(cs.field_at(16), Some(("fifo", 15)));
        assert_eq!(cs.field_at(17), Some(("data_pos", 0)));
        assert_eq!(cs.field_at(21), Some(("irq", 0)));
        assert_eq!(cs.field_at(cs.arena_size()), None);
    }

    #[test]
    fn journal_diff_reports_net_changes_only() {
        let (cs, msr, fifo, data_pos, _) = fdc_like();
        let mut st = cs.instantiate();
        st.set_var(data_pos, 0x0102_0304);
        let mut j = CsJournal::new();
        // msr written then restored to its original value: not in the diff.
        st.set_var_logged(msr, 0x55, &mut j);
        st.set_var_logged(msr, 0x80, &mut j);
        // A spill into data_pos, then a var write over the same bytes:
        // diff must compare against the *pre-round* bytes.
        st.buf_write_logged(fifo, 16, 0x2a, &mut j).unwrap();
        st.set_var_logged(data_pos, 0x0102_99aa, &mut j);
        let diff = st.journal_diff(&j);
        assert_eq!(diff.len(), 1);
        let (off, old, new) = &diff[0];
        assert_eq!(*off, 17);
        assert_eq!(old, &vec![0x04, 0x03]);
        assert_eq!(new, &vec![0xaa, 0x99]);
        // After undo the journal is empty and so is the diff.
        st.undo(&mut j);
        assert!(st.journal_diff(&j).is_empty());
    }

    #[test]
    fn name_lookup() {
        let (cs, msr, fifo, ..) = fdc_like();
        assert_eq!(cs.var_by_name("msr"), Some(msr));
        assert_eq!(cs.buf_by_name("fifo"), Some(fifo));
        assert_eq!(cs.var_by_name("nope"), None);
    }
}
