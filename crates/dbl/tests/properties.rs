//! Property-based tests for the DBL value model and control-structure
//! arena — the foundations everything above depends on.

use proptest::prelude::*;
use sedspec_dbl::ir::{BinOp, UnOp, Width};
use sedspec_dbl::state::{AccessEffect, ControlStructure};
use sedspec_dbl::value::{apply_binop, apply_unop, OverflowKind, TypedValue};

fn widths() -> impl Strategy<Value = Width> {
    prop_oneof![Just(Width::W8), Just(Width::W16), Just(Width::W32), Just(Width::W64)]
}

fn typed_values() -> impl Strategy<Value = TypedValue> {
    (any::<u64>(), widths(), any::<bool>()).prop_map(|(bits, w, signed)| {
        if signed {
            TypedValue::signed(bits, w)
        } else {
            TypedValue::unsigned(bits, w)
        }
    })
}

proptest! {
    /// Wrapping addition/subtraction/multiplication agree with exact
    /// i128 arithmetic reduced to the result width, and the overflow
    /// flag is set exactly when the exact result does not fit.
    #[test]
    fn arithmetic_matches_i128_semantics(a in typed_values(), b in typed_values(),
                                         op in prop_oneof![Just(BinOp::Add), Just(BinOp::Sub), Just(BinOp::Mul)]) {
        let (v, of) = apply_binop(op, a, b).unwrap();
        let exact: Option<i128> = match op {
            BinOp::Add => a.as_i128().checked_add(b.as_i128()),
            BinOp::Sub => a.as_i128().checked_sub(b.as_i128()),
            BinOp::Mul => a.as_i128().checked_mul(b.as_i128()),
            _ => unreachable!(),
        };
        match exact {
            None => prop_assert_eq!(of, OverflowKind::Arithmetic),
            Some(exact) => {
                prop_assert_eq!(of == OverflowKind::None, v.as_i128() == exact,
                    "value {:?} exact {}", v, exact);
                // The stored bits always equal the exact result mod 2^width.
                if v.width != Width::W64 {
                    let m = v.width.mask() as i128 + 1;
                    prop_assert_eq!(v.bits as i128, exact.rem_euclid(m));
                } else {
                    prop_assert_eq!(v.bits, exact as u64);
                }
            }
        }
    }

    /// Comparisons agree with the mathematical order of the signed
    /// interpretations.
    #[test]
    fn comparisons_are_consistent(a in typed_values(), b in typed_values()) {
        let lt = apply_binop(BinOp::Lt, a, b).unwrap().0.is_true();
        let gt = apply_binop(BinOp::Gt, a, b).unwrap().0.is_true();
        let eq = apply_binop(BinOp::Eq, a, b).unwrap().0.is_true();
        let ne = apply_binop(BinOp::Ne, a, b).unwrap().0.is_true();
        let le = apply_binop(BinOp::Le, a, b).unwrap().0.is_true();
        let ge = apply_binop(BinOp::Ge, a, b).unwrap().0.is_true();
        prop_assert_eq!(lt, a.as_i128() < b.as_i128());
        prop_assert_eq!(eq, a.as_i128() == b.as_i128());
        prop_assert_eq!(ne, !eq);
        prop_assert_eq!(le, lt || eq);
        prop_assert_eq!(ge, gt || eq);
        prop_assert!(!(lt && gt));
    }

    /// Bitwise operators never report overflow and respect involution /
    /// identity laws.
    #[test]
    fn bitwise_laws(a in typed_values(), b in typed_values()) {
        let (and, of1) = apply_binop(BinOp::And, a, b).unwrap();
        let (or, of2) = apply_binop(BinOp::Or, a, b).unwrap();
        let (xor, of3) = apply_binop(BinOp::Xor, a, b).unwrap();
        prop_assert_eq!(of1, OverflowKind::None);
        prop_assert_eq!(of2, OverflowKind::None);
        prop_assert_eq!(of3, OverflowKind::None);
        // xor ^ b == a (restricted to the result width).
        let (back, _) = apply_binop(BinOp::Xor, xor, TypedValue::unsigned(b.bits, xor.width)).unwrap();
        prop_assert_eq!(back.bits, a.bits & xor.width.mask());
        prop_assert_eq!(and.bits | or.bits, or.bits);
        // Double complement is the identity at the value's width.
        let nn = apply_unop(UnOp::Not, apply_unop(UnOp::Not, a));
        prop_assert_eq!(nn.bits, a.bits);
    }

    /// Division and remainder satisfy the Euclidean identity whenever
    /// they are defined, and only b == 0 is an error.
    #[test]
    fn div_rem_identity(a in typed_values(), b in typed_values()) {
        let div = apply_binop(BinOp::Div, a, b);
        let rem = apply_binop(BinOp::Rem, a, b);
        if b.as_i128() == 0 {
            prop_assert!(div.is_err() && rem.is_err());
        } else {
            let (q, _) = div.unwrap();
            let (r, _) = rem.unwrap();
            // q * b + r == a, computed exactly (q/r are in-range by
            // construction except i128::MIN-style edge wraps, which the
            // width reduction handles before we get here).
            prop_assert_eq!(q.as_i128() * b.as_i128() + r.as_i128(), a.as_i128());
        }
    }

    /// Conversion reports truncation exactly when the mathematical value
    /// changes, and converting to the same type is the identity.
    #[test]
    fn conversion_roundtrip(v in typed_values(), w in widths(), signed in any::<bool>()) {
        let (c, truncated) = v.convert(w, signed);
        prop_assert_eq!(truncated, c.as_i128() != v.as_i128());
        let (same, kept) = v.convert(v.width, v.signed);
        prop_assert!(!kept);
        prop_assert_eq!(same.bits, v.bits);
        // Widening an unsigned value never truncates.
        if !v.signed && w.bits() >= v.width.bits() && !signed {
            let (wide, t) = v.convert(w, false);
            prop_assert!(!t);
            prop_assert_eq!(wide.as_i128(), v.as_i128());
        }
        let _ = c;
    }

    /// Left shifts equal multiplication by a power of two when exact.
    #[test]
    fn shl_is_scaling(a in typed_values(), sh in 0u64..16) {
        let (v, _) = apply_binop(BinOp::Shl, a, TypedValue::u64(sh)).unwrap();
        prop_assert_eq!(v.bits, a.bits.wrapping_shl(sh as u32) & v.width.mask());
    }
}

// ------------------------- control-structure arena -------------------

proptest! {
    /// Scalar fields round-trip through the arena at their width.
    #[test]
    fn var_roundtrip(vals in proptest::collection::vec((any::<u64>(), widths()), 1..12)) {
        let mut cs = ControlStructure::new("P");
        let ids: Vec<_> = vals
            .iter()
            .enumerate()
            .map(|(i, &(_, w))| cs.var(format!("v{i}"), w))
            .collect();
        let mut st = cs.instantiate();
        for (&(val, w), &id) in vals.iter().zip(&ids) {
            st.set_var(id, val);
            prop_assert_eq!(st.var(id), val & w.mask());
        }
        // Writing one field never disturbs the others.
        for (&(val, w), &id) in vals.iter().zip(&ids) {
            prop_assert_eq!(st.var(id), val & w.mask(), "field {:?} clobbered", id);
        }
    }

    /// In-bounds buffer accesses round-trip and report `InBounds`;
    /// past-the-end accesses within the arena report `Spilled` and land
    /// exactly on the following field's bytes.
    #[test]
    fn buffer_spill_lands_on_next_field(len in 1usize..64, idx in 0i64..96, byte in any::<u8>()) {
        let mut cs = ControlStructure::new("P");
        let buf = cs.buffer("buf", len);
        let tail = cs.var("tail", Width::W64);
        let mut st = cs.instantiate();
        let arena = st.arena_size() as i64;
        let r = st.buf_write(buf, idx, byte);
        if idx < arena {
            let effect = r.unwrap();
            if (idx as usize) < len {
                prop_assert_eq!(effect, AccessEffect::InBounds);
                prop_assert_eq!(st.buf_read(buf, idx).unwrap().0, byte);
                prop_assert_eq!(st.var(tail), 0);
            } else {
                prop_assert_eq!(effect, AccessEffect::Spilled);
                let lane = (idx as usize - len) as u32;
                prop_assert_eq!(st.var(tail), u64::from(byte) << (8 * lane));
            }
        } else {
            prop_assert!(r.is_err());
        }
    }

    /// `instantiate` always applies declared initial values, and
    /// `buf_fill` touches exactly the declared extent.
    #[test]
    fn init_and_fill(init in any::<u64>(), len in 1usize..48, fill in any::<u8>()) {
        let mut cs = ControlStructure::new("P");
        let head = cs.var_full("head", Width::W32, false, sedspec_dbl::state::VarRole::Register, init);
        let buf = cs.buffer("buf", len);
        let tail = cs.var_full("tail", Width::W32, false, sedspec_dbl::state::VarRole::Scalar, init);
        let mut st = cs.instantiate();
        prop_assert_eq!(st.var(head), init & Width::W32.mask());
        st.buf_fill(buf, fill);
        prop_assert!(st.buf_bytes(buf).iter().all(|&b| b == fill));
        prop_assert_eq!(st.var(head), init & Width::W32.mask());
        prop_assert_eq!(st.var(tail), init & Width::W32.mask());
    }
}
