//! Property-based tests for the VM substrate.

use proptest::prelude::*;
use sedspec_vmm::{AddressSpace, Bus, DiskBackend, DmaEngine, GuestMemory, IoRequest, SECTOR_SIZE};

proptest! {
    /// Guest memory round-trips arbitrary byte strings at arbitrary
    /// in-bounds offsets and never touches neighbouring bytes.
    #[test]
    fn memory_roundtrip_is_isolated(size in 64usize..512,
                                    addr in 0usize..448,
                                    data in proptest::collection::vec(any::<u8>(), 1..64)) {
        let mut mem = GuestMemory::new(size);
        let fits = addr + data.len() <= size;
        let before = mem.read_vec(0, size).unwrap();
        let r = mem.write_bytes(addr as u64, &data);
        prop_assert_eq!(r.is_ok(), fits);
        let after = mem.read_vec(0, size).unwrap();
        if fits {
            prop_assert_eq!(&after[addr..addr + data.len()], &data[..]);
            prop_assert_eq!(&after[..addr], &before[..addr]);
            prop_assert_eq!(&after[addr + data.len()..], &before[addr + data.len()..]);
        } else {
            prop_assert_eq!(after, before, "failed writes must not partially apply");
        }
    }

    /// Multi-width accessors agree with the byte-level view (little endian).
    #[test]
    fn width_accessors_are_little_endian(v in any::<u64>(), width in prop_oneof![Just(1usize), Just(2), Just(4), Just(8)]) {
        let mut mem = GuestMemory::new(16);
        mem.write_uint(4, width, v).unwrap();
        let bytes = mem.read_vec(4, width).unwrap();
        for (i, b) in bytes.iter().enumerate() {
            prop_assert_eq!(*b, (v >> (8 * i)) as u8);
        }
        let mask = if width == 8 { u64::MAX } else { (1u64 << (8 * width)) - 1 };
        prop_assert_eq!(mem.read_uint(4, width).unwrap(), v & mask);
    }

    /// Gather inverts scatter for any scatter-gather geometry that fits.
    #[test]
    fn gather_inverts_scatter(chunks in proptest::collection::vec((0u64..96, 1usize..24), 1..6),
                              payload in proptest::collection::vec(any::<u8>(), 0..64)) {
        // Lay the chunks out disjointly by offsetting each one.
        let mut sg = Vec::new();
        let mut base = 0u64;
        for &(gap, len) in &chunks {
            base += gap % 16;
            sg.push((base, len));
            base += len as u64;
        }
        let total: usize = sg.iter().map(|&(_, l)| l).sum();
        let mut mem = GuestMemory::new((base + 64) as usize);
        let mut dma = DmaEngine::new(&mut mem);
        let n = dma.scatter(&sg, &payload).unwrap();
        prop_assert_eq!(n, payload.len().min(total));
        let gathered = dma.gather(&sg).unwrap();
        prop_assert_eq!(&gathered[..n], &payload[..n]);
    }

    /// Disk sectors round-trip with zero padding and never leak between
    /// sectors.
    #[test]
    fn disk_sectors_are_isolated(sector in 0u64..8, data in proptest::collection::vec(any::<u8>(), 0..600)) {
        let mut disk = DiskBackend::new(8);
        disk.write_sector(sector, &data).unwrap();
        let back = disk.read_sector(sector).unwrap();
        let n = data.len().min(SECTOR_SIZE);
        prop_assert_eq!(&back[..n], &data[..n]);
        prop_assert!(back[n..].iter().all(|&b| b == 0));
        // Other sectors untouched.
        let other = (sector + 1) % 8;
        prop_assert!(disk.read_sector(other).unwrap().iter().all(|&b| b == 0));
    }

    /// The bus routes every address to at most one region, and exactly
    /// to the region containing it.
    #[test]
    fn bus_routing_is_unambiguous(r1 in (0u64..160, 1u64..40), r2 in (200u64..400, 1u64..40), probe in 0u64..500) {
        let mut bus = Bus::new();
        let a = bus.register(AddressSpace::Pmio, r1.0, r1.1, "a").unwrap();
        let b = bus.register(AddressSpace::Pmio, r2.0, r2.1, "b").unwrap();
        let hit = bus.route(&IoRequest::read(AddressSpace::Pmio, probe, 1)).ok();
        let in_a = probe >= r1.0 && probe < r1.0 + r1.1;
        let in_b = probe >= r2.0 && probe < r2.0 + r2.1;
        match (in_a, in_b) {
            (true, _) => prop_assert_eq!(hit, Some(a)),
            (false, true) => prop_assert_eq!(hit, Some(b)),
            (false, false) => prop_assert_eq!(hit, None),
        }
    }
}
