use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crate::VmmError;

/// A level-triggered interrupt line shared between a device and the VM.
///
/// Lines are cheaply cloneable handles onto shared state so a device
/// model can hold one end while the test harness observes the other —
/// the same split QEMU's `qemu_irq` provides.
///
/// # Examples
///
/// ```
/// use sedspec_vmm::IrqLine;
///
/// let line = IrqLine::new(6);
/// let dev_end = line.clone();
/// dev_end.raise();
/// assert!(line.is_raised());
/// assert_eq!(line.raise_count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct IrqLine {
    inner: Arc<IrqInner>,
}

#[derive(Debug)]
struct IrqInner {
    number: usize,
    level: AtomicBool,
    raises: AtomicU64,
    lowers: AtomicU64,
}

impl IrqLine {
    /// Creates a standalone line with the given line number, initially low.
    pub fn new(number: usize) -> Self {
        IrqLine {
            inner: Arc::new(IrqInner {
                number,
                level: AtomicBool::new(false),
                raises: AtomicU64::new(0),
                lowers: AtomicU64::new(0),
            }),
        }
    }

    /// The line's interrupt number.
    pub fn number(&self) -> usize {
        self.inner.number
    }

    /// Asserts the line.
    pub fn raise(&self) {
        self.inner.level.store(true, Ordering::SeqCst);
        self.inner.raises.fetch_add(1, Ordering::SeqCst);
    }

    /// Deasserts the line.
    pub fn lower(&self) {
        self.inner.level.store(false, Ordering::SeqCst);
        self.inner.lowers.fetch_add(1, Ordering::SeqCst);
    }

    /// Sets the line level explicitly (QEMU's `qemu_set_irq`).
    pub fn set(&self, level: bool) {
        if level {
            self.raise();
        } else {
            self.lower();
        }
    }

    /// Whether the line is currently asserted.
    pub fn is_raised(&self) -> bool {
        self.inner.level.load(Ordering::SeqCst)
    }

    /// Total number of raise events since creation.
    pub fn raise_count(&self) -> u64 {
        self.inner.raises.load(Ordering::SeqCst)
    }

    /// Total number of lower events since creation.
    pub fn lower_count(&self) -> u64 {
        self.inner.lowers.load(Ordering::SeqCst)
    }
}

/// A bank of interrupt lines.
///
/// # Examples
///
/// ```
/// use sedspec_vmm::InterruptController;
///
/// let pic = InterruptController::new(16);
/// pic.line(11).raise();
/// assert_eq!(pic.pending(), vec![11]);
/// ```
#[derive(Debug)]
pub struct InterruptController {
    lines: Vec<IrqLine>,
}

impl InterruptController {
    /// Creates a controller with `lines` lines, all low.
    pub fn new(lines: usize) -> Self {
        InterruptController { lines: (0..lines).map(IrqLine::new).collect() }
    }

    /// Number of lines.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Whether the controller has no lines.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Handle on line `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range; use [`InterruptController::try_line`]
    /// for a fallible variant.
    pub fn line(&self, n: usize) -> IrqLine {
        self.lines[n].clone()
    }

    /// Fallible handle on line `n`.
    ///
    /// # Errors
    ///
    /// Returns [`VmmError::BadIrqLine`] if `n` is out of range.
    pub fn try_line(&self, n: usize) -> Result<IrqLine, VmmError> {
        self.lines.get(n).cloned().ok_or(VmmError::BadIrqLine { line: n, lines: self.lines.len() })
    }

    /// Indices of currently asserted lines, ascending.
    pub fn pending(&self) -> Vec<usize> {
        self.lines.iter().enumerate().filter(|(_, l)| l.is_raised()).map(|(i, _)| i).collect()
    }

    /// Deasserts every line.
    pub fn clear_all(&self) {
        for l in &self.lines {
            l.lower();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raise_lower_counts() {
        let l = IrqLine::new(0);
        l.raise();
        l.raise();
        l.lower();
        assert!(!l.is_raised());
        assert_eq!(l.raise_count(), 2);
        assert_eq!(l.lower_count(), 1);
    }

    #[test]
    fn set_matches_raise_lower() {
        let l = IrqLine::new(0);
        l.set(true);
        assert!(l.is_raised());
        l.set(false);
        assert!(!l.is_raised());
    }

    #[test]
    fn clones_share_state() {
        let a = IrqLine::new(5);
        let b = a.clone();
        b.raise();
        assert!(a.is_raised());
        assert_eq!(a.number(), 5);
    }

    #[test]
    fn controller_pending_and_clear() {
        let pic = InterruptController::new(4);
        pic.line(1).raise();
        pic.line(3).raise();
        assert_eq!(pic.pending(), vec![1, 3]);
        pic.clear_all();
        assert!(pic.pending().is_empty());
    }

    #[test]
    fn bad_line_is_error() {
        let pic = InterruptController::new(2);
        assert!(pic.try_line(1).is_ok());
        assert!(matches!(pic.try_line(2), Err(VmmError::BadIrqLine { .. })));
    }
}
