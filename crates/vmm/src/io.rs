use serde::{Deserialize, Serialize};

/// Which address space an I/O request targets.
///
/// The paper's threat surface is the guest-visible interface of an
/// emulated device: port-mapped I/O, memory-mapped I/O and DMA. DMA is
/// modelled separately ([`crate::DmaEngine`]); requests arriving *at*
/// the device are PMIO or MMIO, plus a network-frame delivery pseudo
/// space for NIC receive paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AddressSpace {
    /// x86 port-mapped I/O (`in`/`out` instructions).
    Pmio,
    /// Memory-mapped I/O.
    Mmio,
    /// A network frame handed to the device's receive path. The request
    /// `addr` is unused and the frame bytes travel in
    /// [`IoRequest::payload`].
    NetFrame,
}

/// Direction of an I/O request, from the guest's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IoDirection {
    /// The guest reads from the device.
    Read,
    /// The guest writes to the device.
    Write,
}

/// A single guest I/O interaction with an emulated device.
///
/// This is the unit the paper calls an "I/O interaction round": SEDSpec's
/// ES-Checker simulates the execution specification under one
/// `IoRequest` before the real device is allowed to service it.
///
/// # Examples
///
/// ```
/// use sedspec_vmm::{AddressSpace, IoDirection, IoRequest};
///
/// // Guest writes the READ-ID command byte to the FDC data port.
/// let req = IoRequest::write(AddressSpace::Pmio, 0x3f5, 1, 0x4a);
/// assert_eq!(req.direction, IoDirection::Write);
/// assert_eq!(req.data, 0x4a);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoRequest {
    /// Targeted address space.
    pub space: AddressSpace,
    /// Port number (PMIO) or guest physical address (MMIO).
    pub addr: u64,
    /// Access width in bytes (1, 2, 4 or 8). Ignored for [`AddressSpace::NetFrame`].
    pub size: u8,
    /// Direction of the access.
    pub direction: IoDirection,
    /// Value written by the guest (for writes); 0 for reads.
    pub data: u64,
    /// Frame payload for [`AddressSpace::NetFrame`] deliveries, empty otherwise.
    pub payload: Vec<u8>,
}

impl IoRequest {
    /// A guest read of `size` bytes at `addr`.
    pub fn read(space: AddressSpace, addr: u64, size: u8) -> Self {
        IoRequest { space, addr, size, direction: IoDirection::Read, data: 0, payload: Vec::new() }
    }

    /// A guest write of `data` (`size` bytes wide) at `addr`.
    pub fn write(space: AddressSpace, addr: u64, size: u8, data: u64) -> Self {
        IoRequest { space, addr, size, direction: IoDirection::Write, data, payload: Vec::new() }
    }

    /// A network frame delivered to the device's receive path.
    pub fn net_frame(payload: Vec<u8>) -> Self {
        IoRequest {
            space: AddressSpace::NetFrame,
            addr: 0,
            size: 0,
            direction: IoDirection::Write,
            data: 0,
            payload,
        }
    }

    /// Whether this is a guest write (or frame delivery).
    pub fn is_write(&self) -> bool {
        self.direction == IoDirection::Write
    }

    /// Whether this is a guest read.
    pub fn is_read(&self) -> bool {
        self.direction == IoDirection::Read
    }

    /// Byte `idx` of the frame payload, or 0 if out of range.
    ///
    /// NIC receive handlers index the frame body; reading past the end
    /// yields zero just as QEMU's zero-padded receive buffers do.
    pub fn payload_byte(&self, idx: usize) -> u8 {
        self.payload.get(idx).copied().unwrap_or(0)
    }
}

/// Outcome of one serviced I/O request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct IoResult {
    /// Value returned to the guest for reads; 0 for writes.
    pub value: u64,
    /// Virtual nanoseconds the device spent servicing the request.
    pub elapsed_ns: u64,
}

impl IoResult {
    /// A result carrying `value` with no accounted service time.
    pub fn value(value: u64) -> Self {
        IoResult { value, elapsed_ns: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_direction() {
        assert!(IoRequest::read(AddressSpace::Mmio, 0x100, 4).is_read());
        assert!(IoRequest::write(AddressSpace::Pmio, 0x3f5, 1, 9).is_write());
        assert!(IoRequest::net_frame(vec![1, 2, 3]).is_write());
    }

    #[test]
    fn payload_byte_is_zero_padded() {
        let req = IoRequest::net_frame(vec![0xaa, 0xbb]);
        assert_eq!(req.payload_byte(0), 0xaa);
        assert_eq!(req.payload_byte(1), 0xbb);
        assert_eq!(req.payload_byte(2), 0);
        assert_eq!(req.payload_byte(10_000), 0);
    }

    #[test]
    fn serde_round_trip() {
        let req = IoRequest::write(AddressSpace::Pmio, 0x3f5, 1, 0x4a);
        let json = serde_json::to_string(&req).unwrap();
        let back: IoRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(req, back);
    }
}
