/// A deterministic virtual clock counting nanoseconds.
///
/// Device models charge virtual time for the work they do (sector
/// transfers, frame DMA, checker walks). Benchmarks in `sedspec-bench`
/// read the clock to compute throughput and latency figures that are
/// reproducible run to run — the property the paper gets from measuring
/// on idle hardware.
///
/// # Examples
///
/// ```
/// use sedspec_vmm::VirtualClock;
///
/// let mut clock = VirtualClock::new();
/// clock.advance_ns(1_500);
/// assert_eq!(clock.now_ns(), 1_500);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VirtualClock {
    now_ns: u64,
}

impl VirtualClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        VirtualClock { now_ns: 0 }
    }

    /// Current virtual time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// Advances the clock by `ns` nanoseconds, saturating at `u64::MAX`.
    pub fn advance_ns(&mut self, ns: u64) {
        self.now_ns = self.now_ns.saturating_add(ns);
    }

    /// Runs `f` and returns its result together with the virtual time it
    /// charged to the clock.
    pub fn measure<T>(&mut self, f: impl FnOnce(&mut VirtualClock) -> T) -> (T, u64) {
        let start = self.now_ns;
        let out = f(self);
        (out, self.now_ns - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_monotonically() {
        let mut c = VirtualClock::new();
        c.advance_ns(10);
        c.advance_ns(5);
        assert_eq!(c.now_ns(), 15);
    }

    #[test]
    fn saturates_instead_of_wrapping() {
        let mut c = VirtualClock::new();
        c.advance_ns(u64::MAX);
        c.advance_ns(100);
        assert_eq!(c.now_ns(), u64::MAX);
    }

    #[test]
    fn measure_reports_elapsed() {
        let mut c = VirtualClock::new();
        c.advance_ns(7);
        let (v, dt) = c.measure(|c| {
            c.advance_ns(42);
            "done"
        });
        assert_eq!(v, "done");
        assert_eq!(dt, 42);
        assert_eq!(c.now_ns(), 49);
    }
}
