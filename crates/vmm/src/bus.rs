use crate::{AddressSpace, IoRequest, VmmError};

/// Identifier of a registered bus region, returned by [`Bus::register`].
///
/// The identifier doubles as the routing key: dispatching a request
/// yields the `RegionId` of the claiming region, and the VM driver maps
/// it to the owning device model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(pub u32);

/// One claimed address range on the bus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BusRegion {
    /// Region identifier.
    pub id: RegionId,
    /// Address space the region lives in.
    pub space: AddressSpace,
    /// First address of the region.
    pub base: u64,
    /// Length in bytes (ports count as bytes for PMIO).
    pub len: u64,
    /// Human-readable owner tag, e.g. `"fdc"`.
    pub tag: String,
}

impl BusRegion {
    /// Whether `addr` falls inside this region.
    pub fn contains(&self, space: AddressSpace, addr: u64) -> bool {
        self.space == space && addr >= self.base && addr - self.base < self.len
    }
}

/// Routes guest I/O requests to registered device regions.
///
/// This mirrors QEMU's `MemoryRegion`/`PortioList` registration: each
/// device claims PMIO port ranges and/or MMIO windows at realize time,
/// and the machine dispatches guest accesses by address.
///
/// # Examples
///
/// ```
/// use sedspec_vmm::{AddressSpace, Bus, IoRequest};
///
/// let mut bus = Bus::new();
/// let fdc = bus.register(AddressSpace::Pmio, 0x3f0, 8, "fdc")?;
/// let req = IoRequest::write(AddressSpace::Pmio, 0x3f5, 1, 0x4a);
/// assert_eq!(bus.route(&req)?, fdc);
/// # Ok::<(), sedspec_vmm::VmmError>(())
/// ```
#[derive(Debug, Default)]
pub struct Bus {
    regions: Vec<BusRegion>,
    next_id: u32,
}

impl Bus {
    /// An empty bus.
    pub fn new() -> Self {
        Bus::default()
    }

    /// Claims `[base, base+len)` in `space` for a device tagged `tag`.
    ///
    /// # Errors
    ///
    /// Returns [`VmmError::RegionOverlap`] if the range intersects an
    /// existing region in the same address space.
    pub fn register(
        &mut self,
        space: AddressSpace,
        base: u64,
        len: u64,
        tag: impl Into<String>,
    ) -> Result<RegionId, VmmError> {
        let end = base.checked_add(len).ok_or(VmmError::RegionOverlap { base, len })?;
        for r in &self.regions {
            if r.space == space && base < r.base + r.len && r.base < end {
                return Err(VmmError::RegionOverlap { base, len });
            }
        }
        let id = RegionId(self.next_id);
        self.next_id += 1;
        self.regions.push(BusRegion { id, space, base, len, tag: tag.into() });
        Ok(id)
    }

    /// Finds the region claiming `req`'s address.
    ///
    /// [`AddressSpace::NetFrame`] requests route to the (single) region
    /// registered in that pseudo space regardless of address.
    ///
    /// # Errors
    ///
    /// Returns [`VmmError::UnmappedIo`] if no region claims the address.
    pub fn route(&self, req: &IoRequest) -> Result<RegionId, VmmError> {
        if req.space == AddressSpace::NetFrame {
            return self
                .regions
                .iter()
                .find(|r| r.space == AddressSpace::NetFrame)
                .map(|r| r.id)
                .ok_or(VmmError::UnmappedIo { addr: req.addr });
        }
        self.regions
            .iter()
            .find(|r| r.contains(req.space, req.addr))
            .map(|r| r.id)
            .ok_or(VmmError::UnmappedIo { addr: req.addr })
    }

    /// The region registered under `id`, if any.
    pub fn region(&self, id: RegionId) -> Option<&BusRegion> {
        self.regions.iter().find(|r| r.id == id)
    }

    /// All regions, in registration order.
    pub fn regions(&self) -> &[BusRegion] {
        &self.regions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_by_address() {
        let mut bus = Bus::new();
        let a = bus.register(AddressSpace::Pmio, 0x3f0, 8, "fdc").unwrap();
        let b = bus.register(AddressSpace::Mmio, 0x1000, 0x100, "sdhci").unwrap();
        assert_eq!(bus.route(&IoRequest::read(AddressSpace::Pmio, 0x3f7, 1)).unwrap(), a);
        assert_eq!(bus.route(&IoRequest::read(AddressSpace::Mmio, 0x10ff, 1)).unwrap(), b);
        assert!(bus.route(&IoRequest::read(AddressSpace::Pmio, 0x3f8, 1)).is_err());
    }

    #[test]
    fn same_range_in_different_spaces_is_fine() {
        let mut bus = Bus::new();
        bus.register(AddressSpace::Pmio, 0x100, 8, "a").unwrap();
        assert!(bus.register(AddressSpace::Mmio, 0x100, 8, "b").is_ok());
    }

    #[test]
    fn rejects_overlap() {
        let mut bus = Bus::new();
        bus.register(AddressSpace::Pmio, 0x100, 0x10, "a").unwrap();
        assert!(matches!(
            bus.register(AddressSpace::Pmio, 0x108, 0x10, "b"),
            Err(VmmError::RegionOverlap { .. })
        ));
        // Adjacent is fine.
        assert!(bus.register(AddressSpace::Pmio, 0x110, 0x10, "c").is_ok());
    }

    #[test]
    fn net_frames_route_to_net_region() {
        let mut bus = Bus::new();
        bus.register(AddressSpace::Pmio, 0x300, 0x20, "pcnet-io").unwrap();
        let rx = bus.register(AddressSpace::NetFrame, 0, 0, "pcnet-rx").unwrap();
        assert_eq!(bus.route(&IoRequest::net_frame(vec![1])).unwrap(), rx);
    }

    #[test]
    fn region_lookup() {
        let mut bus = Bus::new();
        let id = bus.register(AddressSpace::Pmio, 0x3f0, 8, "fdc").unwrap();
        assert_eq!(bus.region(id).unwrap().tag, "fdc");
        assert_eq!(bus.regions().len(), 1);
    }
}
