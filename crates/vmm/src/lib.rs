//! QEMU-style virtual-machine substrate for the SEDSpec reproduction.
//!
//! This crate provides the host-side plumbing an emulated device needs:
//! guest physical memory ([`GuestMemory`]), port- and memory-mapped I/O
//! request types ([`IoRequest`]), an interrupt controller ([`IrqLine`],
//! [`InterruptController`]), a DMA engine ([`DmaEngine`]), a bus that
//! routes I/O requests to registered regions ([`Bus`]), a virtual clock
//! ([`VirtualClock`]) and simple disk/network backends ([`DiskBackend`],
//! [`NetBackend`]).
//!
//! In the paper's prototype these roles are played by QEMU/KVM; here they
//! are a self-contained, deterministic re-implementation so that the
//! specification-generation and enforcement pipeline in the `sedspec`
//! crate can drive real device models end to end.
//!
//! # Examples
//!
//! ```
//! use sedspec_vmm::{GuestMemory, IoRequest, AddressSpace};
//!
//! let mut mem = GuestMemory::new(0x10000);
//! mem.write_u32(0x1000, 0xdead_beef).unwrap();
//! assert_eq!(mem.read_u32(0x1000).unwrap(), 0xdead_beef);
//!
//! let req = IoRequest::write(AddressSpace::Pmio, 0x3f5, 1, 0x4a);
//! assert!(req.is_write());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod bus;
mod clock;
mod dma;
mod error;
mod guest_mem;
mod io;
mod irq;

pub use backend::{DiskBackend, NetBackend, SECTOR_SIZE};
pub use bus::{Bus, BusRegion, RegionId};
pub use clock::VirtualClock;
pub use dma::DmaEngine;
pub use error::VmmError;
pub use guest_mem::GuestMemory;
pub use io::{AddressSpace, IoDirection, IoRequest, IoResult};
pub use irq::{InterruptController, IrqLine};

/// Everything a device model may touch while servicing an I/O request.
///
/// A `VmContext` bundles guest memory, the interrupt controller, the
/// virtual clock and the device backends, mirroring the environment QEMU
/// hands to a device callback.
#[derive(Debug)]
pub struct VmContext {
    /// Guest physical memory.
    pub mem: GuestMemory,
    /// Interrupt controller the device raises lines on.
    pub irqs: InterruptController,
    /// Virtual clock used for latency accounting.
    pub clock: VirtualClock,
    /// Block-storage backend (floppy image, SD card, SCSI disk, ...).
    pub disk: DiskBackend,
    /// Network backend (what the emulated NIC transmits into / receives from).
    pub net: NetBackend,
}

impl VmContext {
    /// Creates a context with `mem_size` bytes of guest memory, a
    /// `disk_sectors`-sector disk backend and 16 IRQ lines.
    pub fn new(mem_size: usize, disk_sectors: usize) -> Self {
        VmContext {
            mem: GuestMemory::new(mem_size),
            irqs: InterruptController::new(16),
            clock: VirtualClock::new(),
            disk: DiskBackend::new(disk_sectors),
            net: NetBackend::new(),
        }
    }

    /// A DMA engine view over this context's guest memory.
    pub fn dma(&mut self) -> DmaEngine<'_> {
        DmaEngine::new(&mut self.mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_round_trip() {
        let mut ctx = VmContext::new(0x1000, 8);
        ctx.mem.write_u16(0x10, 0xbeef).unwrap();
        assert_eq!(ctx.mem.read_u16(0x10).unwrap(), 0xbeef);
        ctx.irqs.line(3).raise();
        assert!(ctx.irqs.line(3).is_raised());
    }
}
