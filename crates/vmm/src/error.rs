use std::fmt;

/// Errors produced by the virtual-machine substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VmmError {
    /// A guest-physical access fell outside the memory region.
    OutOfBounds {
        /// Requested guest physical address.
        addr: u64,
        /// Requested access length in bytes.
        len: usize,
        /// Size of the memory region.
        size: usize,
    },
    /// An I/O request targeted an address no device claims.
    UnmappedIo {
        /// Requested I/O address.
        addr: u64,
    },
    /// A bus region overlaps an existing registration.
    RegionOverlap {
        /// Base of the conflicting region.
        base: u64,
        /// Length of the conflicting region.
        len: u64,
    },
    /// A disk access referenced a sector past the end of the backend.
    SectorOutOfRange {
        /// Requested sector index.
        sector: u64,
        /// Number of sectors in the backend.
        capacity: u64,
    },
    /// An IRQ line index past the controller's line count.
    BadIrqLine {
        /// Requested line index.
        line: usize,
        /// Number of lines the controller has.
        lines: usize,
    },
}

impl fmt::Display for VmmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmmError::OutOfBounds { addr, len, size } => write!(
                f,
                "guest memory access out of bounds: addr {addr:#x} len {len} in region of {size} bytes"
            ),
            VmmError::UnmappedIo { addr } => {
                write!(f, "no device mapped at I/O address {addr:#x}")
            }
            VmmError::RegionOverlap { base, len } => {
                write!(f, "bus region {base:#x}+{len:#x} overlaps an existing region")
            }
            VmmError::SectorOutOfRange { sector, capacity } => {
                write!(f, "sector {sector} out of range for disk of {capacity} sectors")
            }
            VmmError::BadIrqLine { line, lines } => {
                write!(f, "irq line {line} out of range for controller with {lines} lines")
            }
        }
    }
}

impl std::error::Error for VmmError {}
