use crate::VmmError;

/// Flat guest physical memory.
///
/// All multi-byte accessors use little-endian byte order, matching the
/// x86 guests the paper evaluates on. Accesses are bounds-checked and
/// return [`VmmError::OutOfBounds`] on violation — the substrate never
/// lets an emulated device corrupt the *host*; CVE-faithful corruption
/// happens inside the device's own control-structure arena (see the
/// `sedspec-dbl` crate).
///
/// # Examples
///
/// ```
/// use sedspec_vmm::GuestMemory;
///
/// let mut mem = GuestMemory::new(64);
/// mem.write_bytes(8, &[1, 2, 3]).unwrap();
/// assert_eq!(mem.read_u16(8).unwrap(), 0x0201);
/// assert!(mem.read_u64(60).is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuestMemory {
    bytes: Vec<u8>,
}

impl GuestMemory {
    /// Allocates `size` bytes of zeroed guest memory.
    pub fn new(size: usize) -> Self {
        GuestMemory { bytes: vec![0; size] }
    }

    /// Total size of the region in bytes.
    pub fn size(&self) -> usize {
        self.bytes.len()
    }

    fn check(&self, addr: u64, len: usize) -> Result<usize, VmmError> {
        let start = usize::try_from(addr).map_err(|_| VmmError::OutOfBounds {
            addr,
            len,
            size: self.bytes.len(),
        })?;
        let end = start.checked_add(len).ok_or(VmmError::OutOfBounds {
            addr,
            len,
            size: self.bytes.len(),
        })?;
        if end > self.bytes.len() {
            return Err(VmmError::OutOfBounds { addr, len, size: self.bytes.len() });
        }
        Ok(start)
    }

    /// Reads `dst.len()` bytes starting at guest physical address `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`VmmError::OutOfBounds`] if the range does not fit.
    pub fn read_bytes(&self, addr: u64, dst: &mut [u8]) -> Result<(), VmmError> {
        let start = self.check(addr, dst.len())?;
        dst.copy_from_slice(&self.bytes[start..start + dst.len()]);
        Ok(())
    }

    /// Writes `src` starting at guest physical address `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`VmmError::OutOfBounds`] if the range does not fit.
    pub fn write_bytes(&mut self, addr: u64, src: &[u8]) -> Result<(), VmmError> {
        let start = self.check(addr, src.len())?;
        self.bytes[start..start + src.len()].copy_from_slice(src);
        Ok(())
    }

    /// Returns an owned copy of `len` bytes at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`VmmError::OutOfBounds`] if the range does not fit.
    pub fn read_vec(&self, addr: u64, len: usize) -> Result<Vec<u8>, VmmError> {
        let mut v = vec![0; len];
        self.read_bytes(addr, &mut v)?;
        Ok(v)
    }

    /// Fills `len` bytes at `addr` with `value`.
    ///
    /// # Errors
    ///
    /// Returns [`VmmError::OutOfBounds`] if the range does not fit.
    pub fn fill(&mut self, addr: u64, len: usize, value: u8) -> Result<(), VmmError> {
        let start = self.check(addr, len)?;
        self.bytes[start..start + len].fill(value);
        Ok(())
    }

    /// Reads a `u8` at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`VmmError::OutOfBounds`] if the address is out of range.
    pub fn read_u8(&self, addr: u64) -> Result<u8, VmmError> {
        let mut b = [0u8; 1];
        self.read_bytes(addr, &mut b)?;
        Ok(b[0])
    }

    /// Reads a little-endian `u16` at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`VmmError::OutOfBounds`] if the range does not fit.
    pub fn read_u16(&self, addr: u64) -> Result<u16, VmmError> {
        let mut b = [0u8; 2];
        self.read_bytes(addr, &mut b)?;
        Ok(u16::from_le_bytes(b))
    }

    /// Reads a little-endian `u32` at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`VmmError::OutOfBounds`] if the range does not fit.
    pub fn read_u32(&self, addr: u64) -> Result<u32, VmmError> {
        let mut b = [0u8; 4];
        self.read_bytes(addr, &mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Reads a little-endian `u64` at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`VmmError::OutOfBounds`] if the range does not fit.
    pub fn read_u64(&self, addr: u64) -> Result<u64, VmmError> {
        let mut b = [0u8; 8];
        self.read_bytes(addr, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Writes a `u8` at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`VmmError::OutOfBounds`] if the address is out of range.
    pub fn write_u8(&mut self, addr: u64, v: u8) -> Result<(), VmmError> {
        self.write_bytes(addr, &[v])
    }

    /// Writes a little-endian `u16` at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`VmmError::OutOfBounds`] if the range does not fit.
    pub fn write_u16(&mut self, addr: u64, v: u16) -> Result<(), VmmError> {
        self.write_bytes(addr, &v.to_le_bytes())
    }

    /// Writes a little-endian `u32` at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`VmmError::OutOfBounds`] if the range does not fit.
    pub fn write_u32(&mut self, addr: u64, v: u32) -> Result<(), VmmError> {
        self.write_bytes(addr, &v.to_le_bytes())
    }

    /// Writes a little-endian `u64` at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`VmmError::OutOfBounds`] if the range does not fit.
    pub fn write_u64(&mut self, addr: u64, v: u64) -> Result<(), VmmError> {
        self.write_bytes(addr, &v.to_le_bytes())
    }

    /// Reads an unsigned little-endian integer of `width` bytes (1, 2, 4 or 8).
    ///
    /// # Errors
    ///
    /// Returns [`VmmError::OutOfBounds`] if the range does not fit.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not 1, 2, 4 or 8.
    pub fn read_uint(&self, addr: u64, width: usize) -> Result<u64, VmmError> {
        match width {
            1 => self.read_u8(addr).map(u64::from),
            2 => self.read_u16(addr).map(u64::from),
            4 => self.read_u32(addr).map(u64::from),
            8 => self.read_u64(addr),
            _ => panic!("unsupported access width {width}"),
        }
    }

    /// Writes the low `width` bytes (1, 2, 4 or 8) of `v` little-endian at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`VmmError::OutOfBounds`] if the range does not fit.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not 1, 2, 4 or 8.
    pub fn write_uint(&mut self, addr: u64, width: usize, v: u64) -> Result<(), VmmError> {
        match width {
            1 => self.write_u8(addr, v as u8),
            2 => self.write_u16(addr, v as u16),
            4 => self.write_u32(addr, v as u32),
            8 => self.write_u64(addr, v),
            _ => panic!("unsupported access width {width}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_all_widths() {
        let mut m = GuestMemory::new(32);
        m.write_u8(0, 0xab).unwrap();
        m.write_u16(2, 0x1234).unwrap();
        m.write_u32(4, 0xdead_beef).unwrap();
        m.write_u64(8, 0x0123_4567_89ab_cdef).unwrap();
        assert_eq!(m.read_u8(0).unwrap(), 0xab);
        assert_eq!(m.read_u16(2).unwrap(), 0x1234);
        assert_eq!(m.read_u32(4).unwrap(), 0xdead_beef);
        assert_eq!(m.read_u64(8).unwrap(), 0x0123_4567_89ab_cdef);
    }

    #[test]
    fn little_endian_layout() {
        let mut m = GuestMemory::new(8);
        m.write_u32(0, 0x0403_0201).unwrap();
        let mut b = [0u8; 4];
        m.read_bytes(0, &mut b).unwrap();
        assert_eq!(b, [1, 2, 3, 4]);
    }

    #[test]
    fn rejects_out_of_bounds() {
        let mut m = GuestMemory::new(16);
        assert!(matches!(m.read_u32(14), Err(VmmError::OutOfBounds { .. })));
        assert!(matches!(m.write_u8(16, 0), Err(VmmError::OutOfBounds { .. })));
        assert!(m.write_u8(15, 0).is_ok());
    }

    #[test]
    fn rejects_wrapping_range() {
        let m = GuestMemory::new(16);
        assert!(m.read_vec(u64::MAX, 2).is_err());
    }

    #[test]
    fn fill_and_read_vec() {
        let mut m = GuestMemory::new(16);
        m.fill(4, 4, 0x5a).unwrap();
        assert_eq!(m.read_vec(3, 6).unwrap(), vec![0, 0x5a, 0x5a, 0x5a, 0x5a, 0]);
    }

    #[test]
    fn generic_width_accessors() {
        let mut m = GuestMemory::new(16);
        for &w in &[1usize, 2, 4, 8] {
            m.write_uint(0, w, 0x1122_3344_5566_7788).unwrap();
            let mask = if w == 8 { u64::MAX } else { (1u64 << (w * 8)) - 1 };
            assert_eq!(m.read_uint(0, w).unwrap(), 0x1122_3344_5566_7788 & mask);
        }
    }
}
