use std::collections::VecDeque;

use crate::VmmError;

/// Sector size used by every disk backend, in bytes.
pub const SECTOR_SIZE: usize = 512;

/// A sector-addressed block-storage backend.
///
/// Plays the role of the host-side image file behind QEMU's FDC, SDHCI
/// and SCSI devices. Transfers are whole sectors of [`SECTOR_SIZE`]
/// bytes; the backend tracks read/write counters so performance
/// harnesses can derive throughput.
///
/// # Examples
///
/// ```
/// use sedspec_vmm::{DiskBackend, SECTOR_SIZE};
///
/// let mut disk = DiskBackend::new(16);
/// let sector = vec![0x5a; SECTOR_SIZE];
/// disk.write_sector(3, &sector)?;
/// assert_eq!(disk.read_sector(3)?, sector);
/// # Ok::<(), sedspec_vmm::VmmError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DiskBackend {
    data: Vec<u8>,
    sectors: usize,
    reads: u64,
    writes: u64,
}

impl DiskBackend {
    /// Creates a zero-filled backend of `sectors` sectors.
    pub fn new(sectors: usize) -> Self {
        DiskBackend { data: vec![0; sectors * SECTOR_SIZE], sectors, reads: 0, writes: 0 }
    }

    /// Number of sectors in the backend.
    pub fn sectors(&self) -> usize {
        self.sectors
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.data.len()
    }

    fn offset(&self, sector: u64) -> Result<usize, VmmError> {
        if sector >= self.sectors as u64 {
            return Err(VmmError::SectorOutOfRange { sector, capacity: self.sectors as u64 });
        }
        Ok(sector as usize * SECTOR_SIZE)
    }

    /// Reads sector `sector` into an owned buffer.
    ///
    /// # Errors
    ///
    /// Returns [`VmmError::SectorOutOfRange`] if `sector` is past the end.
    pub fn read_sector(&mut self, sector: u64) -> Result<Vec<u8>, VmmError> {
        let off = self.offset(sector)?;
        self.reads += 1;
        Ok(self.data[off..off + SECTOR_SIZE].to_vec())
    }

    /// Reads sector `sector` into `dst` (first [`SECTOR_SIZE`] bytes).
    ///
    /// # Errors
    ///
    /// Returns [`VmmError::SectorOutOfRange`] if `sector` is past the end.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is shorter than [`SECTOR_SIZE`].
    pub fn read_sector_into(&mut self, sector: u64, dst: &mut [u8]) -> Result<(), VmmError> {
        let off = self.offset(sector)?;
        self.reads += 1;
        dst[..SECTOR_SIZE].copy_from_slice(&self.data[off..off + SECTOR_SIZE]);
        Ok(())
    }

    /// Writes the first [`SECTOR_SIZE`] bytes of `src` to sector `sector`.
    ///
    /// Shorter sources are zero-padded to a full sector, mirroring how
    /// image-backed devices pad partial writes.
    ///
    /// # Errors
    ///
    /// Returns [`VmmError::SectorOutOfRange`] if `sector` is past the end.
    pub fn write_sector(&mut self, sector: u64, src: &[u8]) -> Result<(), VmmError> {
        let off = self.offset(sector)?;
        self.writes += 1;
        let n = src.len().min(SECTOR_SIZE);
        self.data[off..off + n].copy_from_slice(&src[..n]);
        if n < SECTOR_SIZE {
            self.data[off + n..off + SECTOR_SIZE].fill(0);
        }
        Ok(())
    }

    /// Number of sector reads serviced.
    pub fn read_count(&self) -> u64 {
        self.reads
    }

    /// Number of sector writes serviced.
    pub fn write_count(&self) -> u64 {
        self.writes
    }
}

/// A network backend: the "wire" behind an emulated NIC.
///
/// Frames the device transmits are captured in a TX log; frames queued
/// for reception are delivered to the device's receive entry point by
/// the machine driver. This replaces QEMU's user-mode (slirp) network
/// stack used in the paper's iperf/ping experiments.
///
/// # Examples
///
/// ```
/// use sedspec_vmm::NetBackend;
///
/// let mut net = NetBackend::new();
/// net.inject_rx(vec![0xff; 60]);
/// assert_eq!(net.pop_rx().unwrap().len(), 60);
/// net.transmit(vec![1, 2, 3]);
/// assert_eq!(net.tx_frames(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct NetBackend {
    tx_log: Vec<Vec<u8>>,
    rx_queue: VecDeque<Vec<u8>>,
    tx_bytes: u64,
    rx_bytes: u64,
    /// When true, transmitted frames are looped back into the RX queue
    /// (PCNet loopback-test mode).
    pub loopback: bool,
}

impl NetBackend {
    /// An empty backend with loopback disabled.
    pub fn new() -> Self {
        NetBackend::default()
    }

    /// Records a frame transmitted by the device.
    pub fn transmit(&mut self, frame: Vec<u8>) {
        self.tx_bytes += frame.len() as u64;
        if self.loopback {
            self.rx_queue.push_back(frame.clone());
        }
        self.tx_log.push(frame);
    }

    /// Queues a frame for delivery to the device.
    pub fn inject_rx(&mut self, frame: Vec<u8>) {
        self.rx_bytes += frame.len() as u64;
        self.rx_queue.push_back(frame);
    }

    /// Takes the next frame queued for the device, if any.
    pub fn pop_rx(&mut self) -> Option<Vec<u8>> {
        self.rx_queue.pop_front()
    }

    /// Number of frames the device has transmitted.
    pub fn tx_frames(&self) -> usize {
        self.tx_log.len()
    }

    /// The transmitted frames, oldest first.
    pub fn tx_log(&self) -> &[Vec<u8>] {
        &self.tx_log
    }

    /// Total bytes transmitted by the device.
    pub fn tx_bytes(&self) -> u64 {
        self.tx_bytes
    }

    /// Total bytes injected for reception.
    pub fn rx_bytes(&self) -> u64 {
        self.rx_bytes
    }

    /// Frames still waiting for delivery.
    pub fn rx_pending(&self) -> usize {
        self.rx_queue.len()
    }

    /// Drops queued frames and the TX log, keeping counters.
    pub fn clear(&mut self) {
        self.tx_log.clear();
        self.rx_queue.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disk_round_trip_and_counters() {
        let mut d = DiskBackend::new(4);
        d.write_sector(2, &[7; SECTOR_SIZE]).unwrap();
        assert_eq!(d.read_sector(2).unwrap()[0], 7);
        assert_eq!(d.read_count(), 1);
        assert_eq!(d.write_count(), 1);
    }

    #[test]
    fn disk_pads_short_writes() {
        let mut d = DiskBackend::new(1);
        d.write_sector(0, &[1; SECTOR_SIZE]).unwrap();
        d.write_sector(0, &[2, 2]).unwrap();
        let s = d.read_sector(0).unwrap();
        assert_eq!(&s[..2], &[2, 2]);
        assert!(s[2..].iter().all(|&b| b == 0));
    }

    #[test]
    fn disk_rejects_bad_sector() {
        let mut d = DiskBackend::new(2);
        assert!(matches!(d.read_sector(2), Err(VmmError::SectorOutOfRange { .. })));
    }

    #[test]
    fn net_fifo_order() {
        let mut n = NetBackend::new();
        n.inject_rx(vec![1]);
        n.inject_rx(vec![2]);
        assert_eq!(n.pop_rx().unwrap(), vec![1]);
        assert_eq!(n.pop_rx().unwrap(), vec![2]);
        assert!(n.pop_rx().is_none());
    }

    #[test]
    fn net_loopback_requeues_tx() {
        let mut n = NetBackend::new();
        n.loopback = true;
        n.transmit(vec![9, 9]);
        assert_eq!(n.pop_rx().unwrap(), vec![9, 9]);
        assert_eq!(n.tx_frames(), 1);
        assert_eq!(n.tx_bytes(), 2);
    }
}
