use crate::{GuestMemory, VmmError};

/// A DMA engine view over guest memory.
///
/// Emulated devices move bulk data to and from the guest through DMA
/// rather than per-byte port I/O. The engine supports flat copies and
/// scatter-gather lists, the two shapes the five reproduced devices use
/// (FDC/SDHCI flat buffers; PCNet/EHCI/SCSI descriptor rings resolve to
/// gather lists).
///
/// # Examples
///
/// ```
/// use sedspec_vmm::{DmaEngine, GuestMemory};
///
/// let mut mem = GuestMemory::new(0x100);
/// let mut dma = DmaEngine::new(&mut mem);
/// dma.write(0x40, &[9, 8, 7]).unwrap();
/// let mut out = [0u8; 3];
/// dma.read(0x40, &mut out).unwrap();
/// assert_eq!(out, [9, 8, 7]);
/// ```
#[derive(Debug)]
pub struct DmaEngine<'a> {
    mem: &'a mut GuestMemory,
    bytes_read: u64,
    bytes_written: u64,
}

impl<'a> DmaEngine<'a> {
    /// Creates an engine over `mem`.
    pub fn new(mem: &'a mut GuestMemory) -> Self {
        DmaEngine { mem, bytes_read: 0, bytes_written: 0 }
    }

    /// Copies `dst.len()` bytes from guest memory at `gpa` into `dst`.
    ///
    /// # Errors
    ///
    /// Returns [`VmmError::OutOfBounds`] if the guest range does not fit.
    pub fn read(&mut self, gpa: u64, dst: &mut [u8]) -> Result<(), VmmError> {
        self.mem.read_bytes(gpa, dst)?;
        self.bytes_read += dst.len() as u64;
        Ok(())
    }

    /// Copies `src` into guest memory at `gpa`.
    ///
    /// # Errors
    ///
    /// Returns [`VmmError::OutOfBounds`] if the guest range does not fit.
    pub fn write(&mut self, gpa: u64, src: &[u8]) -> Result<(), VmmError> {
        self.mem.write_bytes(gpa, src)?;
        self.bytes_written += src.len() as u64;
        Ok(())
    }

    /// Gathers the ranges of `sg` (in order) into one buffer.
    ///
    /// # Errors
    ///
    /// Returns [`VmmError::OutOfBounds`] if any range does not fit.
    pub fn gather(&mut self, sg: &[(u64, usize)]) -> Result<Vec<u8>, VmmError> {
        let total: usize = sg.iter().map(|&(_, l)| l).sum();
        let mut out = vec![0u8; total];
        let mut off = 0;
        for &(gpa, len) in sg {
            self.read(gpa, &mut out[off..off + len])?;
            off += len;
        }
        Ok(out)
    }

    /// Scatters `src` across the ranges of `sg` (in order).
    ///
    /// Stops after `src` is exhausted; surplus ranges are left untouched.
    ///
    /// # Errors
    ///
    /// Returns [`VmmError::OutOfBounds`] if any written range does not fit.
    pub fn scatter(&mut self, sg: &[(u64, usize)], src: &[u8]) -> Result<usize, VmmError> {
        let mut off = 0;
        for &(gpa, len) in sg {
            if off >= src.len() {
                break;
            }
            let n = len.min(src.len() - off);
            self.write(gpa, &src[off..off + n])?;
            off += n;
        }
        Ok(off)
    }

    /// Total bytes read from the guest through this engine.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Total bytes written to the guest through this engine.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_copy_round_trip() {
        let mut mem = GuestMemory::new(64);
        let mut dma = DmaEngine::new(&mut mem);
        dma.write(8, b"hello").unwrap();
        let mut b = [0u8; 5];
        dma.read(8, &mut b).unwrap();
        assert_eq!(&b, b"hello");
        assert_eq!(dma.bytes_read(), 5);
        assert_eq!(dma.bytes_written(), 5);
    }

    #[test]
    fn gather_concatenates_in_order() {
        let mut mem = GuestMemory::new(64);
        mem.write_bytes(0, &[1, 2]).unwrap();
        mem.write_bytes(10, &[3, 4, 5]).unwrap();
        let mut dma = DmaEngine::new(&mut mem);
        let v = dma.gather(&[(0, 2), (10, 3)]).unwrap();
        assert_eq!(v, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn scatter_stops_at_source_end() {
        let mut mem = GuestMemory::new(64);
        let mut dma = DmaEngine::new(&mut mem);
        let n = dma.scatter(&[(0, 3), (16, 8)], &[9, 9, 9, 7]).unwrap();
        assert_eq!(n, 4);
        assert_eq!(mem.read_vec(0, 3).unwrap(), vec![9, 9, 9]);
        assert_eq!(mem.read_u8(16).unwrap(), 7);
        assert_eq!(mem.read_u8(17).unwrap(), 0);
    }

    #[test]
    fn oob_is_reported() {
        let mut mem = GuestMemory::new(16);
        let mut dma = DmaEngine::new(&mut mem);
        assert!(dma.write(12, &[0; 8]).is_err());
        assert!(dma.gather(&[(0, 4), (14, 4)]).is_err());
    }
}
