//! The evaluation experiments (paper §VII).

use sedspec::checker::{CheckConfig, Strategy, WorkingMode};
use sedspec::collect::apply_step;
use sedspec::enforce::{EnforcingDevice, IoVerdict};
use sedspec::params::SelectionReason;
use sedspec::pipeline::{train_script_with_artifacts, TrainingConfig};
use sedspec::spec::ExecutionSpecification;
use sedspec_devices::{build_device, DeviceKind, QemuVersion};
use sedspec_trace::itc_cfg::ItcCfg;
use sedspec_vmm::VmContext;
use sedspec_workloads::attacks::{poc, Cve};
use sedspec_workloads::fuzz::{effective_coverage, fuzz_device, FuzzConfig};
use sedspec_workloads::generators::{eval_case, training_suite};
use sedspec_workloads::perf::{network_bench, ping_bench, storage_bench, IoDir, NetDir, Transport};
use sedspec_workloads::InteractionMode;

/// Training cases per device for all experiments.
pub const TRAINING_CASES: usize = 120;
/// Evaluation test cases per simulated hour (scaled from the paper's
/// long-running interactions; see DESIGN.md).
pub const CASES_PER_HOUR: usize = 120;
/// Rare-command probability per batch in evaluation traffic.
pub const RARE_PROB: f64 = 0.0001;
/// Fuzz budget approximating the paper's one-hour campaign.
pub const FUZZ_CASES: usize = 400;

/// Trains the standard specification for a device at a version.
pub fn trained_spec(kind: DeviceKind, version: QemuVersion) -> (ExecutionSpecification, ItcCfg) {
    let mut device = build_device(kind, version);
    let mut ctx = VmContext::new(0x200000, 8192);
    let suite = training_suite(kind, TRAINING_CASES, 0x7a11);
    let (spec, artifacts) =
        train_script_with_artifacts(&mut device, &mut ctx, &suite, &TrainingConfig::default())
            .expect("training succeeds");
    (spec, artifacts.itc)
}

// ------------------------------------------------------------ Table I --

/// One row of Table I: a parameter class with device examples.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Table1Row {
    /// Variable class (Table I column 1).
    pub class: &'static str,
    /// Related vulnerability or exploit type.
    pub related: &'static str,
    /// Selected examples per device: `(device, var names)`.
    pub examples: Vec<(DeviceKind, Vec<String>)>,
}

/// Reproduces Table I: device-state parameter selection.
pub fn table1() -> Vec<Table1Row> {
    let mut rows = vec![
        Table1Row { class: "Physical register related variables", related: "-", examples: vec![] },
        Table1Row {
            class: "Fixed-length buffer variables",
            related: "Buffer overflow",
            examples: vec![],
        },
        Table1Row {
            class: "Variables for counting and indexing buffer positions",
            related: "Buffer overflow or integer overflow",
            examples: vec![],
        },
        Table1Row {
            class: "Function pointer variables",
            related: "Control flow hijack",
            examples: vec![],
        },
    ];
    for kind in DeviceKind::all() {
        let device = build_device(kind, QemuVersion::Patched);
        let refs = device.program_refs();
        let params = sedspec::params::select_params(&device.control, &refs, None);
        let named = |reason: SelectionReason| -> Vec<String> {
            params
                .vars
                .iter()
                .filter(|(_, rs)| rs.contains(&reason))
                .map(|(v, _)| device.control.var_decl(*v).name.clone())
                .collect()
        };
        rows[0].examples.push((kind, named(SelectionReason::PhysicalRegister)));
        rows[1].examples.push((
            kind,
            params.buffers.iter().map(|b| device.control.buf_decl(*b).name.clone()).collect(),
        ));
        rows[2].examples.push((kind, named(SelectionReason::BufferCountIndex)));
        rows[3].examples.push((kind, named(SelectionReason::FunctionPointer)));
    }
    rows
}

// ----------------------------------------------------------- Table II --

/// False positives for one device at the three time horizons.
#[derive(Debug, Clone, Copy, serde::Serialize)]
pub struct Table2Row {
    /// The device.
    pub device: DeviceKind,
    /// Cumulative false positives at 10, 20 and 30 simulated hours.
    pub fp_at: [u64; 3],
    /// Total test cases over 30 hours.
    pub total_cases: u64,
    /// False positive rate over the full horizon.
    pub fpr: f64,
}

/// Runs one device's long-horizon false-positive experiment.
pub fn table2_device(kind: DeviceKind, hours: [u64; 3]) -> Table2Row {
    let (spec, _) = trained_spec(kind, QemuVersion::Patched);
    let device = build_device(kind, QemuVersion::Patched);
    let mut enforcer = EnforcingDevice::new(device, spec, WorkingMode::Enhancement);
    let mut ctx = VmContext::new(0x200000, 8192);

    let total_hours = hours[2];
    let mut fp_at = [0u64; 3];
    let mut fps = 0u64;
    let mut cases = 0u64;
    for hour in 0..total_hours {
        for c in 0..CASES_PER_HOUR as u64 {
            let mode = InteractionMode::all()[(cases % 3) as usize];
            let case = eval_case(kind, mode, RARE_PROB, hour * 10_000 + c);
            let mut flagged = false;
            for step in &case {
                let Some(req) = apply_step(step, &mut ctx) else { continue };
                let verdict = enforcer.handle_io(&mut ctx, req);
                if verdict.flagged() {
                    flagged = true;
                }
                enforcer.reset_halt();
            }
            cases += 1;
            if flagged {
                fps += 1;
            }
        }
        for (i, &h) in hours.iter().enumerate() {
            if hour + 1 == h {
                fp_at[i] = fps;
            }
        }
    }
    Table2Row { device: kind, fp_at, total_cases: cases, fpr: fps as f64 / cases as f64 }
}

/// Reproduces Table II for all five devices.
pub fn table2() -> Vec<Table2Row> {
    DeviceKind::all().into_iter().map(|k| table2_device(k, [10, 20, 30])).collect()
}

// ---------------------------------------------------------- Table III --

/// One case-study row of Table III.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Table3Row {
    /// The CVE.
    pub cve: Cve,
    /// Target device.
    pub device: DeviceKind,
    /// QEMU version column.
    pub qemu_version: QemuVersion,
    /// Detection outcome per strategy: (parameter, indirect, conditional).
    pub detected: [bool; 3],
    /// The paper's expected ticks for comparison.
    pub expected: [bool; 3],
}

/// Coverage/FPR summary per device for Table III's right columns.
#[derive(Debug, Clone, Copy, serde::Serialize)]
pub struct Table3Summary {
    /// The device.
    pub device: DeviceKind,
    /// False positive rate (from the Table II run).
    pub fpr: f64,
    /// Effective coverage against the fuzz-approximated path set.
    pub effective_coverage: f64,
}

/// Runs one CVE case study with a single strategy enabled.
fn run_case_study(cve: Cve, strategy: Strategy) -> bool {
    let p = poc(cve);
    let (spec, _) = trained_spec(p.device, p.qemu_version);
    let mut device = build_device(p.device, p.qemu_version);
    device.set_limits(sedspec_dbl::interp::ExecLimits { max_steps: 50_000, ..Default::default() });
    let mut enforcer = EnforcingDevice::new(device, spec, WorkingMode::Protection)
        .with_config(CheckConfig::only(strategy));
    let mut ctx = VmContext::new(0x200000, 8192);
    for step in &p.steps {
        let Some(req) = apply_step(step, &mut ctx) else { continue };
        match enforcer.handle_io(&mut ctx, req) {
            IoVerdict::Halted { violations, .. } if !violations.is_empty() => return true,
            IoVerdict::Halted { .. } => return true,
            _ => {}
        }
    }
    false
}

/// Reproduces the case-study columns of Table III.
pub fn table3_cases() -> Vec<Table3Row> {
    Cve::all()
        .into_iter()
        .map(|cve| {
            let p = poc(cve);
            let detected = [
                run_case_study(cve, Strategy::Parameter),
                run_case_study(cve, Strategy::IndirectJump),
                run_case_study(cve, Strategy::ConditionalJump),
            ];
            let expected = [
                p.detected_by.contains(&Strategy::Parameter),
                p.detected_by.contains(&Strategy::IndirectJump),
                p.detected_by.contains(&Strategy::ConditionalJump),
            ];
            Table3Row { cve, device: p.device, qemu_version: p.qemu_version, detected, expected }
        })
        .collect()
}

/// Reproduces the FPR and effective-coverage columns of Table III.
pub fn table3_summaries(table2_rows: &[Table2Row]) -> Vec<Table3Summary> {
    DeviceKind::all()
        .into_iter()
        .map(|kind| {
            let (_, train_itc) = trained_spec(kind, QemuVersion::Patched);
            let fuzz =
                fuzz_device(kind, &FuzzConfig { cases: FUZZ_CASES, ..FuzzConfig::default() });
            let coverage = effective_coverage(&train_itc, &fuzz.itc);
            let fpr = table2_rows.iter().find(|r| r.device == kind).map_or(f64::NAN, |r| r.fpr);
            Table3Summary { device: kind, fpr, effective_coverage: coverage }
        })
        .collect()
}

/// Full Table III: case studies plus per-device summaries.
pub fn table3(table2_rows: &[Table2Row]) -> (Vec<Table3Row>, Vec<Table3Summary>) {
    (table3_cases(), table3_summaries(table2_rows))
}

// ------------------------------------------------------- Figures 3/4 --

/// One normalized storage measurement.
#[derive(Debug, Clone, Copy, serde::Serialize)]
pub struct StoragePoint {
    /// The device.
    pub device: DeviceKind,
    /// Transfer direction.
    pub write: bool,
    /// Block size in bytes.
    pub block: u64,
    /// Enforced / raw throughput ratio (Figure 3; ≥ ~0.95 expected).
    pub norm_throughput: f64,
    /// Enforced / raw latency ratio (Figure 4; ≤ ~1.05 expected).
    pub norm_latency: f64,
}

/// Block sizes for a device (the FDC's 2.88 MB capacity caps its range).
pub fn block_sizes(kind: DeviceKind) -> Vec<u64> {
    match kind {
        DeviceKind::Fdc => vec![4 << 10, 64 << 10, 512 << 10],
        _ => vec![4 << 10, 64 << 10, 512 << 10, 2 << 20],
    }
}

/// Measures normalized storage throughput and latency for every storage
/// device, direction and block size (Figures 3 and 4 share the runs).
pub fn storage_figures() -> Vec<StoragePoint> {
    let mut out = Vec::new();
    for kind in DeviceKind::all().into_iter().filter(|k| k.is_storage()) {
        let (spec, _) = trained_spec(kind, QemuVersion::Patched);
        for write in [false, true] {
            for block in block_sizes(kind) {
                let total = (block * 8).min(2 << 20).max(block);
                let dir = if write { IoDir::Write } else { IoDir::Read };
                let raw = storage_bench(kind, None, dir, block, total);
                let enf = storage_bench(kind, Some(spec.clone()), dir, block, total);
                out.push(StoragePoint {
                    device: kind,
                    write,
                    block,
                    norm_throughput: enf.throughput() / raw.throughput(),
                    norm_latency: enf.latency_ns() / raw.latency_ns(),
                });
            }
        }
    }
    out
}

/// Figure 3 data (normalized throughput).
pub fn fig3() -> Vec<StoragePoint> {
    storage_figures()
}

/// Figure 4 data (normalized latency; same measurement campaign).
pub fn fig4() -> Vec<StoragePoint> {
    storage_figures()
}

// ----------------------------------------------------------- Figure 5 --

/// PCNet bandwidth and ping results.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Fig5Data {
    /// `(label, raw Mbit/s, enforced Mbit/s, overhead %)` rows.
    pub bandwidth: Vec<(&'static str, f64, f64, f64)>,
    /// Mean ping latency: `(raw_ns, enforced_ns, overhead %)`.
    pub ping: (f64, f64, f64),
}

/// Reproduces Figure 5: TCP/UDP upstream/downstream bandwidth and ping.
pub fn fig5() -> Fig5Data {
    let (spec, _) = trained_spec(DeviceKind::Pcnet, QemuVersion::Patched);
    let frames = 300;
    let mut bandwidth = Vec::new();
    for (label, transport, dir) in [
        ("TCP upstream", Transport::Tcp, NetDir::Upstream),
        ("TCP downstream", Transport::Tcp, NetDir::Downstream),
        ("UDP upstream", Transport::Udp, NetDir::Upstream),
        ("UDP downstream", Transport::Udp, NetDir::Downstream),
    ] {
        let raw = network_bench(None, transport, dir, frames);
        let enf = network_bench(Some(spec.clone()), transport, dir, frames);
        let raw_mbps = raw.throughput() * 8.0 / 1e6;
        let enf_mbps = enf.throughput() * 8.0 / 1e6;
        bandwidth.push((label, raw_mbps, enf_mbps, (1.0 - enf_mbps / raw_mbps) * 100.0));
    }
    let raw_ping = ping_bench(None, 100);
    let enf_ping = ping_bench(Some(spec), 100);
    let ping = (
        raw_ping.latency_ns(),
        enf_ping.latency_ns(),
        (enf_ping.latency_ns() / raw_ping.latency_ns() - 1.0) * 100.0,
    );
    Fig5Data { bandwidth, ping }
}
