//! Command-line front end for the SEDSpec pipeline.
//!
//! ```text
//! sedspec train  <device> [--cases N] [--seed S] [--out spec.json]
//! sedspec inspect <spec.json>
//! sedspec attack <cve> [--spec spec.json] [--mode protection|enhancement]
//! sedspec fuzz   --device D [--seed S] [--rounds N] [--qemu-version V]
//!                [--corpus DIR] [--export DIR] [--json]
//! sedspec fleet  [--tenants K] [--shards N] [--cases C] [--batches B] [--seed S]
//! sedspec bench-checker [--cases N] [--out BENCH_checker.json]
//! sedspec obs-report [--cases N] [--top K] [--metrics] [--trace]
//! sedspec lint-spec [--device D | --all-devices | --spec FILE] [--version V]
//!                   [--deep] [--deny-warnings] [--json] [--cases N] [--seed S]
//!                   [--allow FILE]
//! sedspec spec-diff <OLD> <NEW> [--json] [--cases N] [--seed S]
//!                   (operands: spec JSON file or device@version)
//! sedspec chaos  [--plan FILE] [--seed S] [--tenants K] [--shards N]
//!                [--batches B] [--cases C]
//! sedspec serve  --store DIR (--socket PATH | --tcp ADDR) [--shards N]
//!                [--admin-token T] [--tenant-token TOKEN=ID]
//!                [--rate-capacity N --rate-refill N] [--compact-every N]
//! sedspec ctl    <command> [args] (--socket PATH | --tcp ADDR) [--token T]
//!   commands: ping | publish <device> [--version V] [--spec FILE]
//!             [--cases N] [--seed S] [--allow-loosening] |
//!             add-tenant <id> [--version V]
//!             [--device D]... | submit <tenant> (--cve CVE | --benign
//!             [--cases N]) | status <tenant> | fleet [--json] |
//!             quarantine <tenant> | release <tenant> | metrics |
//!             doctor [--store DIR] | shutdown
//! sedspec devices|cves
//! ```
//!
//! `train` produces a serializable execution specification for a patched
//! device; `attack` trains (or loads) a specification for the CVE's
//! vulnerable device version and replays the PoC under enforcement;
//! `fleet` hosts K tenants of five enforced devices each on an N-shard
//! pool, drives benign traffic plus injected CVE PoCs, and prints
//! throughput and the quarantine summary; `obs-report` runs a small
//! observed fleet (one benign tenant, one Venom-compromised tenant)
//! and prints the observability report — hottest ES blocks, walk
//! latency histograms, and the flight-recorder forensics of every
//! flagged round; `lint-spec` trains (or loads) specifications and runs
//! the `sedspec-analysis` static pass pipeline over them — `--deep`
//! adds the flow-sensitive fixpoint lints (SA5xx) — exiting non-zero on
//! any error-severity finding (with `--deny-warnings`, any warning too)
//! not matched by the `--allow` list — the same vet the fleet registry
//! applies at publish time, shaped for CI; `spec-diff` computes the
//! semantic revision delta (SA601–SA606) between two specifications and
//! exits non-zero when the delta loosens enforcement; `chaos` replays a
//! committed fault plan against a mixed
//! benign/compromised fleet and prints the deterministic recovery
//! report (stdout) plus wall-clock recovery latencies (stderr),
//! exiting non-zero if containment or convergence failed.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use sedspec_fleet::pool::{EnforcementPool, TenantConfig, TenantId};
use sedspec_fleet::registry::SpecRegistry;

use sedspec::checker::WorkingMode;
use sedspec::collect::apply_step;
use sedspec::compiled::CompiledSpec;
use sedspec::enforce::{EnforcingDevice, IoVerdict};
use sedspec::pipeline::{train_script, TrainingConfig};
use sedspec::response::highest_alert;
use sedspec::spec::ExecutionSpecification;
use sedspec_analysis::diff::diff;
use sedspec_analysis::{
    analyze, analyze_deep, analyze_deep_full, analyze_full, AnalysisContext, AnalysisReport,
    Severity,
};
use sedspec_devices::{build_device, DeviceKind, QemuVersion};
use sedspec_vmm::VmContext;
use sedspec_workloads::attacks::{poc, Cve};
use sedspec_workloads::generators::training_suite;

fn parse_device(name: &str) -> Option<DeviceKind> {
    match name.to_ascii_lowercase().as_str() {
        "fdc" => Some(DeviceKind::Fdc),
        "ehci" | "usb" | "usb-ehci" => Some(DeviceKind::UsbEhci),
        "pcnet" => Some(DeviceKind::Pcnet),
        "sdhci" => Some(DeviceKind::Sdhci),
        "scsi" | "esp" => Some(DeviceKind::Scsi),
        _ => None,
    }
}

fn parse_cve(id: &str) -> Option<Cve> {
    Cve::all_with_known_miss()
        .into_iter()
        .find(|c| c.id().eq_ignore_ascii_case(id) || c.id()[4..].eq_ignore_ascii_case(id))
}

fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn train_spec(
    kind: DeviceKind,
    version: QemuVersion,
    cases: usize,
    seed: u64,
) -> ExecutionSpecification {
    let mut device = build_device(kind, version);
    let mut ctx = VmContext::new(0x200000, 8192);
    let suite = training_suite(kind, cases, seed);
    train_script(&mut device, &mut ctx, &suite, &TrainingConfig::default())
        .expect("training produced no rounds")
}

fn cmd_train(args: &[String]) -> ExitCode {
    let Some(kind) = args.first().and_then(|a| parse_device(a)) else {
        eprintln!(
            "usage: sedspec train <fdc|ehci|pcnet|sdhci|scsi> [--cases N] [--seed S] [--out FILE]"
        );
        return ExitCode::from(2);
    };
    let cases = flag(args, "--cases").and_then(|v| v.parse().ok()).unwrap_or(60);
    let seed = flag(args, "--seed").and_then(|v| v.parse().ok()).unwrap_or(0x7a11);
    let spec = train_spec(kind, QemuVersion::Patched, cases, seed);
    eprintln!(
        "trained {} ({} rounds): {} blocks, {} edges, {} commands",
        spec.device,
        spec.stats.training_rounds,
        spec.block_count(),
        spec.edge_count(),
        spec.cmd_table.len()
    );
    let json = spec.to_json();
    match flag(args, "--out") {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path} ({} bytes)", json.len());
        }
        None => println!("{json}"),
    }
    ExitCode::SUCCESS
}

fn cmd_inspect(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("usage: sedspec inspect <spec.json>");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let spec = match ExecutionSpecification::from_json(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("not a specification: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("device:   {} ({})", spec.device, spec.version);
    println!(
        "params:   {} vars, {} buffers, {} fn ptrs",
        spec.params.selected_var_count(),
        spec.params.buffers.len(),
        spec.params.fn_ptrs.len()
    );
    println!(
        "spec:     {} blocks, {} edges, {} commands",
        spec.block_count(),
        spec.edge_count(),
        spec.cmd_table.len()
    );
    println!(
        "training: {} rounds, {} sync points, {} merged branches",
        spec.stats.training_rounds,
        spec.stats.recovery.sync_points,
        spec.stats.reduce.merged_branches
    );
    for cfg in &spec.cfgs {
        println!("  {:<20} {:>3} blocks {:>3} edges", cfg.name, cfg.blocks.len(), cfg.edge_count());
    }
    ExitCode::SUCCESS
}

fn cmd_attack(args: &[String]) -> ExitCode {
    let Some(cve) = args.first().and_then(|a| parse_cve(a)) else {
        eprintln!("usage: sedspec attack <CVE-id> [--spec FILE] [--mode protection|enhancement]");
        eprintln!(
            "known: {}",
            Cve::all_with_known_miss().map(sedspec_workloads::attacks::Cve::id).join(", ")
        );
        return ExitCode::from(2);
    };
    let p = poc(cve);
    let mode = match flag(args, "--mode") {
        Some("enhancement") => WorkingMode::Enhancement,
        _ => WorkingMode::Protection,
    };
    let spec = match flag(args, "--spec") {
        Some(path) => match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|t| ExecutionSpecification::from_json(&t).map_err(|e| e.to_string()))
        {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot load spec: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => {
            eprintln!("training specification for {} at {} ...", p.device, p.qemu_version);
            train_spec(p.device, p.qemu_version, 60, 0x7a11)
        }
    };
    let mut device = build_device(p.device, p.qemu_version);
    device.set_limits(sedspec_dbl::interp::ExecLimits { max_steps: 50_000, ..Default::default() });
    let mut enforcer = EnforcingDevice::new(device, spec, mode);
    let mut ctx = VmContext::new(0x200000, 8192);
    for (i, step) in p.steps.iter().enumerate() {
        let Some(req) = apply_step(step, &mut ctx) else { continue };
        match enforcer.handle_io(&mut ctx, req) {
            IoVerdict::Halted { violations, executed } => {
                println!(
                    "{}: HALTED at step {i} ({} execution) — {:?}, alert {:?}",
                    p.cve.id(),
                    if executed { "after" } else { "before" },
                    violations.first().map(sedspec::checker::Violation::strategy),
                    highest_alert(&violations),
                );
                return ExitCode::SUCCESS;
            }
            IoVerdict::Warned { violations, .. } => {
                println!(
                    "{}: WARNED at step {i} — {:?}",
                    p.cve.id(),
                    violations.first().map(sedspec::checker::Violation::strategy)
                );
            }
            IoVerdict::DeviceFault { fault, .. } => {
                println!("{}: device fault without detection: {fault}", p.cve.id());
                return ExitCode::FAILURE;
            }
            IoVerdict::Allowed(_) => {}
        }
    }
    println!("{}: PoC completed without a halt (expected for the documented miss)", p.cve.id());
    ExitCode::SUCCESS
}

/// Every fourth tenant is compromised, cycling through the PoC list.
fn injected_cve(tenant: u64) -> Option<Cve> {
    if tenant % 4 == 3 {
        let all = Cve::all();
        Some(all[(tenant as usize / 4) % all.len()])
    } else {
        None
    }
}

fn cmd_fuzz(args: &[String]) -> ExitCode {
    let Some(kind) = flag(args, "--device").and_then(parse_device) else {
        eprintln!(
            "usage: sedspec fuzz --device <fdc|ehci|pcnet|sdhci|scsi> [--seed S] [--rounds N] \
             [--qemu-version V] [--corpus DIR] [--export DIR] [--json]"
        );
        return ExitCode::from(2);
    };
    let version = match flag(args, "--qemu-version") {
        None => QemuVersion::Patched,
        Some(v) => match sedspec_fuzz::parse_version(v) {
            Some(v) => v,
            None => {
                eprintln!("unknown version {v:?} (try: {})", {
                    let names: Vec<String> =
                        QemuVersion::all().iter().map(ToString::to_string).collect();
                    names.join(", ")
                });
                return ExitCode::from(2);
            }
        },
    };
    let opts = sedspec_fuzz::FuzzOptions {
        device: kind,
        version,
        seed: flag(args, "--seed").and_then(|s| s.parse().ok()).unwrap_or(1),
        rounds: flag(args, "--rounds").and_then(|s| s.parse().ok()).unwrap_or(20_000),
        corpus_dir: flag(args, "--corpus").map(std::path::PathBuf::from),
    };
    let out = match sedspec_fuzz::run_campaign(&opts) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("fuzz: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(dir) = flag(args, "--export") {
        let dir = std::path::Path::new(dir);
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("fuzz: create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
        for (name, body) in out.export_artifacts() {
            if let Err(e) = std::fs::write(dir.join(&name), body) {
                eprintln!("fuzz: write {name}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let report = &out.report;
    if args.iter().any(|a| a == "--json") {
        println!("{}", report.to_json());
    } else {
        println!(
            "fuzz {} @ {}  seed={} budget={} rounds",
            report.device, report.version, report.seed, report.round_budget
        );
        println!(
            "  executed {} inputs / {} rounds, corpus {} entries",
            report.inputs, report.rounds_run, report.corpus_size
        );
        println!(
            "  ES-block coverage {}/{} ({}.{}%)",
            report.covered_blocks,
            report.total_blocks,
            report.coverage_permille / 10,
            report.coverage_permille % 10
        );
        if report.findings.is_empty() {
            println!("  findings: none");
        } else {
            println!("  findings:");
            for f in &report.findings {
                println!(
                    "    {:<15} damage={:<10} violation={:<20} site={:?} ({} steps)",
                    f.class,
                    f.damage.as_deref().unwrap_or("-"),
                    f.violation.as_deref().unwrap_or("-"),
                    f.site,
                    f.steps_len
                );
            }
        }
        let suspect = report.dead_spec.iter().filter(|d| d.static_code.is_some()).count();
        println!(
            "  dead spec: {} unreached blocks ({} also flagged by deep static passes)",
            report.dead_spec.len(),
            suspect
        );
    }
    // CI contract: a false negative against this build means the spec
    // missed real device damage — fail loudly.
    if report.count(sedspec_fuzz::FindingClass::FalseNegative) > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn cmd_fleet(args: &[String]) -> ExitCode {
    let tenants: u64 = flag(args, "--tenants").and_then(|v| v.parse().ok()).unwrap_or(8);
    let shards: usize = flag(args, "--shards").and_then(|v| v.parse().ok()).unwrap_or(4);
    let cases: usize = flag(args, "--cases").and_then(|v| v.parse().ok()).unwrap_or(30);
    let batches: usize = flag(args, "--batches").and_then(|v| v.parse().ok()).unwrap_or(3);
    let seed: u64 = flag(args, "--seed").and_then(|v| v.parse().ok()).unwrap_or(0x7a11);

    // Publish one revision per channel the fleet needs: the five
    // patched devices, plus the vulnerable versions the injected PoCs
    // target.
    let registry = Arc::new(SpecRegistry::new());
    let mut channels: Vec<(DeviceKind, QemuVersion)> =
        DeviceKind::all().into_iter().map(|k| (k, QemuVersion::Patched)).collect();
    for t in 0..tenants {
        if let Some(cve) = injected_cve(t) {
            let p = poc(cve);
            if !channels.contains(&(p.device, p.qemu_version)) {
                channels.push((p.device, p.qemu_version));
            }
        }
    }
    eprintln!("training {} channels ({cases} cases each) ...", channels.len());
    for &(kind, version) in &channels {
        registry.publish(kind, version, train_spec(kind, version, cases, seed)).unwrap_or_else(
            |e| {
                eprintln!("{e}");
                std::process::exit(2)
            },
        );
    }

    // Host the tenants. A compromised tenant runs its PoC's device at
    // the vulnerable version; everything else is patched.
    let mut pool = EnforcementPool::new(shards, Arc::clone(&registry));
    for t in 0..tenants {
        let mut devices: Vec<(DeviceKind, QemuVersion)> =
            DeviceKind::all().into_iter().map(|k| (k, QemuVersion::Patched)).collect();
        if let Some(cve) = injected_cve(t) {
            let p = poc(cve);
            for slot in &mut devices {
                if slot.0 == p.device {
                    slot.1 = p.qemu_version;
                }
            }
        }
        if let Err(e) = pool.add_tenant(TenantConfig::new(t).with_devices(devices)) {
            eprintln!("cannot host tenant {t}: {e}");
            return ExitCode::FAILURE;
        }
    }
    eprintln!("hosting {tenants} tenants x 5 devices on {shards} shards");

    // Benign phase: every tenant replays training-suite cases on every
    // device in training order, so batch B is the suite's case B and
    // the device walks a path it was trained on from boot.
    let start = Instant::now();
    let mut benign_rounds = 0u64;
    let mut benign_flagged = 0u64;
    for batch in 0..batches {
        let mut tickets = Vec::new();
        for t in 0..tenants {
            let mut steps = Vec::new();
            for kind in DeviceKind::all() {
                let suite = training_suite(kind, cases, seed);
                steps.extend(suite[batch % suite.len()].clone());
            }
            match pool.submit_steps(TenantId(t), steps) {
                Ok(ticket) => tickets.push(ticket),
                Err(e) => {
                    eprintln!("submit failed for tenant {t}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        for ticket in tickets {
            let r = pool.wait(ticket).expect("shard serves the batch");
            benign_rounds += r.rounds;
            benign_flagged += r.flagged;
        }
    }
    let elapsed = start.elapsed();
    let throughput = benign_rounds as f64 / elapsed.as_secs_f64();
    println!(
        "benign phase: {benign_rounds} rounds in {elapsed:.2?} ({throughput:.0} rounds/s), {benign_flagged} flagged"
    );

    // Attack phase: the compromised tenants replay their PoCs twice —
    // the first halt is absorbed by rollback, the second quarantines.
    let mut attacked = Vec::new();
    for t in 0..tenants {
        if let Some(cve) = injected_cve(t) {
            attacked.push((t, cve));
            for _ in 0..2 {
                let steps = poc(cve).steps;
                let ticket = pool.submit_steps(TenantId(t), steps).expect("submit PoC");
                let _ = pool.wait(ticket).expect("shard serves the PoC");
            }
        }
    }
    for &(t, cve) in &attacked {
        println!("injected {} into tenant {t}", cve.id());
    }

    // Telemetry: the fleet report, the alert stream, and the
    // aggregate-equals-sum invariant.
    let report = pool.report();
    print!("{}", report.render());
    let alerts = pool.drain_alerts();
    println!("alert stream: {} events, tail:", alerts.len());
    let tail = &alerts[alerts.len().saturating_sub(5)..];
    print!("{}", sedspec_fleet::FleetReport::render_alerts(tail));

    let aggregate = report.aggregate();
    let mut summed = sedspec::enforce::EnforceStats::default();
    for t in report.tenants() {
        summed += t.stats;
    }
    if aggregate != summed {
        eprintln!("FAIL: aggregate stats diverge from per-tenant sum");
        return ExitCode::FAILURE;
    }
    println!("aggregate == sum of per-tenant stats: ok ({} rounds)", aggregate.rounds);

    let quarantined: Vec<u64> =
        report.tenants().iter().filter(|t| t.quarantined).map(|t| t.tenant.0).collect();
    let expected: Vec<u64> = attacked.iter().map(|&(t, _)| t).collect();
    if quarantined != expected {
        eprintln!("FAIL: quarantined {quarantined:?}, expected {expected:?}");
        return ExitCode::FAILURE;
    }
    if benign_flagged > 0 {
        eprintln!("FAIL: {benign_flagged} benign rounds flagged");
        return ExitCode::FAILURE;
    }
    println!(
        "quarantined {}/{} injected tenants; zero false halts on benign tenants",
        quarantined.len(),
        attacked.len()
    );
    ExitCode::SUCCESS
}

// ---------------------------------------------------- obs-report --

/// Runs a small fully observed fleet — a benign tenant and a
/// Venom-compromised tenant sharing one shard pair — then prints the
/// hub's operator report: hottest ES blocks (labelled from the
/// published specification), walk latency histograms, and the
/// flight-recorder forensics frozen at each flagged round.
fn cmd_obs_report(args: &[String]) -> ExitCode {
    use sedspec_fleet::FleetReport;
    use sedspec_obs::ObsHub;

    let cases: usize = flag(args, "--cases").and_then(|v| v.parse().ok()).unwrap_or(30);
    let top: usize = flag(args, "--top").and_then(|v| v.parse().ok()).unwrap_or(5);
    let seed = 0x7a11;
    let kind = DeviceKind::Fdc;
    let version = QemuVersion::V2_3_0; // the Venom-vulnerable FDC

    let hub = Arc::new(ObsHub::new());
    let registry = Arc::new(SpecRegistry::new());
    registry.attach_obs(&hub);
    eprintln!("training {kind}/{version} ({cases} cases) ...");
    registry.publish(kind, version, train_spec(kind, version, cases, seed)).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2)
    });
    let spec = registry.current(kind, version).expect("just published").1;

    let mut pool = EnforcementPool::with_obs(2, Arc::clone(&registry), &hub);
    for t in 0..2u64 {
        if let Err(e) = pool.add_tenant(TenantConfig::new(t).with_devices(vec![(kind, version)])) {
            eprintln!("cannot host tenant {t}: {e}");
            return ExitCode::FAILURE;
        }
    }

    // Benign traffic on both tenants, then the Venom PoC grinds tenant
    // 1 through rollback into quarantine.
    let suite = training_suite(kind, cases, seed);
    for batch in 0..4 {
        for t in 0..2u64 {
            let steps = suite[(batch + t as usize) % suite.len()].clone();
            let ticket = pool.submit_steps(TenantId(t), steps).expect("submit benign batch");
            let _ = pool.wait(ticket).expect("shard serves the batch");
        }
    }
    let venom = poc(Cve::Cve2015_3456);
    for _ in 0..2 {
        let ticket = pool.submit_steps(TenantId(1), venom.steps.clone()).expect("submit PoC");
        let _ = pool.wait(ticket).expect("shard serves the PoC");
    }

    let alerts = pool.drain_alerts();
    println!("alert stream ({} events):", alerts.len());
    print!("{}", FleetReport::render_alerts(&alerts));

    // Labels come from the published specification's ES-CFG blocks.
    let resolve = move |device: &str, program: u32, block: u32| -> Option<String> {
        if device != spec.device {
            return None;
        }
        spec.cfgs
            .get(program as usize)
            .and_then(|c| c.blocks.get(block as usize))
            .map(|b| b.label.clone())
    };
    print!("{}", hub.render_report(top, &resolve));

    if args.iter().any(|a| a == "--metrics") {
        println!("--- prometheus exposition ---");
        print!("{}", hub.metrics().render_prometheus());
    }
    if args.iter().any(|a| a == "--trace") {
        println!("--- trace (json lines) ---");
        print!("{}", hub.trace_jsonl());
    }

    if hub.forensics().is_empty() {
        eprintln!("FAIL: the PoC left no flight-recorder records");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

// ------------------------------------------------- bench-checker --

/// One device's hot-path measurements for `BENCH_checker.json`.
#[derive(serde::Serialize)]
struct CheckerBenchRow {
    device: String,
    walk_interpreted_ns: f64,
    /// Amortized per-round cost of the batched walk (`walk_batch` over
    /// 256-round submissions, journal cleared once per batch) on the
    /// profile-guided compile — the number the enforcement pool's
    /// batched path actually pays.
    walk_compiled_ns: f64,
    /// Per-round cost of one `walk_round_fast` call (un-amortized),
    /// for comparison against the batched number.
    walk_compiled_single_ns: f64,
    walk_speedup: f64,
    enforced_interpreted_rounds_per_sec: f64,
    /// Enforced throughput through `handle_batch` (device execution
    /// included), the pool's hot path.
    enforced_compiled_rounds_per_sec: f64,
}

#[derive(serde::Serialize)]
struct CheckerBenchReport {
    note: String,
    /// Logical cores visible to the benchmarking host; contextualizes
    /// the fleet number (no multi-shard overlap on a single core).
    host_cores: usize,
    /// Present exactly when `host_cores == 1`: the fleet number then
    /// measures sequential shard execution, so no shard-overlap
    /// speedup claim is made.
    #[serde(skip_serializing_if = "Option::is_none")]
    fleet_caveat: Option<String>,
    devices: Vec<CheckerBenchRow>,
    walk_speedup_geomean: f64,
    fleet_rounds_per_sec: f64,
}

/// Median ns/op over `samples` timed batches of `iters` calls each.
fn median_ns(samples: usize, iters: u32, mut op: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                op();
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    times[times.len() / 2]
}

/// A routable single-round probe for `kind`: the first trained read
/// request (reads poll device status without re-arming a command, so
/// repeating one is a benign steady-state round).
fn bench_poll_request(kind: DeviceKind) -> sedspec_vmm::IoRequest {
    let device = build_device(kind, QemuVersion::Patched);
    training_suite(kind, 2, 0x7a11)
        .into_iter()
        .flatten()
        .find_map(|step| match step {
            sedspec::collect::TrainStep::Io(req)
                if req.direction == sedspec_vmm::IoDirection::Read
                    && device.route(&req).is_some() =>
            {
                Some(req)
            }
            _ => None,
        })
        .expect("training suite contains a routable read")
}

fn cmd_bench_checker(args: &[String]) -> ExitCode {
    use sedspec::checker::{BatchOutcome, EsChecker, NoSync};
    use sedspec::compiled::CompileOptions;
    use sedspec::enforce::Engine;
    use sedspec_obs::{ObsHub, ScopeInfo};

    let cases = flag(args, "--cases").and_then(|v| v.parse().ok()).unwrap_or(40);
    let samples = 31;
    let iters = 5000;
    /// Rounds per batched submission — the pool's default batch shape.
    const BATCH: usize = 256;
    /// Batched-walk submissions per timed sample (BATCH rounds each).
    const BATCH_ITERS: u32 = 24;

    let mut rows = Vec::new();
    for kind in DeviceKind::all() {
        eprintln!("benchmarking {kind} ...");
        let spec = train_spec(kind, QemuVersion::Patched, cases, 0x7a11);
        let device = build_device(kind, QemuVersion::Patched);
        let req = bench_poll_request(kind);
        let pi = device.route(&req).expect("poll request routes");

        let interp = EsChecker::new(spec.clone(), device.control.clone());
        let walk_interpreted_ns =
            median_ns(samples, iters, || drop(interp.walk_round(pi, &req, &mut NoSync)));

        // Profile-guided compile: warm the identity compile under an
        // obs sink, export the accumulated block heat, recompile with
        // hot successors laid out fall-through — the same feedback loop
        // `SpecRegistry::optimize_from_obs` runs in production.
        let hub = Arc::new(ObsHub::new());
        let mut warm = EsChecker::new(spec.clone(), device.control.clone());
        warm.set_sink(Some(hub.sink(ScopeInfo::device(kind.to_string()))));
        for _ in 0..512 {
            warm.walk_round_fast(pi, &req, &mut NoSync);
            warm.abort_round();
        }
        let profile = hub.heat_profile(&kind.to_string());
        let compiled = Arc::new(CompiledSpec::compile_with(
            Arc::new(spec.clone()),
            &CompileOptions { profile: Some(&profile) },
        ));

        let mut fast = EsChecker::from_compiled(Arc::clone(&compiled), device.control.clone());
        let walk_compiled_single_ns = median_ns(samples, iters, || {
            fast.walk_round_fast(pi, &req, &mut NoSync);
            fast.abort_round();
        });

        // Amortized batched walk: one journal commit boundary per BATCH
        // rounds, monomorphized no-sync dispatch, state-stable via the
        // whole-batch rollback.
        let batch_reqs: Vec<sedspec_vmm::IoRequest> = vec![req.clone(); BATCH];
        let mut batched = EsChecker::from_compiled(Arc::clone(&compiled), device.control.clone());
        let mut out = BatchOutcome::default();
        let walk_compiled_ns = median_ns(samples, BATCH_ITERS, || {
            batched.walk_batch(batch_reqs.iter().map(|r| (pi, r)), &mut out);
            assert!(out.stopper.is_none(), "poll batch walks clean");
            batched.abort_batch();
        }) / BATCH as f64;

        let mut enforcer = EnforcingDevice::new(
            build_device(kind, QemuVersion::Patched),
            spec.clone(),
            WorkingMode::Enhancement,
        )
        .with_engine(Engine::Interpreted);
        let mut ctx = VmContext::new(0x10000, 64);
        let interp_ns = median_ns(samples, iters, || drop(enforcer.handle_io(&mut ctx, &req)));

        // Enforced batched throughput: the pool's hot path — batched
        // pre-walk, then device execution per committed round.
        let mut enf = EnforcingDevice::new_compiled(
            build_device(kind, QemuVersion::Patched),
            Arc::clone(&compiled),
            WorkingMode::Enhancement,
        );
        let mut ctx2 = VmContext::new(0x10000, 64);
        let req_refs: Vec<&sedspec_vmm::IoRequest> = batch_reqs.iter().collect();
        let mut verdicts = Vec::with_capacity(BATCH);
        let enforced_ns = median_ns(samples, BATCH_ITERS, || {
            verdicts.clear();
            let mut consumed = 0;
            while consumed < req_refs.len() {
                let n = enf.handle_batch(&mut ctx2, &req_refs[consumed..], &mut verdicts);
                assert!(n > 0, "batch consumes");
                consumed += n;
            }
        }) / BATCH as f64;

        rows.push(CheckerBenchRow {
            device: kind.to_string(),
            walk_interpreted_ns,
            walk_compiled_ns,
            walk_compiled_single_ns,
            walk_speedup: walk_interpreted_ns / walk_compiled_ns,
            enforced_interpreted_rounds_per_sec: 1e9 / interp_ns,
            enforced_compiled_rounds_per_sec: 1e9 / enforced_ns,
        });
    }

    // Fleet throughput: four FDC tenants on one shard sharing the
    // publish-time compiled spec.
    eprintln!("benchmarking fleet throughput ...");
    let registry = Arc::new(SpecRegistry::new());
    registry
        .publish(
            DeviceKind::Fdc,
            QemuVersion::Patched,
            train_spec(DeviceKind::Fdc, QemuVersion::Patched, cases, 0x7a11),
        )
        .expect("benign spec passes the publish gate");
    let mut pool = EnforcementPool::new(1, Arc::clone(&registry));
    for t in 0..4u64 {
        pool.add_tenant(
            TenantConfig::new(t).with_devices(vec![(DeviceKind::Fdc, QemuVersion::Patched)]),
        )
        .expect("tenant hosts");
    }
    let batch: Vec<sedspec_vmm::IoRequest> =
        (0..256).map(|_| bench_poll_request(DeviceKind::Fdc)).collect();
    let start = Instant::now();
    let mut fleet_rounds = 0u64;
    for _ in 0..20 {
        let tickets: Vec<_> = (0..4u64)
            .map(|t| pool.submit_batch(TenantId(t), batch.clone()).expect("submit"))
            .collect();
        for ticket in tickets {
            fleet_rounds += pool.wait(ticket).expect("batch completes").rounds;
        }
    }
    let fleet_rounds_per_sec = fleet_rounds as f64 / start.elapsed().as_secs_f64();

    let walk_speedup_geomean =
        (rows.iter().map(|r| r.walk_speedup.ln()).sum::<f64>() / rows.len() as f64).exp();
    let host_cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let fleet_caveat = (host_cores == 1).then(|| {
        "host has a single core: fleet_rounds_per_sec measures serialized \
         shard turns, not multi-shard overlap; treat it as a lower bound \
         and do not compare it across hosts with different core counts"
            .to_string()
    });
    let report = CheckerBenchReport {
        note: "median-of-31 timed batches per point; walk_compiled_ns is the \
               amortized per-round cost of 256-round walk_batch submissions \
               on a profile-guided compile (walk_compiled_single_ns keeps \
               the old one-call-per-round shape for comparison); the \
               compiled walk has a near-constant per-round floor, so its \
               advantage grows with spec size (smallest on FDC, largest on \
               SDHCI/EHCI)"
            .into(),
        host_cores,
        fleet_caveat,
        devices: rows,
        walk_speedup_geomean,
        fleet_rounds_per_sec,
    };

    // Text report on stderr so `--out`/stdout stay machine-readable.
    eprintln!();
    eprintln!(
        "{:<8} {:>12} {:>12} {:>12} {:>9} {:>14} {:>14}",
        "device", "interp ns", "batched ns", "single ns", "speedup", "enf interp/s", "enf batch/s"
    );
    for r in &report.devices {
        eprintln!(
            "{:<8} {:>12.1} {:>12.1} {:>12.1} {:>8.2}x {:>14.0} {:>14.0}",
            r.device,
            r.walk_interpreted_ns,
            r.walk_compiled_ns,
            r.walk_compiled_single_ns,
            r.walk_speedup,
            r.enforced_interpreted_rounds_per_sec,
            r.enforced_compiled_rounds_per_sec,
        );
    }
    eprintln!(
        "geomean walk speedup: {:.2}x; fleet: {:.0} rounds/s across {} core(s)",
        report.walk_speedup_geomean, report.fleet_rounds_per_sec, report.host_cores
    );
    if let Some(caveat) = &report.fleet_caveat {
        eprintln!("caveat: {caveat}");
    }

    // Regression guard: compare against a committed baseline report. The
    // baseline may predate fields added since, so parse it untyped.
    if let Some(path) = flag(args, "--check-against") {
        let baseline: serde_json::Value = match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|t| serde_json::from_str_value(&t).map_err(|e| e.to_string()))
        {
            Ok(v) => v,
            Err(e) => {
                eprintln!("cannot load baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let Some(base_geomean) = baseline.get("walk_speedup_geomean").and_then(|v| match v {
            serde_json::Value::F64(f) => Some(*f),
            serde_json::Value::U64(u) => Some(*u as f64),
            serde_json::Value::I64(i) => Some(*i as f64),
            _ => None,
        }) else {
            eprintln!("baseline {path} lacks walk_speedup_geomean");
            return ExitCode::FAILURE;
        };
        // 15% tolerance: the speedup is a same-process ratio, so it is
        // immune to absolute clock differences, but shared runners still
        // jitter it low double-digit percent run to run; observed spread
        // on identical binaries is ~13%.
        let floor = base_geomean * 0.85;
        if report.walk_speedup_geomean < floor {
            eprintln!(
                "REGRESSION: walk_speedup_geomean {:.3} < 85% of baseline {:.3} (floor {:.3})",
                report.walk_speedup_geomean, base_geomean, floor
            );
            return ExitCode::FAILURE;
        }
        eprintln!(
            "baseline check ok: geomean {:.3} >= floor {:.3} (baseline {:.3})",
            report.walk_speedup_geomean, floor, base_geomean
        );
    }

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    match flag(args, "--out") {
        Some(path) => {
            if let Err(e) = std::fs::write(path, json + "\n") {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }
    ExitCode::SUCCESS
}

/// One reviewed-and-accepted finding pattern from `--allow FILE`.
///
/// The file is a JSON array whose entries are either bare code strings
/// (legacy form, matches every finding with that code) or objects
/// `{"code": "SA201", "device": "fdc", "contains": "command 0x4",
///   "rationale": "..."}` where `device` and `contains` narrow the
/// match and `rationale` documents the review (ignored by the tool).
struct AllowEntry {
    code: String,
    device: Option<String>,
    contains: Option<String>,
}

impl AllowEntry {
    fn matches(&self, report_device: &str, d: &sedspec_analysis::Diagnostic) -> bool {
        self.code == d.code
            && self.device.as_deref().is_none_or(|dev| dev == report_device)
            && self.contains.as_deref().is_none_or(|needle| d.message.contains(needle))
    }
}

fn parse_allowlist(text: &str) -> Result<Vec<AllowEntry>, String> {
    use serde_json::Value;
    let v = serde_json::from_str_value(text).map_err(|e| e.to_string())?;
    let Value::Seq(items) = v else {
        return Err("allowlist must be a JSON array".to_string());
    };
    let mut out = Vec::new();
    for item in &items {
        match item {
            Value::Str(code) => {
                out.push(AllowEntry { code: code.clone(), device: None, contains: None });
            }
            Value::Map(_) => {
                let Some(Value::Str(code)) = item.get("code") else {
                    return Err("allowlist object entry needs a string \"code\"".to_string());
                };
                let field = |k: &str| match item.get(k) {
                    Some(Value::Str(s)) => Some(s.clone()),
                    _ => None,
                };
                out.push(AllowEntry {
                    code: code.clone(),
                    device: field("device"),
                    contains: field("contains"),
                });
            }
            _ => {
                return Err(
                    "allowlist entries must be code strings or {code, ...} objects".to_string()
                );
            }
        }
    }
    Ok(out)
}

fn cmd_lint_spec(args: &[String]) -> ExitCode {
    let json_out = args.iter().any(|a| a == "--json");
    let all = args.iter().any(|a| a == "--all-devices");
    let deep = args.iter().any(|a| a == "--deep");
    let deny_warnings = args.iter().any(|a| a == "--deny-warnings");
    let cases = flag(args, "--cases").and_then(|v| v.parse().ok()).unwrap_or(60);
    let seed = flag(args, "--seed").and_then(|v| v.parse().ok()).unwrap_or(0x7a11);
    let version = match flag(args, "--version") {
        Some(v) => {
            match QemuVersion::all().into_iter().find(|q| q.to_string().eq_ignore_ascii_case(v)) {
                Some(q) => q,
                None => {
                    eprintln!("unknown QEMU version '{v}' (try: patched, v2.3.0, ...)");
                    return ExitCode::from(2);
                }
            }
        }
        None => QemuVersion::Patched,
    };
    // Findings CI has reviewed and accepted. Errors outside this list
    // always block; with --deny-warnings, unlisted warnings block too.
    let allow: Vec<AllowEntry> = match flag(args, "--allow") {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match parse_allowlist(&text) {
                Ok(entries) => entries,
                Err(e) => {
                    eprintln!("malformed allowlist {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => Vec::new(),
    };

    let mut reports: Vec<AnalysisReport> = Vec::new();
    if let Some(path) = flag(args, "--spec") {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let spec = match ExecutionSpecification::from_json(&text) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot parse {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        reports.push(if deep { analyze_deep_full(&spec) } else { analyze_full(&spec) });
    } else {
        let kinds: Vec<DeviceKind> = if all {
            DeviceKind::all().into_iter().collect()
        } else {
            match flag(args, "--device").and_then(parse_device) {
                Some(k) => vec![k],
                None => {
                    eprintln!(
                        "usage: sedspec lint-spec [--device D | --all-devices | --spec FILE] \
                         [--version V] [--deep] [--deny-warnings] [--json] [--cases N] \
                         [--seed S] [--allow FILE]"
                    );
                    return ExitCode::from(2);
                }
            }
        };
        for kind in kinds {
            eprintln!("training {kind}/{version} ({cases} cases) ...");
            let spec = train_spec(kind, version, cases, seed);
            let device = build_device(kind, version);
            let compiled = CompiledSpec::compile(Arc::new(spec.clone()));
            let ctx = AnalysisContext::full(&device, &compiled);
            reports.push(if deep { analyze_deep(&spec, &ctx) } else { analyze(&spec, &ctx) });
        }
    }

    let blocks = |severity: Severity| {
        severity == Severity::Error || (deny_warnings && severity == Severity::Warning)
    };
    let blocking: Vec<String> = reports
        .iter()
        .flat_map(|r| {
            r.diagnostics
                .iter()
                .filter(|d| blocks(d.severity))
                .filter(|d| !allow.iter().any(|a| a.matches(&r.device, d)))
        })
        .map(sedspec_analysis::Diagnostic::render)
        .collect();
    if json_out {
        println!("{}", serde_json::to_string_pretty(&reports).expect("reports serialize"));
    } else {
        for r in &reports {
            print!("{}", r.render_human());
        }
    }
    if blocking.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!("lint-spec: {} blocking finding(s):", blocking.len());
        for line in blocking {
            eprintln!("  {line}");
        }
        ExitCode::FAILURE
    }
}

// --------------------------------------------------- spec-diff --

/// Resolves a spec-diff operand: a path to a spec JSON file, or a
/// `device@version` pair trained deterministically on the spot.
fn resolve_spec_operand(
    arg: &str,
    cases: usize,
    seed: u64,
) -> Result<ExecutionSpecification, String> {
    if let Some((dev, ver)) = arg.split_once('@') {
        if let Some(kind) = parse_device(dev) {
            let version = QemuVersion::all()
                .into_iter()
                .find(|q| q.to_string().eq_ignore_ascii_case(ver))
                .ok_or_else(|| format!("unknown QEMU version '{ver}' in '{arg}'"))?;
            eprintln!("training {kind}/{version} ({cases} cases) ...");
            return Ok(train_spec(kind, version, cases, seed));
        }
    }
    let text = std::fs::read_to_string(arg).map_err(|e| format!("cannot read {arg}: {e}"))?;
    ExecutionSpecification::from_json(&text).map_err(|e| format!("cannot parse {arg}: {e}"))
}

/// `sedspec spec-diff <A> <B>`: semantic revision diff between two
/// specifications, each given as a spec JSON file or `device@version`
/// (trained with the same deterministic defaults as `train`). Exits 1
/// when the diff contains loosening entries, so CI can gate on it.
fn cmd_spec_diff(args: &[String]) -> ExitCode {
    let json_out = args.iter().any(|a| a == "--json");
    let cases = flag(args, "--cases").and_then(|v| v.parse().ok()).unwrap_or(60);
    let seed = flag(args, "--seed").and_then(|v| v.parse().ok()).unwrap_or(0x7a11);
    let positional: Vec<&String> = {
        let mut skip = false;
        args.iter()
            .filter(|a| {
                if skip {
                    skip = false;
                    return false;
                }
                if matches!(a.as_str(), "--cases" | "--seed") {
                    skip = true;
                    return false;
                }
                !a.starts_with("--")
            })
            .collect()
    };
    let [old_arg, new_arg] = positional.as_slice() else {
        eprintln!(
            "usage: sedspec spec-diff <OLD> <NEW> [--json] [--cases N] [--seed S]\n\
             each operand is a spec JSON file or device@version (e.g. fdc@v2.3.0)"
        );
        return ExitCode::from(2);
    };
    let old = match resolve_spec_operand(old_arg, cases, seed) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let new = match resolve_spec_operand(new_arg, cases, seed) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let delta = diff(&old, &new);
    if json_out {
        println!("{}", delta.to_json());
    } else {
        print!("{}", delta.render_human());
    }
    if delta.has_loosening() {
        eprintln!("spec-diff: delta contains loosening entries");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

// ------------------------------------------------------- chaos --

/// Replays a fault plan against a mixed fleet and prints the recovery
/// report. The report on stdout is byte-identical for a given plan;
/// latency medians go to stderr where wall-clock noise belongs.
fn cmd_chaos(args: &[String]) -> ExitCode {
    use sedspec_chaos::{run_chaos, ChaosConfig, FaultPlan};

    let mut plan = match flag(args, "--plan") {
        Some(path) => match FaultPlan::load(path) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("cannot load plan: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => FaultPlan::empty(0),
    };
    if let Some(seed) = flag(args, "--seed").and_then(|v| v.parse().ok()) {
        plan.seed = seed;
    }
    let defaults = ChaosConfig::default();
    let cfg = ChaosConfig {
        tenants: flag(args, "--tenants").and_then(|v| v.parse().ok()).unwrap_or(defaults.tenants),
        shards: flag(args, "--shards").and_then(|v| v.parse().ok()).unwrap_or(defaults.shards),
        batches: flag(args, "--batches").and_then(|v| v.parse().ok()).unwrap_or(defaults.batches),
        cases: flag(args, "--cases").and_then(|v| v.parse().ok()).unwrap_or(defaults.cases),
        ..defaults
    };
    eprintln!(
        "chaos: {} tenants on {} shards, {} rounds, {} plan rules, seed {}",
        cfg.tenants,
        cfg.shards,
        cfg.batches,
        plan.rules.len(),
        plan.seed
    );
    let (report, mut latencies_us) = run_chaos(&plan, &cfg);
    print!("{}", report.render());
    if latencies_us.is_empty() {
        eprintln!("recovery latency: no batch needed a retry");
    } else {
        latencies_us.sort_unstable();
        let median = latencies_us[latencies_us.len() / 2];
        let worst = latencies_us[latencies_us.len() - 1];
        eprintln!(
            "recovery latency over {} retried batches: median {median} us, worst {worst} us",
            latencies_us.len()
        );
    }
    if report.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

// ---------------------------------------------------- serve / ctl --

fn parse_version(name: &str) -> Option<QemuVersion> {
    QemuVersion::all().into_iter().find(|v| v.to_string().eq_ignore_ascii_case(name))
}

/// Every value of a repeatable flag, in order.
fn multi_flag<'a>(args: &'a [String], name: &str) -> Vec<&'a str> {
    args.iter()
        .enumerate()
        .filter(|(_, a)| *a == name)
        .filter_map(|(i, _)| args.get(i + 1))
        .map(String::as_str)
        .collect()
}

/// Runs the enforcement-as-a-service daemon until a `ctl shutdown`.
fn cmd_serve(args: &[String]) -> ExitCode {
    use sedspecd::{AuthConfig, Daemon, DaemonConfig, RateLimitConfig};
    use std::path::PathBuf;

    let Some(store) = flag(args, "--store") else {
        eprintln!(
            "usage: sedspec serve --store DIR (--socket PATH | --tcp ADDR) [--shards N] \
             [--admin-token T] [--tenant-token TOKEN=ID] [--rate-capacity N --rate-refill N] \
             [--compact-every N] [--window-ms MS]"
        );
        return ExitCode::from(2);
    };
    let mut config = DaemonConfig::new(store);
    config.socket = flag(args, "--socket").map(PathBuf::from);
    config.tcp = flag(args, "--tcp").map(String::from);
    if config.socket.is_none() && config.tcp.is_none() {
        eprintln!("serve: need --socket PATH or --tcp ADDR");
        return ExitCode::from(2);
    }
    config.shards = flag(args, "--shards").and_then(|v| v.parse().ok()).unwrap_or(2);
    config.compact_every = flag(args, "--compact-every").and_then(|v| v.parse().ok()).unwrap_or(0);
    config.window_ms =
        flag(args, "--window-ms").and_then(|v| v.parse().ok()).unwrap_or(config.window_ms);
    config.auth = AuthConfig {
        admin_tokens: multi_flag(args, "--admin-token").into_iter().map(String::from).collect(),
        tenant_tokens: multi_flag(args, "--tenant-token")
            .into_iter()
            .filter_map(|pair| {
                let (token, id) = pair.split_once('=')?;
                Some((token.to_string(), id.parse().ok()?))
            })
            .collect(),
    };
    let capacity = flag(args, "--rate-capacity").and_then(|v| v.parse().ok()).unwrap_or(0);
    let refill = flag(args, "--rate-refill").and_then(|v| v.parse().ok()).unwrap_or(capacity);
    config.rate = RateLimitConfig { capacity, refill_per_sec: refill };

    let hub = Arc::new(sedspec_obs::ObsHub::new());
    let daemon = match Daemon::new(config, hub) {
        Ok(d) => Arc::new(d),
        Err(e) => {
            eprintln!("serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    let warm = daemon.warm_stats();
    eprintln!(
        "sedspecd: warm-loaded {} revisions, {} tenants, alert seq {}{}",
        warm.revisions,
        warm.tenants,
        warm.alert_seq,
        if warm.replay_clean { "" } else { " (salvaged a damaged WAL tail)" }
    );
    for skipped in &warm.skipped {
        eprintln!("sedspecd: skipped: {skipped}");
    }
    eprintln!("sedspecd: serving");
    match daemon.run() {
        Ok(()) => {
            eprintln!("sedspecd: shut down cleanly (store compacted)");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("serve: {e}");
            ExitCode::FAILURE
        }
    }
}

fn ctl_connect(args: &[String]) -> Result<sedspecd::CtlClient, String> {
    use std::path::Path;
    let token = flag(args, "--token").map(String::from);
    let connected = if let Some(path) = flag(args, "--socket") {
        sedspecd::CtlClient::connect_unix(Path::new(path))
    } else if let Some(addr) = flag(args, "--tcp") {
        sedspecd::CtlClient::connect_tcp(addr)
    } else {
        return Err("ctl needs --socket PATH or --tcp ADDR".into());
    };
    connected.map(|c| c.with_auth(token)).map_err(|e| e.to_string())
}

/// `sedspec ctl fleet --json` output shape.
#[derive(serde::Serialize)]
struct FleetStatusOut {
    alert_seq: u64,
    quarantined: usize,
    degraded: usize,
    report: sedspec_fleet::FleetReport,
    recent_alerts: Vec<sedspec_fleet::telemetry::AlertEvent>,
}

/// Renders one watch frame as a human-readable log line.
fn render_watch_frame(frame: &sedspecd::WatchFrame) -> String {
    use sedspecd::WatchEvent;
    match &frame.event {
        WatchEvent::Alert { alert } => format!("[{:>6}] ALERT    {alert}", frame.seq),
        WatchEvent::HealthChanged { transition } => format!(
            "[{:>6}] HEALTH   tenant-{} {} -> {} ({})",
            frame.seq, transition.tenant, transition.from, transition.to, transition.reason
        ),
        WatchEvent::Window { report } => {
            let mut line = format!("[{:>6}] WINDOW   tick {}", frame.seq, report.tick);
            for t in &report.tenants {
                let _ = std::fmt::Write::write_fmt(
                    &mut line,
                    format_args!(
                        " | tenant-{}: {:.1} r/s, {} alert(s), p99 {} us",
                        t.tenant,
                        t.round_rate,
                        t.alerts,
                        t.walk_p99_ns / 1000
                    ),
                );
            }
            line
        }
        WatchEvent::Forensic { summary } => format!(
            "[{:>6}] FORENSIC tenant-{} {} {}: {}",
            frame.seq,
            summary.tenant.map_or_else(|| "?".to_string(), |t| t.to_string()),
            summary.device,
            summary.verdict,
            summary.violation
        ),
    }
}

/// `sedspec ctl watch`: attach to the daemon's live event stream.
fn cmd_ctl_watch(client: sedspecd::CtlClient, rest: &[String]) -> ExitCode {
    use sedspecd::proto::ProtoError;

    let tenant = flag(rest, "--tenant").and_then(|v| v.parse().ok());
    let cursor = flag(rest, "--cursor").and_then(|v| v.parse().ok());
    let json = rest.iter().any(|a| a == "--json");
    let max_events: Option<u64> = flag(rest, "--max-events").and_then(|v| v.parse().ok());
    let for_ms: Option<u64> = flag(rest, "--for-ms").and_then(|v| v.parse().ok());

    let mut stream = match client.watch(cursor, tenant) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ctl watch: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(c) = cursor {
        if stream.earliest > c + 1 {
            eprintln!(
                "ctl watch: events {}..{} already evicted from the ring; resuming at {}",
                c + 1,
                stream.earliest - 1,
                stream.earliest
            );
        }
    }
    eprintln!(
        "watching (cursor {}, ring holds {}..{}); ctrl-c to detach",
        stream.resume, stream.earliest, stream.latest
    );
    let deadline =
        for_ms.map(|ms| std::time::Instant::now() + std::time::Duration::from_millis(ms));
    let mut delivered: u64 = 0;
    loop {
        if max_events.is_some_and(|m| delivered >= m) {
            return ExitCode::SUCCESS;
        }
        if deadline.is_some_and(|d| std::time::Instant::now() >= d) {
            return ExitCode::SUCCESS;
        }
        match stream.next_frame() {
            Ok(frame) => {
                if json {
                    match serde_json::to_string(&frame) {
                        Ok(line) => println!("{line}"),
                        Err(e) => {
                            eprintln!("ctl watch: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                } else {
                    println!("{}", render_watch_frame(&frame));
                }
                delivered += 1;
            }
            Err(sedspecd::ClientError::Proto(ProtoError::Closed)) => {
                eprintln!("ctl watch: daemon closed the stream (resume cursor {})", stream.resume);
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("ctl watch: {e} (resume cursor {})", stream.resume);
                return ExitCode::FAILURE;
            }
        }
    }
}

/// Renders one `ctl top` refresh.
fn render_top(
    health: &sedspecd::proto::ServerHealth,
    window: Option<&sedspec_obs::WindowReport>,
    states: &[sedspec_obs::TenantHealth],
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "sedspecd {} | tenants {} ({} quarantined, {} degraded) | shards {}/{} | watchers {} | \
         requests {} | trace drops {}",
        health.server,
        health.tenants,
        health.quarantined,
        health.degraded,
        health.shards_alive,
        health.shards,
        health.watchers,
        health.requests,
        health.trace_dropped
    );
    let Some(report) = window else {
        let _ = writeln!(out, "  (no telemetry tick yet)");
        return out;
    };
    let _ = writeln!(
        out,
        "  tick {:>5}  {:<10} {:>9} {:>9} {:>7} {:>7} {:>9} {:>9}",
        report.tick, "TENANT", "STATE", "ROUNDS/S", "ALERTS", "ABORTS", "P50(us)", "P99(us)"
    );
    for t in &report.tenants {
        let state = states
            .iter()
            .find(|s| s.tenant == t.tenant)
            .map_or_else(|| "?".to_string(), |s| s.state.to_string());
        let _ = writeln!(
            out,
            "              tenant-{:<3} {:>9} {:>9.1} {:>7} {:>7} {:>9} {:>9}",
            t.tenant,
            state,
            t.round_rate,
            t.alerts,
            t.aborts,
            t.walk_p50_ns / 1000,
            t.walk_p99_ns / 1000
        );
    }
    out
}

/// `sedspec ctl top`: periodic health + windowed-telemetry renderer.
fn cmd_ctl_top(mut client: sedspecd::CtlClient, rest: &[String]) -> ExitCode {
    let interval: u64 = flag(rest, "--interval-ms").and_then(|v| v.parse().ok()).unwrap_or(1000);
    let iterations: u64 = flag(rest, "--iterations").and_then(|v| v.parse().ok()).unwrap_or(0);
    let mut shown: u64 = 0;
    loop {
        match client.health() {
            Ok((health, window, states)) => {
                print!("{}", render_top(&health, window.as_ref(), &states));
            }
            Err(e) => {
                eprintln!("ctl top: {e}");
                return ExitCode::FAILURE;
            }
        }
        shown += 1;
        if iterations > 0 && shown >= iterations {
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(std::time::Duration::from_millis(interval.max(50)));
    }
}

/// The ctl client: one daemon request per invocation.
#[allow(clippy::too_many_lines)]
fn cmd_ctl(args: &[String]) -> ExitCode {
    use sedspec_fleet::FleetReport;

    let Some(command) = args.first().map(String::as_str) else {
        eprintln!(
            "usage: sedspec ctl <ping|publish|add-tenant|submit|status|fleet|quarantine|release|\
             metrics|doctor|watch|top|shutdown> [args] (--socket PATH | --tcp ADDR) [--token T]"
        );
        return ExitCode::from(2);
    };
    let rest = &args[1..];

    // Doctor runs even with no endpoint (store-only check), so it does
    // its own connection handling.
    if command == "doctor" {
        use std::path::Path;
        let report = sedspecd::run_doctor(
            flag(rest, "--socket").map(Path::new),
            flag(rest, "--tcp"),
            flag(rest, "--store").map(Path::new),
            flag(rest, "--token"),
        );
        match serde_json::to_string_pretty(&report) {
            Ok(json) => println!("{json}"),
            Err(e) => {
                eprintln!("ctl doctor: {e}");
                return ExitCode::FAILURE;
            }
        }
        return if report.healthy { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }

    let mut client = match ctl_connect(rest) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("ctl: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Watch upgrades the connection to a stream and consumes the
    // client; top loops Health polls. Both manage their own lifetime.
    if command == "watch" {
        return cmd_ctl_watch(client, rest);
    }
    if command == "top" {
        return cmd_ctl_top(client, rest);
    }
    let outcome: Result<(), String> = match command {
        "ping" => client
            .ping()
            .map(|(server, protocol)| println!("pong: sedspecd {server} (protocol {protocol})"))
            .map_err(|e| e.to_string()),
        "publish" => {
            let Some(kind) = rest.first().and_then(|a| parse_device(a)) else {
                eprintln!(
                    "usage: sedspec ctl publish <device> [--version V] [--spec FILE] \
                     [--allow-loosening] ..."
                );
                return ExitCode::from(2);
            };
            let version =
                flag(rest, "--version").and_then(parse_version).unwrap_or(QemuVersion::Patched);
            let json = match flag(rest, "--spec") {
                Some(path) => match std::fs::read_to_string(path) {
                    Ok(text) => text,
                    Err(e) => {
                        eprintln!("cannot read {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                },
                None => {
                    let cases = flag(rest, "--cases").and_then(|v| v.parse().ok()).unwrap_or(40);
                    let seed = flag(rest, "--seed").and_then(|v| v.parse().ok()).unwrap_or(0x7a11);
                    eprintln!("training {kind}/{version} ({cases} cases) ...");
                    train_spec(kind, version, cases, seed).to_json()
                }
            };
            let allow_loosening = rest.iter().any(|a| a == "--allow-loosening");
            client
                .publish_spec_with(kind, version, json, allow_loosening)
                .map(|(key, epoch, changelog)| {
                    println!("published {key} (epoch {epoch}): {changelog}");
                })
                .map_err(|e| e.to_string())
        }
        "add-tenant" => {
            let Some(tenant) = rest.first().and_then(|a| a.parse::<u64>().ok()) else {
                eprintln!("usage: sedspec ctl add-tenant <id> [--version V] [--device D]...");
                return ExitCode::from(2);
            };
            let version =
                flag(rest, "--version").and_then(parse_version).unwrap_or(QemuVersion::Patched);
            let devices: Vec<(DeviceKind, QemuVersion)> = {
                let named: Vec<DeviceKind> =
                    multi_flag(rest, "--device").into_iter().filter_map(parse_device).collect();
                if named.is_empty() {
                    DeviceKind::all().into_iter().map(|k| (k, version)).collect()
                } else {
                    named.into_iter().map(|k| (k, version)).collect()
                }
            };
            let mode = match flag(rest, "--mode") {
                Some("enhancement") => WorkingMode::Enhancement,
                _ => WorkingMode::Protection,
            };
            let config = TenantConfig::new(tenant).with_devices(devices).with_mode(mode);
            client
                .add_tenant(config)
                .map(|t| println!("hosted tenant-{t}"))
                .map_err(|e| e.to_string())
        }
        "submit" => {
            let Some(tenant) = rest.first().and_then(|a| a.parse::<u64>().ok()) else {
                eprintln!("usage: sedspec ctl submit <tenant> (--cve CVE | --benign --device D)");
                return ExitCode::from(2);
            };
            let steps = if let Some(id) = flag(rest, "--cve") {
                let Some(cve) = parse_cve(id) else {
                    eprintln!("unknown CVE {id} (try `sedspec cves`)");
                    return ExitCode::from(2);
                };
                poc(cve).steps
            } else if rest.iter().any(|a| a == "--benign") {
                let kind = flag(rest, "--device").and_then(parse_device).unwrap_or(DeviceKind::Fdc);
                let cases = flag(rest, "--cases").and_then(|v| v.parse().ok()).unwrap_or(10);
                let seed = flag(rest, "--seed").and_then(|v| v.parse().ok()).unwrap_or(0x7a11);
                training_suite(kind, cases, seed).into_iter().flatten().collect()
            } else {
                eprintln!("submit: need --cve CVE or --benign");
                return ExitCode::from(2);
            };
            client
                .submit(tenant, steps)
                .and_then(|report| {
                    serde_json::to_string_pretty(&report)
                        .map(|json| println!("{json}"))
                        .map_err(|e| sedspecd::ClientError::Unexpected(e.to_string()))
                })
                .map_err(|e| e.to_string())
        }
        "status" => {
            let Some(tenant) = rest.first().and_then(|a| a.parse::<u64>().ok()) else {
                eprintln!("usage: sedspec ctl status <tenant>");
                return ExitCode::from(2);
            };
            client
                .tenant_status(tenant)
                .and_then(|status| {
                    serde_json::to_string_pretty(&status)
                        .map(|json| println!("{json}"))
                        .map_err(|e| sedspecd::ClientError::Unexpected(e.to_string()))
                })
                .map_err(|e| e.to_string())
        }
        "fleet" => client
            .fleet_status()
            .and_then(|(report, alert_seq, recent_alerts)| {
                if rest.iter().any(|a| a == "--json") {
                    let out = FleetStatusOut {
                        alert_seq,
                        quarantined: report.quarantined_count(),
                        degraded: report.degraded_count(),
                        report,
                        recent_alerts,
                    };
                    serde_json::to_string_pretty(&out)
                        .map(|json| println!("{json}"))
                        .map_err(|e| sedspecd::ClientError::Unexpected(e.to_string()))
                } else {
                    print!("{}", report.render());
                    println!("alert seq {alert_seq}");
                    print!("{}", FleetReport::render_alerts(&recent_alerts));
                    Ok(())
                }
            })
            .map_err(|e| e.to_string()),
        "quarantine" | "release" => {
            let Some(tenant) = rest.first().and_then(|a| a.parse::<u64>().ok()) else {
                eprintln!("usage: sedspec ctl {command} <tenant>");
                return ExitCode::from(2);
            };
            let on = command == "quarantine";
            client
                .set_quarantine(tenant, on)
                .map(|was| {
                    println!(
                        "tenant-{tenant}: quarantined {} (was {})",
                        if on { "on" } else { "off" },
                        if was { "on" } else { "off" }
                    );
                })
                .map_err(|e| e.to_string())
        }
        "metrics" => client.metrics().map(|text| print!("{text}")).map_err(|e| e.to_string()),
        "shutdown" => {
            client.shutdown().map(|()| println!("daemon shutting down")).map_err(|e| e.to_string())
        }
        other => {
            eprintln!("ctl: unknown command {other}");
            return ExitCode::from(2);
        }
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("ctl {command}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("train") => cmd_train(&args[1..]),
        Some("inspect") => cmd_inspect(&args[1..]),
        Some("attack") => cmd_attack(&args[1..]),
        Some("fuzz") => cmd_fuzz(&args[1..]),
        Some("fleet") => cmd_fleet(&args[1..]),
        Some("bench-checker") => cmd_bench_checker(&args[1..]),
        Some("obs-report") => cmd_obs_report(&args[1..]),
        Some("lint-spec") => cmd_lint_spec(&args[1..]),
        Some("spec-diff") => cmd_spec_diff(&args[1..]),
        Some("chaos") => cmd_chaos(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("ctl") => cmd_ctl(&args[1..]),
        Some("devices") => {
            for k in DeviceKind::all() {
                println!("{k}");
            }
            ExitCode::SUCCESS
        }
        Some("cves") => {
            for c in Cve::all_with_known_miss() {
                let p = poc(c);
                println!("{:<15} {:<9} {}", c.id(), p.device.to_string(), p.qemu_version);
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!(
                "usage: sedspec <train|inspect|attack|fuzz|fleet|bench-checker|obs-report|lint-spec|spec-diff|chaos|serve|ctl|devices|cves> ..."
            );
            ExitCode::from(2)
        }
    }
}
