//! Regenerates the paper's tables and figures.
//!
//! ```text
//! reproduce [table1|table2|table3|fig3|fig4|fig5|all] [--hours N]
//! ```
//!
//! `table2`/`table3` run the long-horizon experiments; `--hours N` scales
//! the horizon (default 30, i.e. the paper's full Table II run).

use sedspec_bench::experiments::{
    fig5, storage_figures, table1, table2_device, table3_cases, table3_summaries, Table2Row,
};
use sedspec_bench::report;
use sedspec_devices::DeviceKind;

fn run_table2(hours: u64) -> Vec<Table2Row> {
    let marks = [hours.div_ceil(3), 2 * hours / 3, hours];
    DeviceKind::all().into_iter().map(|k| table2_device(k, marks)).collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args.first().map_or("all", String::as_str);
    let hours: u64 = args
        .iter()
        .position(|a| a == "--hours")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(30);

    match what {
        "table1" => print!("{}", report::render_table1(&table1())),
        "table2" => {
            let marks = [hours.div_ceil(3), 2 * hours / 3, hours];
            let rows = run_table2(hours);
            print!("{}", report::render_table2_at(&rows, marks));
        }
        "table3" => {
            let rows = run_table2(hours);
            let cases = table3_cases();
            let sums = table3_summaries(&rows);
            print!("{}", report::render_table3(&cases, &sums));
        }
        "fig3" => print!("{}", report::render_fig3(&storage_figures())),
        "fig4" => print!("{}", report::render_fig4(&storage_figures())),
        "fig5" => print!("{}", report::render_fig5(&fig5())),
        "ablation" => {
            let rows: Vec<_> =
                DeviceKind::all().into_iter().map(sedspec_bench::ablation::ablation_row).collect();
            print!("{}", sedspec_bench::ablation::render(&rows));
            println!("\nFalse positives vs training size (fixed 60-case benign eval):");
            for kind in DeviceKind::all() {
                let curve =
                    sedspec_bench::ablation::training_size_curve(kind, &[4, 16, 64, 120], 60);
                let series: Vec<String> = curve.iter().map(|(n, fp)| format!("{n}:{fp}")).collect();
                println!("  {:<9} {}", kind.to_string(), series.join("  "));
            }
        }
        "all" => {
            print!("{}", report::render_table1(&table1()));
            println!();
            let rows = run_table2(hours);
            print!("{}", report::render_table2(&rows));
            println!();
            let cases = table3_cases();
            let sums = table3_summaries(&rows);
            print!("{}", report::render_table3(&cases, &sums));
            println!();
            let storage = storage_figures();
            print!("{}", report::render_fig3(&storage));
            println!();
            print!("{}", report::render_fig4(&storage));
            println!();
            print!("{}", report::render_fig5(&fig5()));
        }
        other => {
            eprintln!("unknown experiment {other:?}; expected table1|table2|table3|fig3|fig4|fig5|ablation|all");
            std::process::exit(2);
        }
    }
}
