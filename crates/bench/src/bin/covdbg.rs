//! Coverage-gap inspector: lists the runtime CFG edges the fuzzer
//! reaches that the training suite never covered, per device — the
//! residual that keeps effective coverage below 100% (paper Table III).
//!
//! ```text
//! cargo run --release -p sedspec-bench --bin covdbg
//! ```

use sedspec_bench::experiments::trained_spec;
use sedspec_devices::{build_device, DeviceKind, QemuVersion};
use sedspec_workloads::fuzz::{fuzz_device, FuzzConfig};

fn main() {
    for kind in DeviceKind::all() {
        let (_, train_itc) = trained_spec(kind, QemuVersion::Patched);
        let fuzz = fuzz_device(kind, &FuzzConfig { cases: 300, ..FuzzConfig::default() });
        let device = build_device(kind, QemuVersion::Patched);
        let layout = device.layout();
        println!(
            "== {kind}: train edges {} fuzz edges {}",
            train_itc.edge_count(),
            fuzz.itc.edge_count()
        );
        let mut missing = 0;
        for ((from, to), stats) in fuzz.itc.edges() {
            if !train_itc.has_edge(from, to) {
                missing += 1;
                if missing <= 12 {
                    let f = layout.resolve(from);
                    let t = layout.resolve(to);
                    let name = |r: Option<(usize, sedspec_dbl::ir::BlockId)>| match r {
                        Some((p, b)) => format!(
                            "{}:{}",
                            device.programs()[p].name,
                            device.programs()[p].block(b).label
                        ),
                        None => "?".into(),
                    };
                    println!(
                        "  missing {:?} {} -> {} (hits {})",
                        stats.kind,
                        name(f),
                        name(t),
                        stats.hits
                    );
                }
            }
        }
        println!("  total missing: {missing}");
    }
}
