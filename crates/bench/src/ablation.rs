//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. **Control-flow reduction** on/off — spec size and walk cost;
//! 2. **Data-dependency recovery** vs always-sync — sync-point count and
//!    how much checking stays pre-execution;
//! 3. **Command access table** on/off — detection of unknown commands;
//! 4. **Trace filtering** on/off — packet-stream volume per round.

use sedspec::checker::{CheckConfig, WorkingMode};
use sedspec::collect::apply_step;
use sedspec::deprecover::RecoveryMode;
use sedspec::enforce::EnforcingDevice;
use sedspec::pipeline::{train_script, TrainingConfig};
use sedspec_devices::{build_device, DeviceKind, QemuVersion};
use sedspec_trace::packet::encode;
use sedspec_trace::tracer::{TraceConfig, Tracer};
use sedspec_vmm::VmContext;
use sedspec_workloads::generators::{eval_case, training_suite};
use sedspec_workloads::InteractionMode;

/// One ablation row for a device.
#[derive(Debug, Clone, serde::Serialize)]
pub struct AblationRow {
    /// Device.
    pub device: DeviceKind,
    /// `(edges with reduction, edges without)`.
    pub reduce_edges: (usize, usize),
    /// Conditional blocks merged by reduction.
    pub merged: usize,
    /// `(sync points with recovery, sync points in always-sync mode)`.
    pub sync_points: (u64, u64),
    /// Fraction of benign rounds fully checked *before* device execution,
    /// `(recovery, always-sync)`.
    pub precheck_ratio: (f64, f64),
    /// Unknown-command detections on rare traffic `(scope on, scope off)`.
    pub unknown_cmd_flags: (u64, u64),
    /// Mean trace bytes per round `(filtered, unfiltered)`.
    pub trace_bytes: (f64, f64),
}

fn precheck_ratio(kind: DeviceKind, config: &TrainingConfig) -> (u64, f64) {
    let mut device = build_device(kind, QemuVersion::Patched);
    let mut ctx = VmContext::new(0x200000, 8192);
    let suite = training_suite(kind, 40, 0x7a11);
    let spec = train_script(&mut device, &mut ctx, &suite, config).unwrap();
    let syncs = spec.stats.recovery.sync_points as u64;
    let mut enforcer = EnforcingDevice::new(
        build_device(kind, QemuVersion::Patched),
        spec,
        WorkingMode::Enhancement,
    );
    let mut ctx = VmContext::new(0x200000, 8192);
    for seed in 0..10u64 {
        let case = eval_case(kind, InteractionMode::Sequential, 0.0, seed);
        for step in &case {
            let Some(req) = apply_step(step, &mut ctx) else { continue };
            let _ = enforcer.handle_io(&mut ctx, req);
        }
    }
    let total = enforcer.stats.precheck_complete + enforcer.stats.synced_rounds;
    (syncs, enforcer.stats.precheck_complete as f64 / total.max(1) as f64)
}

fn unknown_cmd_flags(kind: DeviceKind, scope: bool) -> u64 {
    let mut device = build_device(kind, QemuVersion::Patched);
    let mut ctx = VmContext::new(0x200000, 8192);
    let suite = training_suite(kind, 40, 0x7a11);
    let spec = train_script(&mut device, &mut ctx, &suite, &TrainingConfig::default()).unwrap();
    let config = CheckConfig { command_scope: scope, ..CheckConfig::default() };
    let mut enforcer = EnforcingDevice::new(
        build_device(kind, QemuVersion::Patched),
        spec,
        WorkingMode::Enhancement,
    )
    .with_config(config);
    let mut ctx = VmContext::new(0x200000, 8192);
    let mut flags = 0;
    for seed in 0..6u64 {
        let case = eval_case(kind, InteractionMode::Sequential, 1.0, seed);
        for step in &case {
            let Some(req) = apply_step(step, &mut ctx) else { continue };
            if enforcer.handle_io(&mut ctx, req).flagged() {
                flags += 1;
            }
        }
    }
    flags
}

fn trace_bytes(kind: DeviceKind, filter: bool) -> f64 {
    let mut device = build_device(kind, QemuVersion::Patched);
    let mut ctx = VmContext::new(0x200000, 8192);
    let config = TraceConfig { filter_to_device_range: filter, trace_kernel: false };
    let layout = device.layout().clone();
    let mut tracer = Tracer::with_config(layout, config);
    let suite = training_suite(kind, 6, 9);
    let mut bytes = 0usize;
    let mut rounds = 0usize;
    for case in &suite {
        for step in case {
            let Some(req) = apply_step(step, &mut ctx) else { continue };
            let Some(pi) = device.route(req) else { continue };
            tracer.begin(pi, device.programs()[pi].entry);
            let _ = device.handle_io_hooked(&mut ctx, req, &mut tracer);
            bytes += encode(&tracer.end()).len();
            rounds += 1;
        }
    }
    bytes as f64 / rounds.max(1) as f64
}

/// Runs all four ablations for one device.
pub fn ablation_row(kind: DeviceKind) -> AblationRow {
    // 1. Reduction.
    let spec_with = {
        let mut d = build_device(kind, QemuVersion::Patched);
        let mut ctx = VmContext::new(0x200000, 8192);
        train_script(
            &mut d,
            &mut ctx,
            &training_suite(kind, 40, 0x7a11),
            &TrainingConfig::default(),
        )
        .unwrap()
    };
    let spec_without = {
        let mut d = build_device(kind, QemuVersion::Patched);
        let mut ctx = VmContext::new(0x200000, 8192);
        let cfg = TrainingConfig { reduce: false, ..TrainingConfig::default() };
        train_script(&mut d, &mut ctx, &training_suite(kind, 40, 0x7a11), &cfg).unwrap()
    };

    // 2. Recovery.
    let (sync_recover, ratio_recover) = precheck_ratio(kind, &TrainingConfig::default());
    let (sync_always, ratio_always) = precheck_ratio(
        kind,
        &TrainingConfig { recovery: RecoveryMode::AlwaysSync, ..TrainingConfig::default() },
    );

    // 3. Command scope.
    let flags_on = unknown_cmd_flags(kind, true);
    let flags_off = unknown_cmd_flags(kind, false);

    // 4. Trace filtering.
    let filtered = trace_bytes(kind, true);
    let unfiltered = trace_bytes(kind, false);

    AblationRow {
        device: kind,
        reduce_edges: (spec_with.edge_count(), spec_without.edge_count()),
        merged: spec_with.stats.reduce.merged_branches,
        sync_points: (sync_recover, sync_always),
        precheck_ratio: (ratio_recover, ratio_always),
        unknown_cmd_flags: (flags_on, flags_off),
        trace_bytes: (filtered, unfiltered),
    }
}

/// False positives on a fixed evaluation set as training size grows —
/// the paper's §VIII remedy quantified: "utilization of extensive test
/// cases to formulate precise execution specifications".
pub fn training_size_curve(
    kind: DeviceKind,
    sizes: &[usize],
    eval_cases: u64,
) -> Vec<(usize, u64)> {
    sizes
        .iter()
        .map(|&n| {
            let mut device = build_device(kind, QemuVersion::Patched);
            let mut ctx = VmContext::new(0x200000, 8192);
            let suite = training_suite(kind, n, 0x7a11);
            let spec =
                train_script(&mut device, &mut ctx, &suite, &TrainingConfig::default()).unwrap();
            let mut enforcer = EnforcingDevice::new(
                build_device(kind, QemuVersion::Patched),
                spec,
                WorkingMode::Enhancement,
            );
            let mut ctx = VmContext::new(0x200000, 8192);
            let mut fps = 0;
            for seed in 0..eval_cases {
                let mode = InteractionMode::all()[(seed % 3) as usize];
                let case = eval_case(kind, mode, 0.0, 40_000 + seed);
                let mut flagged = false;
                for step in &case {
                    let Some(req) = apply_step(step, &mut ctx) else { continue };
                    flagged |= enforcer.handle_io(&mut ctx, req).flagged();
                }
                if flagged {
                    fps += 1;
                }
            }
            (n, fps)
        })
        .collect()
}

/// Renders the ablation table.
pub fn render(rows: &[AblationRow]) -> String {
    let mut s = String::from("Ablations (design choices from DESIGN.md)\n");
    s.push_str(&format!(
        "{:<10} {:>13} {:>7} {:>13} {:>17} {:>13} {:>17}\n",
        "Device",
        "edges w/wo",
        "merged",
        "syncs rc/as",
        "precheck rc/as",
        "cmd flags on/off",
        "trace B flt/raw"
    ));
    for r in rows {
        s.push_str(&format!(
            "{:<10} {:>6}/{:<6} {:>7} {:>6}/{:<6} {:>8.0}%/{:<7.0}% {:>8}/{:<7} {:>8.1}/{:<8.1}\n",
            r.device.to_string(),
            r.reduce_edges.0,
            r.reduce_edges.1,
            r.merged,
            r.sync_points.0,
            r.sync_points.1,
            r.precheck_ratio.0 * 100.0,
            r.precheck_ratio.1 * 100.0,
            r.unknown_cmd_flags.0,
            r.unknown_cmd_flags.1,
            r.trace_bytes.0,
            r.trace_bytes.1,
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_training_means_fewer_false_positives() {
        // The §VIII claim, quantified: growing the training corpus never
        // increases (and eventually eliminates) benign flags on a fixed
        // evaluation set.
        let curve = training_size_curve(DeviceKind::UsbEhci, &[4, 16, 64], 30);
        assert!(curve[0].1 >= curve[1].1 && curve[1].1 >= curve[2].1, "{curve:?}");
        assert!(curve[0].1 > 0, "a tiny corpus must leave gaps: {curve:?}");
        assert_eq!(curve[2].1, 0, "a broad corpus covers the benign space: {curve:?}");
    }

    #[test]
    fn ablations_move_in_the_expected_directions() {
        let r = ablation_row(DeviceKind::UsbEhci);
        assert!(r.reduce_edges.0 <= r.reduce_edges.1, "reduction never adds edges");
        assert!(r.sync_points.0 <= r.sync_points.1, "recovery never adds sync points");
        assert!(
            r.precheck_ratio.0 >= r.precheck_ratio.1,
            "recovery keeps more checking pre-execution"
        );
        assert!(r.trace_bytes.0 <= r.trace_bytes.1, "filtering never grows the trace");
        assert!(
            r.unknown_cmd_flags.0 >= r.unknown_cmd_flags.1,
            "command scope only adds detections"
        );
    }
}
