//! Experiment harness regenerating every table and figure of the paper.
//!
//! | Paper artifact | Function | Binary |
//! |---|---|---|
//! | Table I (parameter selection) | [`table1`] | `reproduce -- table1` |
//! | Table II (false positives over time) | [`table2`] | `reproduce -- table2` |
//! | Table III (case studies, FPR, coverage) | [`table3`] | `reproduce -- table3` |
//! | Figure 3 (storage throughput) | [`fig3`] | `reproduce -- fig3` |
//! | Figure 4 (storage latency) | [`fig4`] | `reproduce -- fig4` |
//! | Figure 5 (PCNet bandwidth + ping) | [`fig5`] | `reproduce -- fig5` |
//!
//! Absolute numbers differ from the paper (the substrate is a simulator,
//! not an i9-10900X running QEMU); the reproduction targets are the
//! *shapes*: sub-0.2% FPR, the per-CVE strategy ticks, ≥93% effective
//! coverage, <5% storage overhead and <10% network overhead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod experiments;
pub mod report;

pub use experiments::{fig3, fig4, fig5, table1, table2, table3};
