//! Text rendering of the experiment results in the paper's layout.

use crate::experiments::{Fig5Data, StoragePoint, Table1Row, Table2Row, Table3Row, Table3Summary};
use sedspec_workloads::attacks::poc;

/// Renders Table I.
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut s = String::from("Table I — Selection of Device State Parameters\n");
    for row in rows {
        s.push_str(&format!("\n[{}]  (related: {})\n", row.class, row.related));
        for (dev, names) in &row.examples {
            if names.is_empty() {
                continue;
            }
            let list = if names.len() > 6 {
                format!("{} … ({} total)", names[..6].join(", "), names.len())
            } else {
                names.join(", ")
            };
            s.push_str(&format!("  {:<9} {}\n", dev.to_string(), list));
        }
    }
    s
}

/// Renders Table II. `marks` are the cumulative hour checkpoints the
/// rows were sampled at (the paper's 10/20/30).
pub fn render_table2_at(rows: &[Table2Row], marks: [u64; 3]) -> String {
    let mut s = String::from("Table II — False Positives Over Time\n");
    s.push_str(&format!(
        "{:<10} {:>9} {:>9} {:>9} {:>12} {:>8}\n",
        "Device",
        format!("{} hours", marks[0]),
        format!("{} hours", marks[1]),
        format!("{} hours", marks[2]),
        "test cases",
        "FPR"
    ));
    for r in rows {
        s.push_str(&format!(
            "{:<10} {:>9} {:>9} {:>9} {:>12} {:>7.2}%\n",
            r.device.to_string(),
            r.fp_at[0],
            r.fp_at[1],
            r.fp_at[2],
            r.total_cases,
            r.fpr * 100.0
        ));
    }
    s
}

/// Renders Table II at the paper's 10/20/30-hour checkpoints.
pub fn render_table2(rows: &[Table2Row]) -> String {
    render_table2_at(rows, [10, 20, 30])
}

/// Renders Table III.
pub fn render_table3(cases: &[Table3Row], summaries: &[Table3Summary]) -> String {
    let tick = |b: bool| if b { "X" } else { " " };
    let mut s = String::from("Table III — Main results\n");
    s.push_str(&format!(
        "{:<10} {:<15} {:<8} {:^9} {:^9} {:^9}  expected / match\n",
        "Device", "CVE ID", "QEMU", "Param", "Indirect", "CondJump"
    ));
    for c in cases {
        let exp: String = c.expected.iter().map(|&b| if b { 'X' } else { '.' }).collect();
        let ok = c.detected == c.expected;
        s.push_str(&format!(
            "{:<10} {:<15} {:<8} {:^9} {:^9} {:^9}  {}        {}\n",
            c.device.to_string(),
            poc(c.cve).cve.id(),
            c.qemu_version.to_string(),
            tick(c.detected[0]),
            tick(c.detected[1]),
            tick(c.detected[2]),
            exp,
            if ok { "OK" } else { "MISMATCH" },
        ));
    }
    s.push('\n');
    s.push_str(&format!("{:<10} {:>8} {:>20}\n", "Device", "FPR", "Effective Coverage"));
    for m in summaries {
        s.push_str(&format!(
            "{:<10} {:>7.2}% {:>19.1}%\n",
            m.device.to_string(),
            m.fpr * 100.0,
            m.effective_coverage * 100.0
        ));
    }
    s
}

fn human_block(b: u64) -> String {
    if b >= 1 << 20 {
        format!("{}M", b >> 20)
    } else {
        format!("{}K", b >> 10)
    }
}

/// Renders Figure 3 (normalized throughput).
pub fn render_fig3(points: &[StoragePoint]) -> String {
    render_storage(points, true)
}

/// Renders Figure 4 (normalized latency).
pub fn render_fig4(points: &[StoragePoint]) -> String {
    render_storage(points, false)
}

fn render_storage(points: &[StoragePoint], throughput: bool) -> String {
    let mut s = if throughput {
        String::from("Figure 3 — Normalized throughput of storage devices (SEDSpec / native)\n")
    } else {
        String::from("Figure 4 — Normalized latency of storage devices (SEDSpec / native)\n")
    };
    for write in [false, true] {
        s.push_str(if write { "\n  [write]\n" } else { "\n  [read]\n" });
        let mut devices: Vec<_> =
            points.iter().filter(|p| p.write == write).map(|p| p.device).collect();
        devices.dedup();
        for dev in devices {
            let series: Vec<String> = points
                .iter()
                .filter(|p| p.device == dev && p.write == write)
                .map(|p| {
                    let v = if throughput { p.norm_throughput } else { p.norm_latency };
                    format!("{}:{:.3}", human_block(p.block), v)
                })
                .collect();
            s.push_str(&format!("  {:<9} {}\n", dev.to_string(), series.join("  ")));
        }
    }
    s
}

/// Renders Figure 5 (PCNet bandwidth and ping latency).
pub fn render_fig5(data: &Fig5Data) -> String {
    let mut s = String::from("Figure 5 — PCNet bandwidth benchmark\n");
    s.push_str(&format!(
        "{:<16} {:>12} {:>12} {:>10}\n",
        "Stream", "native Mb/s", "SEDSpec Mb/s", "overhead"
    ));
    for (label, raw, enf, ovh) in &data.bandwidth {
        s.push_str(&format!("{label:<16} {raw:>12.1} {enf:>12.1} {ovh:>9.1}%\n"));
    }
    s.push_str(&format!(
        "\nping: native {:.3} ms, SEDSpec {:.3} ms (+{:.1}%)\n",
        data.ping.0 / 1e6,
        data.ping.1 / 1e6,
        data.ping.2
    ));
    s
}
