//! Fleet pool scaling: one shard versus several at a fixed tenant count.
//!
//! Each iteration hosts eight three-device tenants on a fresh pool and
//! drives two benign batches through every tenant. Shards are OS
//! threads, so the multi-shard configuration overlaps checking work
//! across cores; on a single-core host the two configurations converge
//! to the same throughput plus channel overhead.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sedspec::pipeline::{train_script, TrainingConfig};
use sedspec_devices::{build_device, DeviceKind, QemuVersion};
use sedspec_fleet::pool::{EnforcementPool, TenantConfig, TenantId};
use sedspec_fleet::registry::SpecRegistry;
use sedspec_vmm::VmContext;
use sedspec_workloads::generators::training_suite;

const TENANTS: u64 = 8;
const BATCHES: usize = 2;
const CASES: usize = 6;
const SEED: u64 = 0x7a11;
const KINDS: [DeviceKind; 3] = [DeviceKind::Fdc, DeviceKind::Sdhci, DeviceKind::Scsi];

fn make_registry() -> Arc<SpecRegistry> {
    let registry = Arc::new(SpecRegistry::new());
    for kind in KINDS {
        let mut device = build_device(kind, QemuVersion::Patched);
        let mut ctx = VmContext::new(0x100000, 4096);
        let suite = training_suite(kind, CASES, SEED);
        let spec = train_script(&mut device, &mut ctx, &suite, &TrainingConfig::default()).unwrap();
        registry.publish(kind, QemuVersion::Patched, spec).unwrap();
    }
    registry
}

fn build_pool(shards: usize, registry: &Arc<SpecRegistry>) -> EnforcementPool {
    let pool = EnforcementPool::new(shards, Arc::clone(registry));
    for t in 0..TENANTS {
        let devices = KINDS.iter().map(|&k| (k, QemuVersion::Patched)).collect();
        pool.add_tenant(TenantConfig::new(t).with_devices(devices)).unwrap();
    }
    pool
}

fn run_batches(pool: &mut EnforcementPool) -> u64 {
    let mut rounds = 0;
    for batch in 0..BATCHES {
        let mut tickets = Vec::new();
        for t in 0..TENANTS {
            let mut steps = Vec::new();
            for kind in KINDS {
                let suite = training_suite(kind, CASES, SEED);
                steps.extend(suite[batch % suite.len()].clone());
            }
            tickets.push(pool.submit_steps(TenantId(t), steps).unwrap());
        }
        for ticket in tickets {
            let report = pool.wait(ticket).unwrap();
            assert!(!report.rejected && !report.quarantined);
            rounds += report.rounds;
        }
    }
    rounds
}

fn fleet_scaling(c: &mut Criterion) {
    let registry = make_registry();
    let mut group = c.benchmark_group("fleet");
    group.sample_size(10);
    for shards in [1usize, 4] {
        group.bench_function(format!("{shards}-shard/{TENANTS}-tenant"), |b| {
            b.iter_batched(
                || build_pool(shards, &registry),
                |mut pool| {
                    let rounds = run_batches(&mut pool);
                    (rounds, pool)
                },
                BatchSize::PerIteration,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, fleet_scaling);
criterion_main!(benches);
