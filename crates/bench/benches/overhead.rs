//! Wall-clock cost of enforcement: raw device emulation vs the same
//! device behind the ES-Checker, plus the bare checker walk.
//!
//! These are host-side microbenchmarks complementing the virtual-clock
//! figures of `reproduce fig3..fig5`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sedspec::checker::{NoSync, WorkingMode};
use sedspec::enforce::EnforcingDevice;
use sedspec_bench::experiments::trained_spec;
use sedspec_devices::{build_device, DeviceKind, QemuVersion};
use sedspec_vmm::{AddressSpace, IoRequest, VmContext};

fn fdc_status_poll() -> IoRequest {
    IoRequest::read(AddressSpace::Pmio, 0x3f4, 1)
}

fn bench_raw_device(c: &mut Criterion) {
    let mut group = c.benchmark_group("raw_device_io");
    group.sample_size(40);
    for kind in [DeviceKind::Fdc, DeviceKind::Sdhci] {
        let req = match kind {
            DeviceKind::Fdc => fdc_status_poll(),
            _ => IoRequest::read(AddressSpace::Mmio, 0x3024, 4),
        };
        group.bench_function(kind.name(), |b| {
            let mut device = build_device(kind, QemuVersion::Patched);
            let mut ctx = VmContext::new(0x10000, 64);
            b.iter(|| device.handle_io(&mut ctx, &req).unwrap());
        });
    }
    group.finish();
}

fn bench_enforced_device(c: &mut Criterion) {
    let mut group = c.benchmark_group("enforced_device_io");
    group.sample_size(20);
    for kind in [DeviceKind::Fdc, DeviceKind::Sdhci] {
        let req = match kind {
            DeviceKind::Fdc => fdc_status_poll(),
            _ => IoRequest::read(AddressSpace::Mmio, 0x3024, 4),
        };
        let (spec, _) = trained_spec(kind, QemuVersion::Patched);
        group.bench_function(kind.name(), |b| {
            let device = build_device(kind, QemuVersion::Patched);
            let mut enforcer = EnforcingDevice::new(device, spec.clone(), WorkingMode::Enhancement);
            let mut ctx = VmContext::new(0x10000, 64);
            b.iter(|| enforcer.handle_io(&mut ctx, &req));
        });
    }
    group.finish();
}

fn bench_checker_walk(c: &mut Criterion) {
    let mut group = c.benchmark_group("checker_walk");
    group.sample_size(30);
    let (spec, _) = trained_spec(DeviceKind::Fdc, QemuVersion::Patched);
    let device = build_device(DeviceKind::Fdc, QemuVersion::Patched);
    let checker = sedspec::checker::EsChecker::new(spec, device.control.clone());
    let req = fdc_status_poll();
    let pi = device.route(&req).unwrap();
    group.bench_function("fdc_status_poll", |b| {
        b.iter_batched(
            || (),
            |()| checker.walk_round(pi, &req, &mut NoSync),
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_raw_device, bench_enforced_device, bench_checker_walk);
criterion_main!(benches);
