//! Cost of the offline pipeline — tracing, decoding, specification
//! construction — and the ablations DESIGN.md calls out (control-flow
//! reduction, data-dependency recovery).

use criterion::{criterion_group, criterion_main, Criterion};
use sedspec::deprecover::RecoveryMode;
use sedspec::pipeline::{train_script, TrainingConfig};
use sedspec_devices::{build_device, DeviceKind, QemuVersion};
use sedspec_trace::decode::decode_run;
use sedspec_trace::itc_cfg::ItcCfg;
use sedspec_trace::tracer::Tracer;
use sedspec_vmm::{AddressSpace, IoRequest, VmContext};
use sedspec_workloads::generators::training_suite;

fn bench_trace_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace");
    group.sample_size(40);
    let device = build_device(DeviceKind::Fdc, QemuVersion::Patched);
    let layout = device.layout().clone();
    // Produce a representative packet stream once (a sector read).
    let mut dev = build_device(DeviceKind::Fdc, QemuVersion::Patched);
    let mut ctx = VmContext::new(0x10000, 64);
    let mut tracer = Tracer::new(layout.clone());
    let req = IoRequest::write(AddressSpace::Pmio, 0x3f5, 1, 0x08);
    let pi = dev.route(&req).unwrap();
    tracer.begin(pi, dev.programs()[pi].entry);
    dev.handle_io_hooked(&mut ctx, &req, &mut tracer).unwrap();
    let packets = tracer.end();

    group.bench_function("decode_run", |b| {
        let refs = device.program_refs();
        b.iter(|| decode_run(&refs, &layout, &packets).unwrap());
    });
    group.bench_function("itc_add_run", |b| {
        let refs = device.program_refs();
        let run = decode_run(&refs, &layout, &packets).unwrap();
        b.iter(|| {
            let mut itc = ItcCfg::new();
            itc.add_run(&layout, &run);
            itc.edge_count()
        });
    });
    group.finish();
}

fn bench_training(c: &mut Criterion) {
    let mut group = c.benchmark_group("spec_training");
    group.sample_size(10);
    let suite = training_suite(DeviceKind::Scsi, 10, 1);
    group.bench_function("scsi_10_cases", |b| {
        b.iter(|| {
            let mut device = build_device(DeviceKind::Scsi, QemuVersion::Patched);
            let mut ctx = VmContext::new(0x100000, 4096);
            train_script(&mut device, &mut ctx, &suite, &TrainingConfig::default()).unwrap()
        });
    });
    group.finish();
}

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_training");
    group.sample_size(10);
    let suite = training_suite(DeviceKind::Fdc, 10, 2);
    for (label, config) in [
        ("reduce_on_recover", TrainingConfig::default()),
        ("reduce_off", TrainingConfig { reduce: false, ..TrainingConfig::default() }),
        (
            "always_sync",
            TrainingConfig { recovery: RecoveryMode::AlwaysSync, ..TrainingConfig::default() },
        ),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut device = build_device(DeviceKind::Fdc, QemuVersion::Patched);
                let mut ctx = VmContext::new(0x100000, 4096);
                train_script(&mut device, &mut ctx, &suite, &config).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_trace_decode, bench_training, bench_ablations);
criterion_main!(benches);
