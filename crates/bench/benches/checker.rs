//! Hot-path cost of the specification walk: compiled versus interpreted.
//!
//! Three layers, matching where the compiled path changes the work:
//! the bare walk (per-round spec traversal, the tentpole), the enforced
//! device round (walk + device emulation + verdict plumbing), and fleet
//! round throughput (many tenants sharing one compiled spec). Numbers
//! feed `BENCH_checker.json` via `sedspec bench-checker`.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use sedspec::checker::{EsChecker, NoSync, WorkingMode};
use sedspec::enforce::{EnforcingDevice, Engine};
use sedspec_bench::experiments::trained_spec;
use sedspec_devices::{build_device, DeviceKind, QemuVersion};
use sedspec_fleet::pool::{EnforcementPool, TenantConfig, TenantId};
use sedspec_fleet::registry::SpecRegistry;
use sedspec_vmm::{AddressSpace, IoRequest, VmContext};

fn poll_request(kind: DeviceKind) -> IoRequest {
    match kind {
        DeviceKind::Fdc => IoRequest::read(AddressSpace::Pmio, 0x3f4, 1),
        _ => IoRequest::read(AddressSpace::Mmio, 0x3024, 4),
    }
}

/// The bare specification walk, no device: interpreted `walk_round`
/// (clones the shadow) versus compiled `walk_round_fast` + `abort_round`
/// (in-place walk, journal rollback — the abort is charged so the
/// comparison covers the full keep-state-stable cycle).
fn bench_walk(c: &mut Criterion) {
    let mut group = c.benchmark_group("walk");
    group.sample_size(60);
    for kind in [DeviceKind::Fdc, DeviceKind::Sdhci] {
        let (spec, _) = trained_spec(kind, QemuVersion::Patched);
        let device = build_device(kind, QemuVersion::Patched);
        let req = poll_request(kind);
        let pi = device.route(&req).unwrap();
        let checker = EsChecker::new(spec, device.control.clone());
        group.bench_function(format!("{kind}_interpreted"), |b| {
            b.iter(|| checker.walk_round(pi, &req, &mut NoSync));
        });
        let (spec, _) = trained_spec(kind, QemuVersion::Patched);
        let mut fast = EsChecker::new(spec, device.control.clone());
        group.bench_function(format!("{kind}_compiled"), |b| {
            b.iter(|| {
                let report = fast.walk_round_fast(pi, &req, &mut NoSync);
                fast.abort_round();
                report
            });
        });
    }
    group.finish();
}

/// Full enforced rounds per device (walk + emulation + verdict).
fn bench_enforced_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("enforced_round");
    group.sample_size(30);
    for kind in [DeviceKind::Fdc, DeviceKind::Sdhci] {
        let (spec, _) = trained_spec(kind, QemuVersion::Patched);
        let req = poll_request(kind);
        for engine in [Engine::Interpreted, Engine::Compiled] {
            let tag = match engine {
                Engine::Interpreted => "interpreted",
                Engine::Compiled => "compiled",
            };
            let device = build_device(kind, QemuVersion::Patched);
            let mut enforcer = EnforcingDevice::new(device, spec.clone(), WorkingMode::Enhancement)
                .with_engine(engine);
            let mut ctx = VmContext::new(0x10000, 64);
            group.bench_function(format!("{kind}_{tag}"), |b| {
                b.iter(|| enforcer.handle_io(&mut ctx, &req));
            });
        }
    }
    group.finish();
}

/// Instrumentation overhead on the enforced round: no sink at all
/// (the recorderless baseline), a disabled [`NoopSink`] (the
/// branch-cheap path that must stay within noise of the baseline), and
/// a live hub sink (full trace + metrics + timing cost, the price of
/// turning observability on).
fn bench_obs_overhead(c: &mut Criterion) {
    use sedspec_obs::{NoopSink, ObsHub, ScopeInfo};

    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(30);
    let kind = DeviceKind::Fdc;
    let (spec, _) = trained_spec(kind, QemuVersion::Patched);
    let req = poll_request(kind);
    for tag in ["disabled", "noop_sink", "hub_sink"] {
        let device = build_device(kind, QemuVersion::Patched);
        let mut enforcer = EnforcingDevice::new(device, spec.clone(), WorkingMode::Enhancement);
        match tag {
            "disabled" => {}
            "noop_sink" => enforcer.set_sink(Some(Arc::new(NoopSink))),
            _ => {
                let hub = Arc::new(ObsHub::new());
                enforcer.set_sink(Some(hub.sink(ScopeInfo::device("FDC"))));
            }
        }
        let mut ctx = VmContext::new(0x10000, 64);
        group.bench_function(tag, |b| {
            b.iter(|| enforcer.handle_io(&mut ctx, &req));
        });
    }
    group.finish();
}

/// Fleet round throughput: four single-device tenants on one shard, all
/// sharing the registry's publish-time compiled spec.
fn bench_fleet_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_rounds");
    group.sample_size(10);
    let registry = Arc::new(SpecRegistry::new());
    let (spec, _) = trained_spec(DeviceKind::Fdc, QemuVersion::Patched);
    registry.publish(DeviceKind::Fdc, QemuVersion::Patched, spec).unwrap();
    let mut pool = EnforcementPool::new(1, Arc::clone(&registry));
    for t in 0..4u64 {
        pool.add_tenant(
            TenantConfig::new(t).with_devices(vec![(DeviceKind::Fdc, QemuVersion::Patched)]),
        )
        .unwrap();
    }
    let batch: Vec<IoRequest> = (0..64).map(|_| poll_request(DeviceKind::Fdc)).collect();
    group.bench_function("4_tenants_x64_rounds", |b| {
        b.iter(|| {
            let tickets: Vec<_> =
                (0..4u64).map(|t| pool.submit_batch(TenantId(t), batch.clone()).unwrap()).collect();
            for ticket in tickets {
                let report = pool.wait(ticket).unwrap();
                assert_eq!(report.rounds, 64);
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_walk, bench_enforced_round, bench_obs_overhead, bench_fleet_rounds);
criterion_main!(benches);
