//! Differential proof that the fault seam is inert when no fault
//! fires: an `EnforcementPool` with a zero-rule `FaultPlan` attached
//! must be verdict-, stats-, alert- and telemetry-identical to a plain
//! pool over random tenant/device/mode batches — including a registry
//! hot-swap and a CVE attack stream mid-run.

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;
use sedspec::checker::WorkingMode;
use sedspec::collect::TrainStep;
use sedspec::pipeline::{train_script, TrainingConfig};
use sedspec::spec::ExecutionSpecification;
use sedspec_repro::chaos::{FaultInjector, FaultPlan};
use sedspec_repro::devices::{build_device, DeviceKind, QemuVersion};
use sedspec_repro::fleet::pool::{BatchReport, EnforcementPool, TenantConfig, TenantId};
use sedspec_repro::fleet::registry::SpecRegistry;
use sedspec_repro::fleet::{AlertEvent, FaultPoint, FleetReport};
use sedspec_repro::vmm::VmContext;
use sedspec_repro::workloads::attacks::{poc, Cve};
use sedspec_repro::workloads::generators::training_suite;

const SUITE_SEED: u64 = 11;
const CASES: usize = 4;

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Trained specs are the slow part; train each channel once per
/// process and publish clones into fresh registries per scenario.
fn cached_specs() -> &'static [(DeviceKind, QemuVersion, usize, ExecutionSpecification)] {
    static SPECS: OnceLock<Vec<(DeviceKind, QemuVersion, usize, ExecutionSpecification)>> =
        OnceLock::new();
    SPECS.get_or_init(|| {
        let channels = [
            (DeviceKind::Fdc, QemuVersion::Patched, CASES),
            (DeviceKind::Fdc, QemuVersion::Patched, CASES + 2), // hot-swap target
            (DeviceKind::Fdc, QemuVersion::V2_3_0, CASES),
            (DeviceKind::Sdhci, QemuVersion::Patched, CASES),
        ];
        channels
            .into_iter()
            .map(|(kind, version, cases)| {
                let mut device = build_device(kind, version);
                let mut ctx = VmContext::new(0x100000, 4096);
                let suite = training_suite(kind, cases, SUITE_SEED);
                let spec = train_script(&mut device, &mut ctx, &suite, &TrainingConfig::default())
                    .expect("benign suite trains");
                (kind, version, cases, spec)
            })
            .collect()
    })
}

fn publish(registry: &SpecRegistry, kind: DeviceKind, version: QemuVersion, cases: usize) {
    let spec = cached_specs()
        .iter()
        .find(|(k, v, c, _)| *k == kind && *v == version && *c == cases)
        .map(|(_, _, _, s)| s.clone())
        .expect("channel is cached");
    registry.publish(kind, version, spec).expect("benign spec passes the publish gate");
}

/// Scenario derived from `seed`: tenant count, per-tenant device sets
/// and modes, whether a hot-swap happens, and which tenant (if any)
/// runs a Venom PoC on the last round.
struct Scenario {
    tenants: u64,
    shards: usize,
    batches: usize,
    hotswap: bool,
    attacker: Option<u64>,
}

impl Scenario {
    fn derive(seed: u64) -> Self {
        let tenants = 2 + splitmix(seed) % 3; // 2..=4
        Scenario {
            tenants,
            shards: 1 + (splitmix(seed ^ 1) % 3) as usize, // 1..=3
            batches: 2 + (splitmix(seed ^ 2) % 2) as usize, // 2..=3
            hotswap: splitmix(seed ^ 3).is_multiple_of(2),
            attacker: splitmix(seed ^ 4).is_multiple_of(2).then(|| splitmix(seed ^ 5) % tenants),
        }
    }

    fn devices_for(&self, tenant: u64, seed: u64) -> Vec<(DeviceKind, QemuVersion)> {
        if self.attacker == Some(tenant) {
            return vec![(DeviceKind::Fdc, QemuVersion::V2_3_0)];
        }
        if splitmix(seed ^ tenant.rotate_left(17)).is_multiple_of(2) {
            vec![(DeviceKind::Fdc, QemuVersion::Patched), (DeviceKind::Sdhci, QemuVersion::Patched)]
        } else {
            vec![(DeviceKind::Fdc, QemuVersion::Patched)]
        }
    }

    fn mode_for(tenant: u64, seed: u64) -> WorkingMode {
        if splitmix(seed ^ tenant.rotate_left(29)).is_multiple_of(2) {
            WorkingMode::Protection
        } else {
            WorkingMode::Enhancement
        }
    }

    fn steps_for(&self, tenant: u64, round: usize) -> Vec<TrainStep> {
        if self.attacker == Some(tenant) && round + 1 == self.batches {
            return poc(Cve::Cve2015_3456).steps;
        }
        let mut steps = Vec::new();
        for (kind, _) in self.devices_for(tenant, 0xD1CE) {
            let suite = training_suite(kind, CASES, SUITE_SEED);
            steps.extend(suite[(tenant as usize + round) % suite.len()].clone());
        }
        steps
    }
}

/// Runs the scenario on a pool, optionally with the inert fault seam
/// attached, and returns everything observable.
fn run_pool(seed: u64, with_seam: bool) -> (Vec<BatchReport>, Vec<AlertEvent>, FleetReport) {
    let scenario = Scenario::derive(seed);
    let registry = Arc::new(SpecRegistry::new());
    publish(&registry, DeviceKind::Fdc, QemuVersion::Patched, CASES);
    publish(&registry, DeviceKind::Fdc, QemuVersion::V2_3_0, CASES);
    publish(&registry, DeviceKind::Sdhci, QemuVersion::Patched, CASES);

    let mut pool = EnforcementPool::new(scenario.shards, Arc::clone(&registry));
    if with_seam {
        let injector: Arc<dyn FaultPoint> = Arc::new(FaultInjector::new(FaultPlan::empty(seed)));
        pool = pool.with_faults(injector);
    }
    for t in 0..scenario.tenants {
        let cfg = TenantConfig::new(t)
            .with_devices(scenario.devices_for(t, 0xD1CE))
            .with_mode(Scenario::mode_for(t, 0xD1CE));
        pool.add_tenant(cfg).expect("tenant admits");
    }

    let mut reports = Vec::new();
    for round in 0..scenario.batches {
        if scenario.hotswap && round == 1 {
            publish(&registry, DeviceKind::Fdc, QemuVersion::Patched, CASES + 2);
        }
        // Serialized submit/wait keeps alert ordering deterministic so
        // the two runs are comparable event-for-event.
        for t in 0..scenario.tenants {
            let ticket = pool.submit_steps(TenantId(t), scenario.steps_for(t, round)).unwrap();
            reports.push(pool.wait(ticket).unwrap());
        }
    }
    let alerts = pool.drain_alerts();
    let fleet = pool.report();
    (reports, alerts, fleet)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    #[test]
    fn fault_free_plan_is_observationally_inert(seed in 0u64..5000) {
        let (plain_reports, plain_alerts, plain_fleet) = run_pool(seed, false);
        let (seam_reports, seam_alerts, seam_fleet) = run_pool(seed, true);
        prop_assert_eq!(
            &plain_reports,
            &seam_reports,
            "batch verdicts/stats must not change under an inert seam"
        );
        prop_assert_eq!(
            &plain_alerts,
            &seam_alerts,
            "the alert stream must not change under an inert seam"
        );
        prop_assert_eq!(
            plain_fleet,
            seam_fleet,
            "fleet telemetry must not change under an inert seam"
        );
        // Sanity: scenarios with an attacker really do exercise the
        // interesting paths.
        if Scenario::derive(seed).attacker.is_some() {
            prop_assert!(
                plain_reports.iter().any(|r| r.flagged > 0 || r.quarantined),
                "the scripted PoC must be detected in both runs"
            );
        }
    }
}
