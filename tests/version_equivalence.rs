//! Differential property: the vulnerable and patched device builds are
//! behaviourally identical on *benign* traffic. The `QemuVersion` knob
//! must change nothing but the defect paths — otherwise "training on the
//! vulnerable version" and "the patch removed the bug" would both be
//! suspect.

use sedspec::collect::{apply_step, TrainStep};
use sedspec_repro::devices::{build_device, DeviceKind, QemuVersion};
use sedspec_repro::vmm::VmContext;
use sedspec_repro::workloads::generators::training_suite;

fn replies_of(kind: DeviceKind, version: QemuVersion, suite: &[Vec<TrainStep>]) -> Vec<u64> {
    let mut device = build_device(kind, version);
    let mut ctx = VmContext::new(0x200000, 8192);
    let mut replies = Vec::new();
    for case in suite {
        for step in case {
            let Some(req) = apply_step(step, &mut ctx) else { continue };
            if device.route(req).is_none() {
                continue;
            }
            let out = device
                .handle_io(&mut ctx, req)
                .unwrap_or_else(|f| panic!("{kind}@{version}: benign traffic faulted: {f}"));
            if req.is_read() {
                replies.push(out.reply);
            }
        }
    }
    replies
}

#[test]
fn benign_behaviour_is_version_independent() {
    // The SCSI controller is excluded from exact reply equivalence: its
    // CVE-2015-5158 defect is *serving* reserved/unknown commands, so a
    // benign driver probe legitimately sees different status bytes on
    // the vulnerable build (sense data instead of an illegal-command
    // interrupt). Safety equivalence for it is asserted separately.
    for kind in DeviceKind::all().into_iter().filter(|&k| k != DeviceKind::Scsi) {
        let suite = training_suite(kind, 25, 0xd1ff);
        let patched = replies_of(kind, QemuVersion::Patched, &suite);
        for version in QemuVersion::all() {
            if version == QemuVersion::Patched {
                continue;
            }
            let vulnerable = replies_of(kind, version, &suite);
            assert_eq!(
                vulnerable, patched,
                "{kind}: benign replies differ between {version} and patched"
            );
        }
    }
}

#[test]
fn benign_traffic_is_safe_on_every_version() {
    // Even where benign-visible semantics differ (SCSI), benign traffic
    // must never corrupt state or fault on any version.
    for kind in DeviceKind::all() {
        let suite = training_suite(kind, 25, 0xd1ff);
        for version in QemuVersion::all() {
            let mut device = build_device(kind, version);
            let mut ctx = VmContext::new(0x200000, 8192);
            for case in &suite {
                for step in case {
                    let Some(req) = apply_step(step, &mut ctx) else { continue };
                    let out = device
                        .handle_io(&mut ctx, req)
                        .unwrap_or_else(|f| panic!("{kind}@{version}: fault on benign: {f}"));
                    assert_eq!(out.spills, 0, "{kind}@{version}: benign spill");
                }
            }
        }
    }
}

#[test]
fn benign_final_disk_state_is_version_independent() {
    // Storage contents written by benign traffic must also agree.
    for kind in [DeviceKind::Fdc, DeviceKind::Sdhci, DeviceKind::Scsi] {
        let suite = training_suite(kind, 15, 0xd15c);
        let run = |version: QemuVersion| {
            let mut device = build_device(kind, version);
            let mut ctx = VmContext::new(0x200000, 8192);
            for case in &suite {
                for step in case {
                    let Some(req) = apply_step(step, &mut ctx) else { continue };
                    let _ = device.handle_io(&mut ctx, req).unwrap();
                }
            }
            let mut image = Vec::new();
            for s in 0..64 {
                image.extend(ctx.disk.read_sector(s).unwrap());
            }
            image
        };
        let patched = run(QemuVersion::Patched);
        let oldest = run(QemuVersion::V2_3_0);
        assert_eq!(patched, oldest, "{kind}: disk images diverge");
    }
}
