//! Chaos containment tests: each fault kind is injected into a mixed
//! benign/CVE fleet, and three invariants must survive — no benign
//! tenant falsely halted, every compromised tenant still quarantined,
//! and the pool converged back to steady state within its retry
//! budget. Reports must be byte-identical for a fixed plan.

use sedspec_chaos::{run_chaos, ChaosConfig, FaultInjector, FaultPlan, FaultRule};
use sedspec_fleet::FaultKind;

fn small_cfg() -> ChaosConfig {
    ChaosConfig {
        tenants: 4, // tenant 3 is the CVE-compromised one
        shards: 2,
        batches: 5,
        cases: 4,
        suite_seed: 11,
        hotswap_at: Some(2),
    }
}

/// A single-rule plan guaranteed to fire `kind` at least once in the
/// small scenario. Faults aim at benign tenants (or unscoped sites):
/// injecting an engine failure into the CVE tenant would legitimately
/// downgrade its halts to warnings, which is the documented reason
/// chaos plans must not degrade tenants whose quarantine they assert.
fn plan_for(kind: FaultKind) -> FaultPlan {
    let rule = match kind {
        // Tenant 1's third submit (round 2) panics its worker.
        FaultKind::WorkerPanic => FaultRule::once_at(kind, Some(1), 2),
        // Tenant 0's second batch hits a compiled-engine fault.
        FaultKind::DeviceStepError => FaultRule::once_at(kind, Some(0), 1),
        // Fetch 6 = during the hot-swap refresh wave (4 admissions,
        // then refetches in tenant order).
        FaultKind::RegistryStall => FaultRule {
            kind,
            tenant: None,
            at: vec![6],
            probability: 0.0,
            stall_ms: 2,
            max_fires: 1,
        },
        // Fetch 5 = tenant 1's hot-swap refetch fails; its old
        // deployment keeps serving until the next batch retries.
        FaultKind::RegistryFail => FaultRule::once_at(kind, None, 5),
        // Tenant 2's fourth trace event is stalled.
        FaultKind::ObsSinkStall => FaultRule {
            kind,
            tenant: Some(2),
            at: vec![3],
            probability: 0.0,
            stall_ms: 1,
            max_fires: 1,
        },
        // Tenant 1's third submit is rejected as saturation.
        FaultKind::SubmitSaturated => FaultRule::once_at(kind, Some(1), 2),
    };
    FaultPlan { seed: 1000 + kind.index() as u64, rules: vec![rule] }
}

#[test]
fn every_fault_kind_is_contained_and_recovered_from() {
    let cfg = small_cfg();
    for kind in FaultKind::ALL {
        let plan = plan_for(kind);
        let (report, _) = run_chaos(&plan, &cfg);
        assert!(
            report.faults_injected[kind.index()] >= 1,
            "{kind}: the plan must actually fire (fired {:?})",
            report.faults_injected
        );
        assert_eq!(
            report.benign_false_halts(),
            0,
            "{kind}: no benign tenant may be falsely halted\n{}",
            report.render()
        );
        assert!(
            report.cve_contained(),
            "{kind}: the compromised tenant must still be quarantined\n{}",
            report.render()
        );
        assert!(
            report.converged(),
            "{kind}: the pool must converge within the retry budget\n{}",
            report.render()
        );
        assert!(report.ok());
        if kind == FaultKind::WorkerPanic {
            assert!(
                report.worker_restarts.iter().sum::<u32>() >= 1,
                "a worker panic must be answered by a supervised restart"
            );
        }
    }
}

#[test]
fn same_seed_produces_byte_identical_recovery_reports() {
    let cfg = small_cfg();
    for kind in FaultKind::ALL {
        let plan = plan_for(kind);
        let (first, _) = run_chaos(&plan, &cfg);
        let (second, _) = run_chaos(&plan, &cfg);
        assert_eq!(first, second, "{kind}: reports must be structurally identical");
        assert_eq!(
            first.render(),
            second.render(),
            "{kind}: rendered reports must be byte-identical"
        );
    }
}

#[test]
fn committed_ci_plan_fires_every_kind_and_passes() {
    let plan = FaultPlan::load("ci/chaos-plan.json").expect("committed plan parses");
    assert_eq!(plan.seed, 7);
    let cfg = ChaosConfig::default();
    let (report, _) = run_chaos(&plan, &cfg);
    for kind in FaultKind::ALL {
        assert!(
            report.faults_injected[kind.index()] >= 1,
            "committed plan must exercise {kind}\n{}",
            report.render()
        );
    }
    assert!(report.ok(), "committed plan must pass containment:\n{}", report.render());
    // Replaying the committed artifact is deterministic.
    let (again, _) = run_chaos(&plan, &cfg);
    assert_eq!(report.render(), again.render());
}

#[test]
fn probabilistic_plans_replay_identically() {
    // A noisy plan: every kind at 20% probability, bounded fires. Not
    // scoped to tenants, so registry and submit sites see it too —
    // only benign-tenant-scoped kinds are restricted, per the
    // degradation caveat above.
    let plan = FaultPlan {
        seed: 0xC0FFEE,
        rules: vec![
            FaultRule {
                kind: FaultKind::ObsSinkStall,
                tenant: None,
                at: Vec::new(),
                probability: 0.2,
                stall_ms: 1,
                max_fires: 6,
            },
            FaultRule {
                kind: FaultKind::RegistryStall,
                tenant: None,
                at: Vec::new(),
                probability: 0.2,
                stall_ms: 1,
                max_fires: 4,
            },
            FaultRule {
                kind: FaultKind::SubmitSaturated,
                tenant: Some(2),
                at: Vec::new(),
                probability: 0.2,
                stall_ms: 0,
                max_fires: 2,
            },
        ],
    };
    let cfg = small_cfg();
    let (first, _) = run_chaos(&plan, &cfg);
    let (second, _) = run_chaos(&plan, &cfg);
    assert_eq!(first.render(), second.render(), "probabilistic firing must be seed-determined");
    assert!(first.ok(), "noise faults must not break containment:\n{}", first.render());
}

#[test]
fn injector_decisions_are_plan_pure() {
    // The injector itself (outside any pool) replays bit-for-bit: same
    // plan, same site sequence, same decisions and counts.
    use sedspec_fleet::{FaultPoint, FaultSite};
    let plan = plan_for(FaultKind::SubmitSaturated);
    let drive = |inj: &FaultInjector| {
        let mut decisions = Vec::new();
        for round in 0..6u64 {
            for tenant in 0..4u64 {
                decisions.push(inj.check(&FaultSite::submit((tenant % 2) as u32, tenant)));
                let _ = round;
            }
        }
        (decisions, inj.fired_by_kind())
    };
    let a = drive(&FaultInjector::new(plan.clone()));
    let b = drive(&FaultInjector::new(plan));
    assert_eq!(a, b);
    assert_eq!(a.1[FaultKind::SubmitSaturated.index()], 1);
}
