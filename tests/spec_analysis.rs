//! Property test for the static analyzer's detection floor: every
//! mutation class we can inflict on a known-good trained specification
//! must be caught by its designated `SA` diagnostic code. The analyzer
//! is the publish gate — a mutation class it misses is a corrupted spec
//! the fleet would happily deploy.

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;
use sedspec::compiled::CompiledSpec;
use sedspec::escfg::{EsBlock, Nbtd};
use sedspec::pipeline::{train_script, TrainingConfig};
use sedspec::spec::ExecutionSpecification;
use sedspec_analysis::{analyze, AnalysisContext, AnalysisReport};
use sedspec_dbl::ir::{BlockKind, Expr};
use sedspec_repro::devices::{build_device, DeviceKind, QemuVersion};
use sedspec_repro::vmm::VmContext;
use sedspec_repro::workloads::generators::training_suite;

/// One benign FDC spec, trained once and cloned per case.
fn known_good() -> &'static ExecutionSpecification {
    static SPEC: OnceLock<ExecutionSpecification> = OnceLock::new();
    SPEC.get_or_init(|| {
        let mut device = build_device(DeviceKind::Fdc, QemuVersion::Patched);
        let mut ctx = VmContext::new(0x200000, 8192);
        let suite = training_suite(DeviceKind::Fdc, 40, 0x7a11);
        train_script(&mut device, &mut ctx, &suite, &TrainingConfig::default()).unwrap()
    })
}

fn analyze_plain(spec: &ExecutionSpecification) -> AnalysisReport {
    analyze(spec, &AnalysisContext::default())
}

/// Picks the `pick`-th cfg (mod eligible count) satisfying `eligible`.
fn pick_cfg(
    spec: &mut ExecutionSpecification,
    pick: u64,
    eligible: impl Fn(&sedspec::escfg::EsCfg) -> bool,
) -> &mut sedspec::escfg::EsCfg {
    let idxs: Vec<usize> =
        spec.cfgs.iter().enumerate().filter(|(_, c)| eligible(c)).map(|(i, _)| i).collect();
    assert!(!idxs.is_empty(), "the trained FDC spec must offer a mutation site");
    let i = idxs[pick as usize % idxs.len()];
    &mut spec.cfgs[i]
}

/// Class: orphan block — appended, mapped, never targeted → `SA001`.
fn mutate_orphan_block(spec: &mut ExecutionSpecification, pick: u64) {
    let cfg = pick_cfg(spec, pick, |c| c.entry.is_some());
    let origin = cfg.blocks.iter().map(|b| b.origin).max().unwrap_or(0) + 1000;
    let es = cfg.blocks.len() as u32;
    cfg.blocks.push(EsBlock {
        origin,
        label: "orphan".to_string(),
        kind: BlockKind::Plain,
        dsod: Vec::new(),
        nbtd: Nbtd::None,
        is_exit: true,
        is_return: false,
    });
    cfg.by_origin.insert(origin, es);
}

/// Class: dropped bridge edges — entry keeps no successors → `SA001`.
fn mutate_drop_edges(spec: &mut ExecutionSpecification, pick: u64) {
    let cfg = pick_cfg(spec, pick, |c| c.entry.is_some() && c.blocks.len() > 1);
    cfg.edges.clear();
}

/// Class: dangling retarget — an edge aims past the block list → `SA002`.
fn mutate_dangling_edge(spec: &mut ExecutionSpecification, pick: u64) {
    let cfg = pick_cfg(spec, pick, |c| !c.edges.is_empty());
    let n = cfg.blocks.len() as u32;
    let lists: Vec<u32> = cfg.edges.keys().copied().collect();
    let from = lists[pick as usize % lists.len()];
    let list = cfg.edges.get_mut(&from).unwrap();
    let e = pick as usize % list.len();
    list[e].to = n + 7;
}

/// Class: duplicate edges — same key, conflicting targets → `SA004`.
fn mutate_duplicate_edge(spec: &mut ExecutionSpecification, pick: u64) {
    let cfg = pick_cfg(spec, pick, |c| !c.edges.is_empty());
    let lists: Vec<u32> = cfg.edges.keys().copied().collect();
    let from = lists[pick as usize % lists.len()];
    let list = cfg.edges.get_mut(&from).unwrap();
    let mut dup = list[0];
    dup.to += 1;
    list.insert(1, dup);
}

/// Class: shuffled (unsorted) edge list → `SA005`.
fn mutate_unsort_edges(spec: &mut ExecutionSpecification, pick: u64) {
    let cfg = pick_cfg(spec, pick, |c| c.edges.values().any(|l| l.len() >= 2));
    let lists: Vec<u32> = cfg.edges.iter().filter(|(_, l)| l.len() >= 2).map(|(&k, _)| k).collect();
    let from = lists[pick as usize % lists.len()];
    let list = cfg.edges.get_mut(&from).unwrap();
    list.swap(0, 1);
}

/// Class: widened constraint — a branch guard rewritten to a tautology
/// → `SA101` (the guard decides nothing anymore).
fn mutate_widen_guard(spec: &mut ExecutionSpecification, pick: u64) {
    let cfg =
        pick_cfg(spec, pick, |c| c.blocks.iter().any(|b| matches!(b.nbtd, Nbtd::Branch { .. })));
    let sites: Vec<usize> = cfg
        .blocks
        .iter()
        .enumerate()
        .filter(|(_, b)| matches!(b.nbtd, Nbtd::Branch { .. }))
        .map(|(i, _)| i)
        .collect();
    let b = sites[pick as usize % sites.len()];
    cfg.blocks[b].nbtd = Nbtd::Branch { cond: Expr::Const(1), needs_sync: false };
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn every_mutation_class_is_caught_by_its_designated_code(
        class in 0usize..6,
        pick in 0u64..10_000,
    ) {
        let mut spec = known_good().clone();
        let expected = match class {
            0 => { mutate_orphan_block(&mut spec, pick); "SA001" }
            1 => { mutate_drop_edges(&mut spec, pick); "SA001" }
            2 => { mutate_dangling_edge(&mut spec, pick); "SA002" }
            3 => { mutate_duplicate_edge(&mut spec, pick); "SA004" }
            4 => { mutate_unsort_edges(&mut spec, pick); "SA005" }
            _ => { mutate_widen_guard(&mut spec, pick); "SA101" }
        };
        let report = analyze_plain(&spec);
        prop_assert!(
            !report.with_code(expected).is_empty(),
            "mutation class {class} must trip {expected}, got:\n{}",
            report.render_human()
        );
    }

    #[test]
    fn mutating_after_compile_is_caught_by_the_preservation_diff(
        pick in 0u64..10_000,
    ) {
        // Compile the good spec, then rewire one interpreted edge to a
        // different (still valid) block: the enforced tables no longer
        // match the interpreted artifact → SA401.
        let good = known_good().clone();
        let compiled = CompiledSpec::compile(Arc::new(good.clone()));
        let mut spec = good;
        let cfg = pick_cfg(&mut spec, pick, |c| !c.edges.is_empty() && c.blocks.len() > 1);
        let n = cfg.blocks.len() as u32;
        let lists: Vec<u32> = cfg.edges.keys().copied().collect();
        let from = lists[pick as usize % lists.len()];
        let list = cfg.edges.get_mut(&from).unwrap();
        let e = pick as usize % list.len();
        list[e].to = (list[e].to + 1) % n;
        let ctx = AnalysisContext { device: None, compiled: Some(&compiled) };
        let report = analyze(&spec, &ctx);
        prop_assert!(
            !report.with_code("SA401").is_empty(),
            "stale compiled form must trip SA401, got:\n{}",
            report.render_human()
        );
    }
}
