//! Determinism proofs for the differential fuzzer.
//!
//! The CI smoke literally `cmp`s two campaign reports, so this is the
//! load-bearing property: a campaign is a pure function of `(seed,
//! corpus, rounds)` — byte-identical reports and coverage maps across
//! runs — and mutated streams survive the JSON replay format intact.

use proptest::prelude::*;

use sedspec::collect::TrainStep;
use sedspec_repro::devices::{DeviceKind, QemuVersion};
use sedspec_repro::fuzz::{run_campaign, FuzzOptions, FuzzRng, Mutator};
use sedspec_repro::vmm::AddressSpace;

fn opts(device: DeviceKind, seed: u64, rounds: u64) -> FuzzOptions {
    FuzzOptions { device, version: QemuVersion::Patched, seed, rounds, corpus_dir: None }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    /// Two campaigns with identical inputs emit identical bytes.
    #[test]
    fn double_runs_are_byte_identical(seed in 0u64..1000, rounds in 50u64..400) {
        let a = run_campaign(&opts(DeviceKind::Fdc, seed, rounds)).unwrap();
        let b = run_campaign(&opts(DeviceKind::Fdc, seed, rounds)).unwrap();
        prop_assert_eq!(a.report.to_json(), b.report.to_json());
        prop_assert_eq!(a.coverage.to_json(), b.coverage.to_json());
        prop_assert_eq!(a.findings, b.findings);
    }

    /// Mutated streams round-trip through the JSON replay format.
    #[test]
    fn mutants_round_trip_through_json(seed in 0u64..10_000) {
        let mutator = Mutator::new(vec![
            (AddressSpace::Pmio, 0x3f0, 8),
            (AddressSpace::Mmio, 0x1000, 0x40),
        ]);
        let mut rng = FuzzRng::new(seed);
        let mut parent: Vec<TrainStep> = Vec::new();
        for _ in 0..16 {
            let child = mutator.mutate(&parent, Some(&parent), &mut rng);
            let json = serde_json::to_string(&child).unwrap();
            let back: Vec<TrainStep> = serde_json::from_str(&json).unwrap();
            prop_assert_eq!(&back, &child);
            parent = child;
        }
    }
}

/// Seeds must actually change behaviour — a constant-output "fuzzer"
/// would pass the identity tests above trivially.
#[test]
fn different_seeds_diverge() {
    let a = run_campaign(&opts(DeviceKind::Fdc, 1, 300)).unwrap();
    let b = run_campaign(&opts(DeviceKind::Fdc, 2, 300)).unwrap();
    assert_ne!(a.report.to_json(), b.report.to_json());
}
