//! Violation flight recorder, end to end: enforcing a CVE PoC with an
//! observability hub attached must freeze a forensic record for every
//! halt — the walked ES-block path (labelled from the compiled
//! specification), the shadow-state byte diff of the aborted round,
//! and the scope's recent trace events — while the paper's documented
//! miss (CVE-2016-1568) must leave the flight recorder empty.

use std::sync::Arc;

use sedspec::checker::WorkingMode;
use sedspec::collect::apply_step;
use sedspec::enforce::{EnforcingDevice, IoVerdict};
use sedspec::pipeline::{train_script, TrainingConfig};
use sedspec::spec::ExecutionSpecification;
use sedspec_dbl::interp::ExecLimits;
use sedspec_repro::devices::{build_device, DeviceKind, QemuVersion};
use sedspec_repro::obs::{ObsHub, ScopeInfo, TraceEventKind, VerdictKind};
use sedspec_repro::vmm::VmContext;
use sedspec_repro::workloads::attacks::{poc, Cve};
use sedspec_repro::workloads::generators::training_suite;

fn trained(kind: DeviceKind, version: QemuVersion) -> ExecutionSpecification {
    let mut device = build_device(kind, version);
    let mut ctx = VmContext::new(0x200000, 8192);
    let suite = training_suite(kind, 60, 0x7a11);
    train_script(&mut device, &mut ctx, &suite, &TrainingConfig::default()).unwrap()
}

/// Replays `cve`'s PoC under observed protection-mode enforcement.
/// Returns the hub and whether a halt was reached.
fn run_poc_observed(cve: Cve) -> (Arc<ObsHub>, bool) {
    let p = poc(cve);
    let spec = trained(p.device, p.qemu_version);
    let mut device = build_device(p.device, p.qemu_version);
    device.set_limits(ExecLimits { max_steps: 50_000, ..ExecLimits::default() });
    let hub = Arc::new(ObsHub::new());
    let mut enforcer = EnforcingDevice::new(device, spec, WorkingMode::Protection)
        .with_sink(hub.sink(ScopeInfo::device(p.device.to_string())));
    let mut ctx = VmContext::new(0x200000, 8192);
    let mut halted = false;
    for step in &p.steps {
        let Some(req) = apply_step(step, &mut ctx) else { continue };
        if matches!(enforcer.handle_io(&mut ctx, req), IoVerdict::Halted { .. }) {
            halted = true;
            break;
        }
    }
    (hub, halted)
}

#[test]
fn every_halting_cve_poc_yields_a_forensic_record() {
    for cve in Cve::all() {
        let (hub, halted) = run_poc_observed(cve);
        assert!(halted, "{}: the PoC must halt under protection", cve.id());
        let records = hub.forensics();
        assert!(!records.is_empty(), "{}: halt must freeze a flight record", cve.id());

        let last = records.last().unwrap();
        assert_eq!(last.data.verdict, VerdictKind::Halted, "{}", cve.id());
        assert!(last.round > 0, "{}: record must carry the originating round", cve.id());
        let violated = last
            .data
            .violated
            .as_ref()
            .unwrap_or_else(|| panic!("{}: the record must name the violated block", cve.id()));

        // The rendered record is the operator-facing dump: it must name
        // the violated block and include the walked path and the
        // shadow-state diff of the aborted round.
        let text = last.render();
        assert!(
            text.contains(&format!("violated block: p{}/b{}", violated.program, violated.block)),
            "{}: render must name the violated block:\n{text}",
            cve.id()
        );
        assert!(text.contains("walked block path"), "{}:\n{text}", cve.id());
        assert!(text.contains("shadow diff"), "{}:\n{text}", cve.id());
        assert!(text.contains("recent events"), "{}:\n{text}", cve.id());

        // Path steps carry the specification's block labels so the
        // record reads without the spec at hand.
        for step in &last.data.block_path {
            assert!(!step.label.is_empty(), "{}: unlabelled path step {step}", cve.id());
        }

        // The frozen trace tail shows the walk approaching the halt (a
        // long fatal round may scroll its own RoundBegin out of the
        // fixed-size freeze window, but the block steps remain).
        assert!(!last.recent.is_empty(), "{}", cve.id());
        assert!(
            last.recent.iter().any(|e| matches!(
                e.kind,
                TraceEventKind::BlockStep { .. } | TraceEventKind::RoundBegin { .. }
            )),
            "{}: frozen tail must show the walk in progress",
            cve.id()
        );
    }
}

#[test]
fn forensic_records_survive_an_injected_sink_fault() {
    use sedspec_repro::fleet::{FaultAction, FaultKind, FaultPoint, FaultSite, FaultySink};

    /// Stalls every obs-sink delivery (zero sleep, marker still
    /// emitted), modelling a slow/contended telemetry backend.
    #[derive(Debug)]
    struct StallEverySinkEvent;

    impl FaultPoint for StallEverySinkEvent {
        fn check(&self, site: &FaultSite) -> FaultAction {
            if site.kind == FaultKind::ObsSinkStall {
                FaultAction::Stall(0)
            } else {
                FaultAction::Proceed
            }
        }
    }

    let p = poc(Cve::Cve2015_3456);
    let spec = trained(p.device, p.qemu_version);
    let mut device = build_device(p.device, p.qemu_version);
    device.set_limits(ExecLimits { max_steps: 50_000, ..ExecLimits::default() });
    let hub = Arc::new(ObsHub::new());
    let faulty = Arc::new(FaultySink::new(
        hub.sink(ScopeInfo::device(p.device.to_string())),
        Arc::new(StallEverySinkEvent),
        Some(0),
    ));
    let mut enforcer =
        EnforcingDevice::new(device, spec, WorkingMode::Protection).with_sink(faulty);
    let mut ctx = VmContext::new(0x200000, 8192);
    let mut halted = false;
    for step in &p.steps {
        let Some(req) = apply_step(step, &mut ctx) else { continue };
        if matches!(enforcer.handle_io(&mut ctx, req), IoVerdict::Halted { .. }) {
            halted = true;
            break;
        }
    }
    assert!(halted, "Venom must still halt with a faulted sink");

    // Observability under fault degrades (late, marker-annotated) but
    // loses nothing: the halt's forensic record is intact and renders
    // like the clean-sink record.
    let records = hub.forensics();
    assert!(!records.is_empty(), "the stalled sink must still deliver the forensic record");
    let last = records.last().unwrap();
    assert_eq!(last.data.verdict, VerdictKind::Halted);
    assert!(last.data.violated.is_some(), "the record must still name the violated block");
    assert!(last.render().contains("shadow diff"));

    // The blast radius is visible in the same trace: every stall left
    // an injection marker, and the fault metric counted them.
    let events = hub.recent_events(4096);
    let markers =
        events.iter().filter(|e| matches!(e.kind, TraceEventKind::FaultInjected { .. })).count();
    assert!(markers > 0, "stalls must leave FaultInjected markers in the trace");
    // The metric saw every stall; the trace ring may have scrolled
    // early markers out, so it only bounds the metric from below.
    assert!(
        hub.metrics().sum_counter("sedspec_faults_injected_total") >= markers as u64,
        "the fault metric must count at least the markers still in the ring"
    );
}

#[test]
fn the_documented_miss_leaves_no_flight_record() {
    let (hub, halted) = run_poc_observed(Cve::Cve2016_1568);
    assert!(!halted, "CVE-2016-1568 is the paper's documented miss");
    assert!(hub.forensics().is_empty(), "a PoC that evades detection must not fabricate forensics");
    // The rounds themselves were still traced.
    assert!(hub.metrics().sum_counter("sedspec_rounds_total") > 0);
}
