//! Memory-safety property of the *patched* device models: no guest
//! input sequence — valid or garbage — may corrupt the control
//! structure (spill past a buffer), hijack a function pointer, or crash
//! the device. This is the ground truth that makes the vulnerable
//! versions' CVE behaviour meaningful: the defects are in the removed
//! checks, not in the substrate.

use proptest::prelude::*;
use sedspec_dbl::interp::{ExecLimits, Fault};
use sedspec_repro::devices::{build_device, DeviceKind, QemuVersion};
use sedspec_repro::vmm::VmContext;
use sedspec_vmm::{AddressSpace, IoRequest};

#[derive(Debug, Clone)]
enum Op {
    Pmio { off: u16, write: bool, data: u64, wide: bool },
    Mmio { off: u16, write: bool, data: u64 },
    Frame { len: u16, byte: u8 },
    GuestWrite { gpa: u16, data: u64 },
}

fn ops() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u16>(), any::<bool>(), any::<u64>(), any::<bool>())
            .prop_map(|(off, write, data, wide)| Op::Pmio { off: off % 0x40, write, data, wide }),
        (any::<u16>(), any::<bool>(), any::<u64>()).prop_map(|(off, write, data)| Op::Mmio {
            off: off % 0x40,
            write,
            data
        }),
        (any::<u16>(), any::<u8>()).prop_map(|(len, byte)| Op::Frame { len: len % 5000, byte }),
        (any::<u16>(), any::<u64>()).prop_map(|(gpa, data)| Op::GuestWrite { gpa, data }),
    ]
}

fn base_of(kind: DeviceKind) -> (AddressSpace, u64) {
    match kind {
        DeviceKind::Fdc => (AddressSpace::Pmio, 0x3f0),
        DeviceKind::Scsi => (AddressSpace::Pmio, 0xc00),
        DeviceKind::Pcnet => (AddressSpace::Pmio, 0x300),
        DeviceKind::UsbEhci => (AddressSpace::Mmio, 0x2000),
        DeviceKind::Sdhci => (AddressSpace::Mmio, 0x3000),
    }
}

fn run_garbage(kind: DeviceKind, seq: &[Op]) -> Result<(), TestCaseError> {
    let mut device = build_device(kind, QemuVersion::Patched);
    device.set_limits(ExecLimits { max_steps: 400_000, ..ExecLimits::default() });
    let mut ctx = VmContext::new(0x40000, 4096);
    let (space, base) = base_of(kind);
    for op in seq {
        let req = match *op {
            Op::Pmio { off, write, data, wide } => {
                let size = if wide { 2 } else { 1 };
                let addr = base + u64::from(off);
                if write {
                    IoRequest::write(space, addr, size, data)
                } else {
                    IoRequest::read(space, addr, size)
                }
            }
            Op::Mmio { off, write, data } => {
                let addr = base + u64::from(off & !3);
                if write {
                    IoRequest::write(space, addr, 4, data)
                } else {
                    IoRequest::read(space, addr, 4)
                }
            }
            Op::Frame { len, byte } => {
                if kind != DeviceKind::Pcnet {
                    continue;
                }
                IoRequest::net_frame(vec![byte; len as usize])
            }
            Op::GuestWrite { gpa, data } => {
                let _ = ctx.mem.write_u64(u64::from(gpa) * 8 % 0x3f000, data);
                continue;
            }
        };
        if device.route(&req).is_none() {
            continue;
        }
        match device.handle_io(&mut ctx, &req) {
            Ok(out) => {
                prop_assert_eq!(out.spills, 0, "{}: patched device spilled on {:?}", kind, op);
            }
            Err(f) => {
                prop_assert!(
                    matches!(f, Fault::StepLimit { .. }),
                    "{}: patched device crashed on {:?}: {}",
                    kind,
                    op,
                    f
                );
                // Even a step-limit abort must not have corrupted state.
                return Err(TestCaseError::fail(format!(
                    "{kind}: unexpected long-running op {op:?}"
                )));
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn patched_fdc_is_memory_safe(seq in proptest::collection::vec(ops(), 1..120)) {
        run_garbage(DeviceKind::Fdc, &seq)?;
    }

    #[test]
    fn patched_scsi_is_memory_safe(seq in proptest::collection::vec(ops(), 1..120)) {
        run_garbage(DeviceKind::Scsi, &seq)?;
    }

    #[test]
    fn patched_pcnet_is_memory_safe(seq in proptest::collection::vec(ops(), 1..120)) {
        run_garbage(DeviceKind::Pcnet, &seq)?;
    }

    #[test]
    fn patched_ehci_is_memory_safe(seq in proptest::collection::vec(ops(), 1..120)) {
        run_garbage(DeviceKind::UsbEhci, &seq)?;
    }

    #[test]
    fn patched_sdhci_is_memory_safe(seq in proptest::collection::vec(ops(), 1..120)) {
        run_garbage(DeviceKind::Sdhci, &seq)?;
    }
}
