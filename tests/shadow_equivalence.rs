//! The ES-Checker's core soundness property: on benign traffic, the
//! shadow device state tracks the real device's selected parameters
//! exactly, round after round — otherwise the three check strategies
//! would be judging fiction.

use proptest::prelude::*;
use sedspec::checker::WorkingMode;
use sedspec::collect::apply_step;
use sedspec::enforce::{EnforcingDevice, IoVerdict};
use sedspec::pipeline::{train_script, TrainingConfig};
use sedspec_repro::devices::{build_device, DeviceKind, QemuVersion};
use sedspec_repro::vmm::VmContext;
use sedspec_repro::workloads::generators::{eval_case, training_suite};
use sedspec_repro::workloads::InteractionMode;

fn shadow_matches_device(enforcer: &EnforcingDevice, kind: DeviceKind) -> Result<(), String> {
    let spec = enforcer.checker().spec();
    let shadow = enforcer.checker().shadow();
    for (v, _) in &spec.params.vars {
        let s = shadow.var(*v);
        let d = enforcer.device.state.var(*v);
        if s != d {
            return Err(format!(
                "{kind}: param {} diverged: shadow {s:#x}, device {d:#x}",
                enforcer.device.control.var_decl(*v).name
            ));
        }
    }
    Ok(())
}

fn run_equivalence(kind: DeviceKind, case_seed: u64) -> Result<(), TestCaseError> {
    let mut device = build_device(kind, QemuVersion::Patched);
    let mut ctx = VmContext::new(0x200000, 8192);
    let suite = training_suite(kind, 40, 0x7a11);
    let spec = train_script(&mut device, &mut ctx, &suite, &TrainingConfig::default()).unwrap();
    let mut enforcer = EnforcingDevice::new(
        build_device(kind, QemuVersion::Patched),
        spec,
        WorkingMode::Protection,
    );
    let mut ctx = VmContext::new(0x200000, 8192);

    let case = eval_case(kind, InteractionMode::Sequential, 0.0, case_seed);
    for step in &case {
        let Some(req) = apply_step(step, &mut ctx) else { continue };
        if enforcer.device.route(req).is_none() {
            continue;
        }
        let verdict = enforcer.handle_io(&mut ctx, req);
        prop_assert!(
            matches!(verdict, IoVerdict::Allowed(_)),
            "{kind}: benign round flagged: {verdict:?}"
        );
        if let Err(msg) = shadow_matches_device(&enforcer, kind) {
            return Err(TestCaseError::fail(msg));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn fdc_shadow_tracks_device(seed in 0u64..5000) {
        run_equivalence(DeviceKind::Fdc, seed)?;
    }

    #[test]
    fn sdhci_shadow_tracks_device(seed in 0u64..5000) {
        run_equivalence(DeviceKind::Sdhci, seed)?;
    }

    #[test]
    fn scsi_shadow_tracks_device(seed in 0u64..5000) {
        run_equivalence(DeviceKind::Scsi, seed)?;
    }

    #[test]
    fn ehci_shadow_tracks_device(seed in 0u64..5000) {
        run_equivalence(DeviceKind::UsbEhci, seed)?;
    }

    #[test]
    fn pcnet_shadow_tracks_device(seed in 0u64..5000) {
        run_equivalence(DeviceKind::Pcnet, seed)?;
    }
}

/// Walks are pure: checking the same round twice from the same state
/// yields identical reports and identical tentative shadows.
#[test]
fn walks_are_deterministic() {
    use sedspec::checker::NoSync;
    let kind = DeviceKind::Fdc;
    let mut device = build_device(kind, QemuVersion::Patched);
    let mut ctx = VmContext::new(0x200000, 8192);
    let suite = training_suite(kind, 20, 3);
    let spec = train_script(&mut device, &mut ctx, &suite, &TrainingConfig::default()).unwrap();
    let checker = sedspec::checker::EsChecker::new(spec, device.control.clone());
    let req = sedspec_vmm::IoRequest::write(sedspec_vmm::AddressSpace::Pmio, 0x3f5, 1, 0x08);
    let pi = device.route(&req).unwrap();
    let a = checker.walk_round(pi, &req, &mut NoSync);
    let b = checker.walk_round(pi, &req, &mut NoSync);
    assert_eq!(a.report, b.report);
    assert_eq!(a.shadow, b.shadow);
    assert_eq!(a.cmd_ctx, b.cmd_ctx);
}
