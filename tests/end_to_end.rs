//! Cross-crate integration tests: the full pipeline from device
//! construction through training to enforcement, for all five devices
//! and all eight CVEs.

use sedspec::checker::{CheckConfig, Strategy, WorkingMode};
use sedspec::collect::apply_step;
use sedspec::enforce::{EnforcingDevice, IoVerdict};
use sedspec::pipeline::{train_script, train_script_with_artifacts, TrainingConfig};
use sedspec::spec::ExecutionSpecification;
use sedspec_dbl::interp::ExecLimits;
use sedspec_repro::devices::{build_device, DeviceKind, QemuVersion};
use sedspec_repro::vmm::VmContext;
use sedspec_repro::workloads::attacks::{poc, Cve};
use sedspec_repro::workloads::generators::{eval_case, training_suite};
use sedspec_repro::workloads::InteractionMode;

fn trained(kind: DeviceKind, version: QemuVersion) -> ExecutionSpecification {
    let mut device = build_device(kind, version);
    let mut ctx = VmContext::new(0x200000, 8192);
    let suite = training_suite(kind, 60, 0x7a11);
    train_script(&mut device, &mut ctx, &suite, &TrainingConfig::default()).unwrap()
}

#[test]
fn every_cve_is_detected_with_all_strategies() {
    for cve in Cve::all() {
        let p = poc(cve);
        let spec = trained(p.device, p.qemu_version);
        let mut device = build_device(p.device, p.qemu_version);
        device.set_limits(ExecLimits { max_steps: 50_000, ..ExecLimits::default() });
        let mut enforcer = EnforcingDevice::new(device, spec, WorkingMode::Protection);
        let mut ctx = VmContext::new(0x200000, 8192);
        let mut detected = false;
        for step in &p.steps {
            let Some(req) = apply_step(step, &mut ctx) else { continue };
            if let IoVerdict::Halted { violations, .. } = enforcer.handle_io(&mut ctx, req) {
                assert!(!violations.is_empty(), "{}: empty halt", p.cve.id());
                detected = true;
                break;
            }
        }
        assert!(detected, "{} must be detected under full protection", p.cve.id());
    }
}

#[test]
fn per_strategy_detection_matches_table_iii() {
    for cve in Cve::all() {
        let p = poc(cve);
        for strategy in [Strategy::Parameter, Strategy::IndirectJump, Strategy::ConditionalJump] {
            let spec = trained(p.device, p.qemu_version);
            let mut device = build_device(p.device, p.qemu_version);
            device.set_limits(ExecLimits { max_steps: 50_000, ..ExecLimits::default() });
            let mut enforcer = EnforcingDevice::new(device, spec, WorkingMode::Protection)
                .with_config(CheckConfig::only(strategy));
            let mut ctx = VmContext::new(0x200000, 8192);
            let mut detected = false;
            for step in &p.steps {
                let Some(req) = apply_step(step, &mut ctx) else { continue };
                if matches!(enforcer.handle_io(&mut ctx, req), IoVerdict::Halted { .. }) {
                    detected = true;
                    break;
                }
            }
            assert_eq!(
                detected,
                p.detected_by.contains(&strategy),
                "{} with {strategy:?}: expected {:?}",
                p.cve.id(),
                p.detected_by
            );
        }
    }
}

#[test]
fn cve_2016_1568_is_the_documented_miss() {
    // The stale-transfer UAF analog: the vulnerable reset keeps the
    // pending command alive; driving it afterwards discloses disk data.
    let p = poc(Cve::Cve2016_1568);
    assert!(p.detected_by.is_empty());

    // Ground truth on the unprotected device: sector 7 lands in guest
    // memory even though the controller was reset in between.
    let mut device = build_device(p.device, p.qemu_version);
    let mut ctx = VmContext::new(0x200000, 8192);
    ctx.disk.write_sector(7, &[0xeeu8; 512]).unwrap();
    for step in &p.steps {
        let Some(req) = apply_step(step, &mut ctx) else { continue };
        device.handle_io(&mut ctx, req).unwrap();
    }
    assert_eq!(
        ctx.mem.read_vec(0xb000, 4).unwrap(),
        vec![0xee; 4],
        "the stale transfer must run on the vulnerable device"
    );

    // The patched device kills the pending command at reset.
    let mut device = build_device(p.device, QemuVersion::Patched);
    let mut ctx = VmContext::new(0x200000, 8192);
    ctx.disk.write_sector(7, &[0xeeu8; 512]).unwrap();
    for step in &p.steps {
        let Some(req) = apply_step(step, &mut ctx) else { continue };
        device.handle_io(&mut ctx, req).unwrap();
    }
    assert_eq!(ctx.mem.read_vec(0xb000, 4).unwrap(), vec![0; 4]);

    // SEDSpec misses it: every block and edge the attack takes is part
    // of legitimate READ(10) and RESET behaviour.
    let spec = trained(p.device, p.qemu_version);
    let device = build_device(p.device, p.qemu_version);
    let mut enforcer = EnforcingDevice::new(device.clone(), spec, WorkingMode::Protection);
    let _ = device;
    let mut ctx = VmContext::new(0x200000, 8192);
    for step in &p.steps {
        let Some(req) = apply_step(step, &mut ctx) else { continue };
        let verdict = enforcer.handle_io(&mut ctx, req);
        assert!(
            !verdict.flagged(),
            "the paper reports this vulnerability as undetectable: {verdict:?}"
        );
    }
}

#[test]
fn benign_eval_traffic_rarely_flags() {
    // A small-scale version of the Table II experiment: without the rare
    // tail, zero flags; with the tail forced on, flags appear.
    for kind in [DeviceKind::Fdc, DeviceKind::Scsi] {
        let spec = trained(kind, QemuVersion::Patched);
        let mut enforcer = EnforcingDevice::new(
            build_device(kind, QemuVersion::Patched),
            spec,
            WorkingMode::Enhancement,
        );
        let mut ctx = VmContext::new(0x200000, 8192);
        let mut flags = 0;
        for seed in 0..40u64 {
            let case = eval_case(kind, InteractionMode::all()[(seed % 3) as usize], 0.0, seed);
            for step in &case {
                let Some(req) = apply_step(step, &mut ctx) else { continue };
                if enforcer.handle_io(&mut ctx, req).flagged() {
                    flags += 1;
                }
            }
        }
        assert_eq!(flags, 0, "{kind}: clean traffic flagged");

        let case = eval_case(kind, InteractionMode::Sequential, 1.0, 99);
        let mut flagged = false;
        for step in &case {
            let Some(req) = apply_step(step, &mut ctx) else { continue };
            flagged |= enforcer.handle_io(&mut ctx, req).flagged();
        }
        assert!(flagged, "{kind}: rare-command tail must trip the conditional check");
    }
}

#[test]
fn specs_serialize_and_redeploy() {
    let spec = trained(DeviceKind::Sdhci, QemuVersion::Patched);
    let json = spec.to_json();
    let reloaded = ExecutionSpecification::from_json(&json).unwrap();
    assert_eq!(spec, reloaded);

    // A reloaded spec enforces identically.
    let p = poc(Cve::Cve2021_3409);
    let spec_v = trained(p.device, p.qemu_version);
    let reloaded = ExecutionSpecification::from_json(&spec_v.to_json()).unwrap();
    let mut enforcer = EnforcingDevice::new(
        build_device(p.device, p.qemu_version),
        reloaded,
        WorkingMode::Protection,
    );
    let mut ctx = VmContext::new(0x200000, 8192);
    let mut detected = false;
    for step in &p.steps {
        let Some(req) = apply_step(step, &mut ctx) else { continue };
        if matches!(enforcer.handle_io(&mut ctx, req), IoVerdict::Halted { .. }) {
            detected = true;
            break;
        }
    }
    assert!(detected);
}

#[test]
fn training_artifacts_are_consistent() {
    let mut device = build_device(DeviceKind::Pcnet, QemuVersion::Patched);
    let mut ctx = VmContext::new(0x200000, 8192);
    let suite = training_suite(DeviceKind::Pcnet, 30, 5);
    let (spec, artifacts) =
        train_script_with_artifacts(&mut device, &mut ctx, &suite, &TrainingConfig::default())
            .unwrap();
    assert_eq!(spec.stats.training_rounds, artifacts.log.len() as u64);
    assert_eq!(artifacts.undecoded_rounds, 0, "benign traffic must decode cleanly");
    assert!(artifacts.itc.edge_count() > 0);
    // Every device handler that was exercised has a resolved entry.
    let exercised: std::collections::BTreeSet<usize> =
        artifacts.log.rounds.iter().map(|r| r.program).collect();
    for pi in exercised {
        assert!(spec.cfgs[pi].entry.is_some(), "traced handler {pi} lacks an entry");
    }
}

#[test]
fn enhancement_mode_keeps_vm_alive_through_conditional_warnings() {
    let kind = DeviceKind::Fdc;
    let spec = trained(kind, QemuVersion::Patched);
    let mut enforcer = EnforcingDevice::new(
        build_device(kind, QemuVersion::Patched),
        spec,
        WorkingMode::Enhancement,
    );
    let mut ctx = VmContext::new(0x200000, 8192);
    // A rare-but-legal command warns but must not halt.
    let case = eval_case(kind, InteractionMode::Sequential, 1.0, 7);
    let mut warned = false;
    for step in &case {
        let Some(req) = apply_step(step, &mut ctx) else { continue };
        match enforcer.handle_io(&mut ctx, req) {
            IoVerdict::Warned { .. } => warned = true,
            IoVerdict::Halted { .. } => panic!("conditional anomaly halted in enhancement mode"),
            _ => {}
        }
    }
    assert!(warned);
    assert!(!enforcer.is_halted());
    // And the device still works afterwards.
    let out = enforcer.handle_io(
        &mut ctx,
        &sedspec_vmm::IoRequest::read(sedspec_vmm::AddressSpace::Pmio, 0x3f4, 1),
    );
    assert!(matches!(out, IoVerdict::Allowed(_)));
}
