//! Determinism and accounting invariants. The evaluation's
//! reproducibility rests on these: identical inputs must yield
//! byte-identical specifications and identical enforcement decisions,
//! and the enforcement statistics must partition the rounds exactly.

use sedspec::checker::WorkingMode;
use sedspec::collect::apply_step;
use sedspec::enforce::{EnforcingDevice, IoVerdict};
use sedspec::pipeline::{train_script, TrainingConfig};
use sedspec_repro::devices::{build_device, DeviceKind, QemuVersion};
use sedspec_repro::vmm::VmContext;
use sedspec_repro::workloads::generators::{eval_case, training_suite};
use sedspec_repro::workloads::InteractionMode;

fn spec_json(kind: DeviceKind, seed: u64) -> String {
    let mut device = build_device(kind, QemuVersion::Patched);
    let mut ctx = VmContext::new(0x200000, 8192);
    let suite = training_suite(kind, 25, seed);
    train_script(&mut device, &mut ctx, &suite, &TrainingConfig::default()).unwrap().to_json()
}

#[test]
fn training_is_byte_deterministic() {
    for kind in DeviceKind::all() {
        let a = spec_json(kind, 0x5eed);
        let b = spec_json(kind, 0x5eed);
        assert_eq!(a, b, "{kind}: retraining on identical inputs diverged");
        let c = spec_json(kind, 0x5eee);
        assert_ne!(a, c, "{kind}: different training must differ");
    }
}

#[test]
fn enforcement_is_deterministic() {
    let kind = DeviceKind::Pcnet;
    let run = || {
        let mut device = build_device(kind, QemuVersion::Patched);
        let mut ctx = VmContext::new(0x200000, 8192);
        let suite = training_suite(kind, 30, 7);
        let spec = train_script(&mut device, &mut ctx, &suite, &TrainingConfig::default()).unwrap();
        let mut enforcer = EnforcingDevice::new(
            build_device(kind, QemuVersion::Patched),
            spec,
            WorkingMode::Enhancement,
        );
        let mut ctx = VmContext::new(0x200000, 8192);
        let mut verdicts = Vec::new();
        for seed in 0..8u64 {
            let case = eval_case(kind, InteractionMode::Random, 0.05, seed);
            for step in &case {
                let Some(req) = apply_step(step, &mut ctx) else { continue };
                verdicts.push(match enforcer.handle_io(&mut ctx, req) {
                    IoVerdict::Allowed(out) => (0u8, out.reply),
                    IoVerdict::Warned { .. } => (1, 0),
                    IoVerdict::Halted { .. } => (2, 0),
                    IoVerdict::DeviceFault { .. } => (3, 0),
                });
            }
        }
        (verdicts, enforcer.stats, ctx.clock.now_ns())
    };
    let (v1, s1, t1) = run();
    let (v2, s2, t2) = run();
    assert_eq!(v1, v2);
    assert_eq!(s1, s2);
    assert_eq!(t1, t2, "virtual time must be reproducible");
}

#[test]
fn enforcement_stats_partition_the_rounds() {
    for kind in [DeviceKind::Fdc, DeviceKind::UsbEhci, DeviceKind::Scsi] {
        let mut device = build_device(kind, QemuVersion::Patched);
        let mut ctx = VmContext::new(0x200000, 8192);
        let suite = training_suite(kind, 60, 0x7a11);
        let spec = train_script(&mut device, &mut ctx, &suite, &TrainingConfig::default()).unwrap();
        let mut enforcer = EnforcingDevice::new(
            build_device(kind, QemuVersion::Patched),
            spec,
            WorkingMode::Enhancement,
        );
        let mut ctx = VmContext::new(0x200000, 8192);
        let mut routed = 0u64;
        for seed in 0..10u64 {
            let case = eval_case(kind, InteractionMode::Sequential, 0.0, seed);
            for step in &case {
                let Some(req) = apply_step(step, &mut ctx) else { continue };
                if enforcer.device.route(req).is_some() {
                    routed += 1;
                }
                let _ = enforcer.handle_io(&mut ctx, req);
            }
        }
        let s = enforcer.stats;
        // Partition: every routed round completes its precheck, goes
        // through the sync path, or was flagged during the pre-execution
        // walk (in which case it lands in neither bucket). Post-hoc
        // flagged rounds are already counted in synced_rounds, so the
        // flagged counters bound the residue from both sides.
        let accounted = s.precheck_complete + s.synced_rounds;
        assert!(
            accounted <= routed && routed <= accounted + s.warnings + s.halts,
            "{kind}: {s:?} vs routed {routed}"
        );
        assert_eq!(s.halts, 0, "{kind}: parameter-check FP on benign traffic");
        assert!(s.warnings <= 2, "{kind}: excessive benign warnings: {s:?}");
        assert!(s.rounds >= routed);
        assert!(s.check_blocks > 0);
    }
}
