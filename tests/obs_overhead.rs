//! Instrumentation must be pay-for-what-you-use: an enforcing device
//! with a disabled [`NoopSink`] attached takes the branch-cheap
//! observed dispatch but skips every payload, so it must stay within
//! noise of the recorderless path. This is the regression guard for
//! the compiled checker's no-allocation hot-path invariant.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Arc;
use std::time::Instant;

use sedspec::checker::{BatchOutcome, EsChecker, NoSync, WorkingMode};
use sedspec::enforce::EnforcingDevice;
use sedspec::pipeline::{train_script, TrainingConfig};
use sedspec_repro::devices::{build_device, DeviceKind, QemuVersion};
use sedspec_repro::obs::NoopSink;
use sedspec_repro::vmm::{AddressSpace, IoRequest, VmContext};
use sedspec_repro::workloads::generators::training_suite;

/// Pass-through allocator counting allocations per thread, so the
/// zero-allocation guard below is immune to sibling tests running
/// concurrently in this binary.
struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocs_on_this_thread() -> u64 {
    ALLOCS.with(Cell::get)
}

const SAMPLES: usize = 15;
const ITERS: u32 = 3000;

/// Median ns per enforced round over `SAMPLES` timed batches.
fn median_round_ns(enforcer: &mut EnforcingDevice, req: &IoRequest) -> f64 {
    let mut ctx = VmContext::new(0x10000, 64);
    // Warm up caches and the branch predictor.
    for _ in 0..ITERS {
        let _ = enforcer.handle_io(&mut ctx, req);
    }
    let mut times: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..ITERS {
                let _ = enforcer.handle_io(&mut ctx, req);
            }
            start.elapsed().as_nanos() as f64 / ITERS as f64
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

#[test]
fn disabled_sink_stays_within_noise_of_recorderless_path() {
    let kind = DeviceKind::Fdc;
    let mut device = build_device(kind, QemuVersion::Patched);
    let mut ctx = VmContext::new(0x200000, 8192);
    let suite = training_suite(kind, 40, 0x7a11);
    let spec = train_script(&mut device, &mut ctx, &suite, &TrainingConfig::default()).unwrap();
    let req = IoRequest::read(AddressSpace::Pmio, 0x3f4, 1);

    let build = |sinked: bool| {
        let mut enforcer = EnforcingDevice::new(
            build_device(kind, QemuVersion::Patched),
            spec.clone(),
            WorkingMode::Enhancement,
        );
        if sinked {
            enforcer.set_sink(Some(Arc::new(NoopSink)));
        }
        enforcer
    };

    // Interleave the measurements so slow-host drift hits both arms.
    let mut best_ratio = f64::INFINITY;
    for _ in 0..3 {
        let none_ns = median_round_ns(&mut build(false), &req);
        let noop_ns = median_round_ns(&mut build(true), &req);
        best_ratio = best_ratio.min(noop_ns / none_ns);
        if best_ratio <= 1.25 {
            break;
        }
    }
    // Generous bound: a shared CI container jitters double-digit
    // percentages, but a disabled sink accidentally assembling event
    // payloads (string formatting, path recording, per-round timing)
    // costs multiples, which this still catches.
    assert!(
        best_ratio <= 1.5,
        "disabled sink costs {:.0}% over the recorderless path",
        (best_ratio - 1.0) * 100.0
    );
}

/// The fault seam added for chaos testing sits at batch boundaries
/// (submit, device-step, registry-fetch) as `Option::None` when
/// disabled; nothing fault-related may leak into the per-round walk.
/// This pins `walk_round_fast`'s no-allocation invariant: a warmed
/// checker with no sink and no fault point walks thousands of rounds
/// without touching the allocator at all.
#[test]
fn disabled_fault_seam_keeps_walk_round_fast_allocation_free() {
    let kind = DeviceKind::Fdc;
    let mut device = build_device(kind, QemuVersion::Patched);
    let mut ctx = VmContext::new(0x200000, 8192);
    let suite = training_suite(kind, 40, 0x7a11);
    let spec = train_script(&mut device, &mut ctx, &suite, &TrainingConfig::default()).unwrap();

    let device = build_device(kind, QemuVersion::Patched);
    let req = IoRequest::read(AddressSpace::Pmio, 0x3f4, 1);
    let pi = device.route(&req).expect("the poll port routes to a program");
    let mut checker = EsChecker::new(spec, device.control.clone());

    // Warm up: the first walks may grow the reusable journal and
    // scratch buffers to their steady-state capacity.
    for _ in 0..64 {
        let _ = checker.walk_round_fast(pi, &req, &mut NoSync);
        checker.abort_round();
    }

    let before = allocs_on_this_thread();
    for _ in 0..2000 {
        let _ = checker.walk_round_fast(pi, &req, &mut NoSync);
        checker.abort_round();
    }
    let during = allocs_on_this_thread() - before;
    assert_eq!(
        during, 0,
        "walk_round_fast allocated {during} times over 2000 warmed rounds; the hot path \
         (and the disabled fault seam around it) must be allocation-free"
    );
}

/// The batched engine shares the per-round invariant: once the journal,
/// scratch and [`BatchOutcome`] buffers reach steady-state capacity, a
/// warmed checker drains thousands of batched rounds without touching
/// the allocator — submission amortization must not buy throughput by
/// hiding per-batch buffer churn.
#[test]
fn walk_batch_is_allocation_free_when_warm() {
    let kind = DeviceKind::Fdc;
    let mut device = build_device(kind, QemuVersion::Patched);
    let mut ctx = VmContext::new(0x200000, 8192);
    let suite = training_suite(kind, 40, 0x7a11);
    let spec = train_script(&mut device, &mut ctx, &suite, &TrainingConfig::default()).unwrap();

    let device = build_device(kind, QemuVersion::Patched);
    let req = IoRequest::read(AddressSpace::Pmio, 0x3f4, 1);
    let pi = device.route(&req).expect("the poll port routes to a program");
    let mut checker = EsChecker::new(spec, device.control.clone());

    const BATCH: usize = 256;
    let reqs: Vec<IoRequest> = (0..BATCH).map(|_| req.clone()).collect();
    let mut out = BatchOutcome::default();

    // Warm up: grow the journal, scratch and outcome buffers.
    for _ in 0..8 {
        checker.walk_batch(reqs.iter().map(|r| (pi, r)), &mut out);
        checker.abort_batch();
    }

    let before = allocs_on_this_thread();
    for _ in 0..2000 / BATCH + 8 {
        checker.walk_batch(reqs.iter().map(|r| (pi, r)), &mut out);
        checker.abort_batch();
    }
    let during = allocs_on_this_thread() - before;
    assert_eq!(
        during, 0,
        "walk_batch allocated {during} times over warmed {BATCH}-round batches; the batched \
         hot path must be allocation-free"
    );
}

/// The windowed-telemetry layer is pay-for-what-you-use too: a live
/// [`ObsHub`] whose window is *disabled* (the default) must not change
/// the warmed batched hot path's zero-allocation invariant — the
/// window machinery may only cost anything once `enable_window` is
/// called, and even then only on the sampling thread, never in the
/// walk.
#[test]
fn disabled_window_layer_keeps_walk_batch_allocation_free() {
    use sedspec_repro::obs::{ObsHub, ScopeInfo};

    let kind = DeviceKind::Fdc;
    let mut device = build_device(kind, QemuVersion::Patched);
    let mut ctx = VmContext::new(0x200000, 8192);
    let suite = training_suite(kind, 40, 0x7a11);
    let spec = train_script(&mut device, &mut ctx, &suite, &TrainingConfig::default()).unwrap();

    // A hub exists in the process, scopes registered, window off —
    // the daemon's shape before anyone calls `enable_window`.
    let hub = Arc::new(ObsHub::new());
    let _scope = hub.register_scope(ScopeInfo::tenant_device(0, 1, "FDC"));
    assert!(!hub.window_enabled(), "the windowed layer must be off by default");
    assert!(hub.sample_window(0).is_none(), "a disabled window must not sample");

    let device = build_device(kind, QemuVersion::Patched);
    let req = IoRequest::read(AddressSpace::Pmio, 0x3f4, 1);
    let pi = device.route(&req).expect("the poll port routes to a program");
    let mut checker = EsChecker::new(spec, device.control.clone());

    const BATCH: usize = 256;
    let reqs: Vec<IoRequest> = (0..BATCH).map(|_| req.clone()).collect();
    let mut out = BatchOutcome::default();
    for _ in 0..8 {
        checker.walk_batch(reqs.iter().map(|r| (pi, r)), &mut out);
        checker.abort_batch();
    }

    let before = allocs_on_this_thread();
    for _ in 0..16 {
        checker.walk_batch(reqs.iter().map(|r| (pi, r)), &mut out);
        checker.abort_batch();
    }
    let during = allocs_on_this_thread() - before;
    assert_eq!(
        during, 0,
        "walk_batch allocated {during} times with a window-disabled hub alive; the windowed \
         layer must be pay-for-what-you-use"
    );
    drop(hub);
}
