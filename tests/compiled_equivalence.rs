//! Differential proof that the compiled enforcement hot path is
//! verdict-equivalent to the interpreted reference walk.
//!
//! Two enforcing devices over the *same trained specification* — one on
//! [`Engine::Compiled`] (journaled in-place walk over the
//! `CompiledSpec`), one on [`Engine::Interpreted`] (per-round shadow
//! clone) — service identical traffic. Every round must produce the
//! same [`IoVerdict`], the same alert level, and at the end the same
//! [`EnforceStats`], halt latch, shadow state and command scope. Runs
//! over random benign-and-rare batches for all five devices in both
//! working modes, plus every CVE proof-of-concept stream from Table III.

use proptest::prelude::*;
use sedspec::checker::WorkingMode;
use sedspec::collect::{apply_step, TrainStep};
use sedspec::enforce::{EnforcingDevice, Engine};
use sedspec::pipeline::{train_script, TrainingConfig};
use sedspec::response::highest_alert;
use sedspec::spec::ExecutionSpecification;
use sedspec_dbl::interp::ExecLimits;
use sedspec_repro::devices::{build_device, DeviceKind, QemuVersion};
use sedspec_repro::vmm::VmContext;
use sedspec_repro::workloads::attacks::{poc, Cve};
use sedspec_repro::workloads::generators::{eval_case, training_suite};
use sedspec_repro::workloads::InteractionMode;

fn train(kind: DeviceKind, version: QemuVersion, cases: usize) -> ExecutionSpecification {
    let mut device = build_device(kind, version);
    device.set_limits(ExecLimits { max_steps: 50_000 });
    let mut ctx = VmContext::new(0x200000, 8192);
    let suite = training_suite(kind, cases, 0x7a11);
    train_script(&mut device, &mut ctx, &suite, &TrainingConfig::default()).expect("training")
}

/// Drives both engines through `steps` and asserts lockstep equality.
fn assert_engines_agree(
    kind: DeviceKind,
    version: QemuVersion,
    spec: &ExecutionSpecification,
    mode: WorkingMode,
    steps: &[TrainStep],
) -> Result<(), TestCaseError> {
    let build = |engine| {
        let mut device = build_device(kind, version);
        device.set_limits(ExecLimits { max_steps: 50_000 });
        EnforcingDevice::new(device, spec.clone(), mode).with_engine(engine)
    };
    let mut compiled = build(Engine::Compiled);
    let mut interp = build(Engine::Interpreted);
    let mut ctx_c = VmContext::new(0x200000, 8192);
    let mut ctx_i = VmContext::new(0x200000, 8192);

    for (round, step) in steps.iter().enumerate() {
        let req_c = apply_step(step, &mut ctx_c);
        let req_i = apply_step(step, &mut ctx_i);
        prop_assert_eq!(&req_c, &req_i, "{} round {}: request streams diverged", kind, round);
        let Some(req) = req_c else { continue };
        if compiled.device.route(req).is_none() {
            continue;
        }
        let vc = compiled.handle_io(&mut ctx_c, req);
        let vi = interp.handle_io(&mut ctx_i, req_i.unwrap());
        prop_assert_eq!(
            &vc,
            &vi,
            "{} {:?} round {}: verdicts diverged on {:?}",
            kind,
            mode,
            round,
            step
        );
        prop_assert_eq!(
            highest_alert(vc.violations()),
            highest_alert(vi.violations()),
            "{} {:?} round {}: alert levels diverged",
            kind,
            mode,
            round
        );
    }

    prop_assert_eq!(compiled.stats, interp.stats, "{} {:?}: EnforceStats diverged", kind, mode);
    prop_assert_eq!(
        compiled.is_halted(),
        interp.is_halted(),
        "{} {:?}: halt latches diverged",
        kind,
        mode
    );
    prop_assert_eq!(
        compiled.checker().shadow(),
        interp.checker().shadow(),
        "{} {:?}: committed shadow states diverged",
        kind,
        mode
    );
    prop_assert_eq!(
        compiled.checker().cmd_ctx(),
        interp.checker().cmd_ctx(),
        "{} {:?}: command scopes diverged",
        kind,
        mode
    );
    Ok(())
}

fn run_differential(kind: DeviceKind, seed: u64) -> Result<(), TestCaseError> {
    let spec = train(kind, QemuVersion::Patched, 40);
    // Even seeds stay benign; odd seeds inject rare/hostile operations
    // so the violation paths (halts, warnings, aborts) are compared too.
    let rare = if seed.is_multiple_of(2) { 0.0 } else { 0.25 };
    let mode = InteractionMode::all()[(seed % 3) as usize];
    let steps = eval_case(kind, mode, rare, seed);
    for working in [WorkingMode::Protection, WorkingMode::Enhancement] {
        assert_engines_agree(kind, QemuVersion::Patched, &spec, working, &steps)?;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    #[test]
    fn fdc_compiled_matches_interpreted(seed in 0u64..5000) {
        run_differential(DeviceKind::Fdc, seed)?;
    }

    #[test]
    fn sdhci_compiled_matches_interpreted(seed in 0u64..5000) {
        run_differential(DeviceKind::Sdhci, seed)?;
    }

    #[test]
    fn scsi_compiled_matches_interpreted(seed in 0u64..5000) {
        run_differential(DeviceKind::Scsi, seed)?;
    }

    #[test]
    fn ehci_compiled_matches_interpreted(seed in 0u64..5000) {
        run_differential(DeviceKind::UsbEhci, seed)?;
    }

    #[test]
    fn pcnet_compiled_matches_interpreted(seed in 0u64..5000) {
        run_differential(DeviceKind::Pcnet, seed)?;
    }
}

/// Every CVE proof-of-concept stream (including the known-miss case)
/// renders identical verdicts on both engines, in both working modes,
/// against the vulnerable device version it targets.
#[test]
fn cve_pocs_render_identical_verdicts() {
    for cve in Cve::all_with_known_miss() {
        let p = poc(cve);
        let spec = train(p.device, p.qemu_version, 60);
        for mode in [WorkingMode::Protection, WorkingMode::Enhancement] {
            assert_engines_agree(p.device, p.qemu_version, &spec, mode, &p.steps)
                .unwrap_or_else(|e| panic!("{}: {}", p.cve.id(), e));
        }
    }
}
