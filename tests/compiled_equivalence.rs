//! Differential proof that the compiled enforcement hot path is
//! verdict-equivalent to the interpreted reference walk.
//!
//! Two enforcing devices over the *same trained specification* — one on
//! [`Engine::Compiled`] (journaled in-place walk over the
//! `CompiledSpec`), one on [`Engine::Interpreted`] (per-round shadow
//! clone) — service identical traffic. Every round must produce the
//! same [`IoVerdict`], the same alert level, and at the end the same
//! [`EnforceStats`], halt latch, shadow state and command scope. Runs
//! over random benign-and-rare batches for all five devices in both
//! working modes, plus every CVE proof-of-concept stream from Table III.

use std::sync::Arc;

use proptest::prelude::*;
use sedspec::checker::{NoSync, WorkingMode};
use sedspec::collect::{apply_step, TrainStep};
use sedspec::compiled::{CompileOptions, CompiledSpec};
use sedspec::enforce::{EnforcingDevice, Engine, IoVerdict};
use sedspec::pipeline::{train_script, TrainingConfig};
use sedspec::response::highest_alert;
use sedspec::spec::ExecutionSpecification;
use sedspec_dbl::interp::ExecLimits;
use sedspec_repro::devices::{build_device, DeviceKind, QemuVersion};
use sedspec_repro::obs::{ObsHub, ScopeInfo};
use sedspec_repro::vmm::{IoRequest, VmContext};
use sedspec_repro::workloads::attacks::{poc, Cve};
use sedspec_repro::workloads::generators::{eval_case, training_suite};
use sedspec_repro::workloads::InteractionMode;

fn train(kind: DeviceKind, version: QemuVersion, cases: usize) -> ExecutionSpecification {
    let mut device = build_device(kind, version);
    device.set_limits(ExecLimits { max_steps: 50_000, ..ExecLimits::default() });
    let mut ctx = VmContext::new(0x200000, 8192);
    let suite = training_suite(kind, cases, 0x7a11);
    train_script(&mut device, &mut ctx, &suite, &TrainingConfig::default()).expect("training")
}

/// Drives both engines through `steps` and asserts lockstep equality.
fn assert_engines_agree(
    kind: DeviceKind,
    version: QemuVersion,
    spec: &ExecutionSpecification,
    mode: WorkingMode,
    steps: &[TrainStep],
) -> Result<(), TestCaseError> {
    let build = |engine| {
        let mut device = build_device(kind, version);
        device.set_limits(ExecLimits { max_steps: 50_000, ..ExecLimits::default() });
        EnforcingDevice::new(device, spec.clone(), mode).with_engine(engine)
    };
    let mut compiled = build(Engine::Compiled);
    let mut interp = build(Engine::Interpreted);
    let mut ctx_c = VmContext::new(0x200000, 8192);
    let mut ctx_i = VmContext::new(0x200000, 8192);

    for (round, step) in steps.iter().enumerate() {
        let req_c = apply_step(step, &mut ctx_c);
        let req_i = apply_step(step, &mut ctx_i);
        prop_assert_eq!(&req_c, &req_i, "{} round {}: request streams diverged", kind, round);
        let Some(req) = req_c else { continue };
        if compiled.device.route(req).is_none() {
            continue;
        }
        let vc = compiled.handle_io(&mut ctx_c, req);
        let vi = interp.handle_io(&mut ctx_i, req_i.unwrap());
        prop_assert_eq!(
            &vc,
            &vi,
            "{} {:?} round {}: verdicts diverged on {:?}",
            kind,
            mode,
            round,
            step
        );
        prop_assert_eq!(
            highest_alert(vc.violations()),
            highest_alert(vi.violations()),
            "{} {:?} round {}: alert levels diverged",
            kind,
            mode,
            round
        );
    }

    prop_assert_eq!(compiled.stats, interp.stats, "{} {:?}: EnforceStats diverged", kind, mode);
    prop_assert_eq!(
        compiled.is_halted(),
        interp.is_halted(),
        "{} {:?}: halt latches diverged",
        kind,
        mode
    );
    prop_assert_eq!(
        compiled.checker().shadow(),
        interp.checker().shadow(),
        "{} {:?}: committed shadow states diverged",
        kind,
        mode
    );
    prop_assert_eq!(
        compiled.checker().cmd_ctx(),
        interp.checker().cmd_ctx(),
        "{} {:?}: command scopes diverged",
        kind,
        mode
    );
    Ok(())
}

fn run_differential(kind: DeviceKind, seed: u64) -> Result<(), TestCaseError> {
    let spec = train(kind, QemuVersion::Patched, 40);
    // Even seeds stay benign; odd seeds inject rare/hostile operations
    // so the violation paths (halts, warnings, aborts) are compared too.
    let rare = if seed.is_multiple_of(2) { 0.0 } else { 0.25 };
    let mode = InteractionMode::all()[(seed % 3) as usize];
    let steps = eval_case(kind, mode, rare, seed);
    for working in [WorkingMode::Protection, WorkingMode::Enhancement] {
        assert_engines_agree(kind, QemuVersion::Patched, &spec, working, &steps)?;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    #[test]
    fn fdc_compiled_matches_interpreted(seed in 0u64..5000) {
        run_differential(DeviceKind::Fdc, seed)?;
    }

    #[test]
    fn sdhci_compiled_matches_interpreted(seed in 0u64..5000) {
        run_differential(DeviceKind::Sdhci, seed)?;
    }

    #[test]
    fn scsi_compiled_matches_interpreted(seed in 0u64..5000) {
        run_differential(DeviceKind::Scsi, seed)?;
    }

    #[test]
    fn ehci_compiled_matches_interpreted(seed in 0u64..5000) {
        run_differential(DeviceKind::UsbEhci, seed)?;
    }

    #[test]
    fn pcnet_compiled_matches_interpreted(seed in 0u64..5000) {
        run_differential(DeviceKind::Pcnet, seed)?;
    }
}

/// Every CVE proof-of-concept stream (including the known-miss case)
/// renders identical verdicts on both engines, in both working modes,
/// against the vulnerable device version it targets.
#[test]
fn cve_pocs_render_identical_verdicts() {
    for cve in Cve::all_with_known_miss() {
        let p = poc(cve);
        let spec = train(p.device, p.qemu_version, 60);
        for mode in [WorkingMode::Protection, WorkingMode::Enhancement] {
            assert_engines_agree(p.device, p.qemu_version, &spec, mode, &p.steps)
                .unwrap_or_else(|e| panic!("{}: {}", p.cve.id(), e));
        }
    }
}

/// Drives one compiled enforcer per round and a second through
/// [`EnforcingDevice::handle_batch`] in `chunk`-request submissions,
/// asserting the batched amortization is unobservable: same verdict
/// sequence, same alert levels, same final [`sedspec::enforce::EnforceStats`]
/// (aborts included), same halt latch, committed shadow bytes and
/// command scope. Non-I/O steps (guest memory writes, delays) flush the
/// pending chunk first, exactly as a pool drains before foreign events.
fn assert_batched_matches_sequential(
    kind: DeviceKind,
    version: QemuVersion,
    compiled: &Arc<CompiledSpec>,
    mode: WorkingMode,
    steps: &[TrainStep],
    chunk: usize,
) -> Result<(), TestCaseError> {
    let build = || {
        let mut device = build_device(kind, version);
        device.set_limits(ExecLimits { max_steps: 50_000, ..ExecLimits::default() });
        EnforcingDevice::new_compiled(device, Arc::clone(compiled), mode)
    };
    let mut seq = build();
    let mut bat = build();
    let mut ctx_s = VmContext::new(0x200000, 8192);
    let mut ctx_b = VmContext::new(0x200000, 8192);
    let mut verdicts_s: Vec<IoVerdict> = Vec::new();
    let mut verdicts_b: Vec<IoVerdict> = Vec::new();
    let mut pending: Vec<IoRequest> = Vec::new();

    fn flush(
        bat: &mut EnforcingDevice,
        ctx: &mut VmContext,
        pending: &mut Vec<IoRequest>,
        verdicts: &mut Vec<IoVerdict>,
    ) {
        let refs: Vec<&IoRequest> = pending.iter().collect();
        let mut consumed = 0;
        while consumed < refs.len() {
            let n = bat.handle_batch(ctx, &refs[consumed..], verdicts);
            assert!(n > 0, "a non-empty batch consumes at least one round");
            consumed += n;
        }
        pending.clear();
    }

    for step in steps {
        if let TrainStep::Io(req) = step {
            verdicts_s.push(seq.handle_io(&mut ctx_s, req));
            pending.push(req.clone());
            if pending.len() >= chunk {
                flush(&mut bat, &mut ctx_b, &mut pending, &mut verdicts_b);
            }
        } else {
            flush(&mut bat, &mut ctx_b, &mut pending, &mut verdicts_b);
            apply_step(step, &mut ctx_b);
            apply_step(step, &mut ctx_s);
        }
    }
    flush(&mut bat, &mut ctx_b, &mut pending, &mut verdicts_b);

    prop_assert_eq!(
        verdicts_s.len(),
        verdicts_b.len(),
        "{} {:?} chunk {}: verdict counts diverged",
        kind,
        mode,
        chunk
    );
    for (round, (vs, vb)) in verdicts_s.iter().zip(&verdicts_b).enumerate() {
        prop_assert_eq!(
            vs,
            vb,
            "{} {:?} chunk {} round {}: batched verdict diverged",
            kind,
            mode,
            chunk,
            round
        );
        prop_assert_eq!(
            highest_alert(vs.violations()),
            highest_alert(vb.violations()),
            "{} {:?} chunk {} round {}: alert levels diverged",
            kind,
            mode,
            chunk,
            round
        );
    }
    prop_assert_eq!(
        seq.stats,
        bat.stats,
        "{} {:?} chunk {}: EnforceStats diverged",
        kind,
        mode,
        chunk
    );
    prop_assert_eq!(
        seq.is_halted(),
        bat.is_halted(),
        "{} {:?} chunk {}: halt latches diverged",
        kind,
        mode,
        chunk
    );
    prop_assert_eq!(
        seq.checker().shadow(),
        bat.checker().shadow(),
        "{} {:?} chunk {}: committed shadow states diverged",
        kind,
        mode,
        chunk
    );
    prop_assert_eq!(
        seq.checker().cmd_ctx(),
        bat.checker().cmd_ctx(),
        "{} {:?} chunk {}: command scopes diverged",
        kind,
        mode,
        chunk
    );
    Ok(())
}

fn run_batched_differential(kind: DeviceKind, seed: u64) -> Result<(), TestCaseError> {
    let spec = train(kind, QemuVersion::Patched, 40);
    let compiled = Arc::new(CompiledSpec::compile(Arc::new(spec)));
    let rare = if seed.is_multiple_of(2) { 0.0 } else { 0.25 };
    let mode = InteractionMode::all()[(seed % 3) as usize];
    let steps = eval_case(kind, mode, rare, seed);
    let chunk = [1, 2, 3, 5, 16, 64, 256][(seed % 7) as usize];
    for working in [WorkingMode::Protection, WorkingMode::Enhancement] {
        assert_batched_matches_sequential(
            kind,
            QemuVersion::Patched,
            &compiled,
            working,
            &steps,
            chunk,
        )?;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    #[test]
    fn fdc_batched_matches_sequential(seed in 0u64..5000) {
        run_batched_differential(DeviceKind::Fdc, seed)?;
    }

    #[test]
    fn sdhci_batched_matches_sequential(seed in 0u64..5000) {
        run_batched_differential(DeviceKind::Sdhci, seed)?;
    }

    #[test]
    fn scsi_batched_matches_sequential(seed in 0u64..5000) {
        run_batched_differential(DeviceKind::Scsi, seed)?;
    }

    #[test]
    fn ehci_batched_matches_sequential(seed in 0u64..5000) {
        run_batched_differential(DeviceKind::UsbEhci, seed)?;
    }

    #[test]
    fn pcnet_batched_matches_sequential(seed in 0u64..5000) {
        run_batched_differential(DeviceKind::Pcnet, seed)?;
    }
}

/// Every CVE proof-of-concept stream produces the same verdicts whether
/// submitted round by round or through the batched path — hostile
/// rounds stop the batch and re-drive sequentially, so detection
/// ordering must be bit-identical.
#[test]
fn cve_pocs_batched_matches_sequential() {
    for cve in Cve::all_with_known_miss() {
        let p = poc(cve);
        let spec = train(p.device, p.qemu_version, 60);
        let compiled = Arc::new(CompiledSpec::compile(Arc::new(spec)));
        for mode in [WorkingMode::Protection, WorkingMode::Enhancement] {
            for chunk in [1, 7, 256] {
                assert_batched_matches_sequential(
                    p.device,
                    p.qemu_version,
                    &compiled,
                    mode,
                    &p.steps,
                    chunk,
                )
                .unwrap_or_else(|e| panic!("{}: {}", p.cve.id(), e));
            }
        }
    }
}

/// Profile-guided block reordering is layout-only: a spec compiled with
/// a live heat profile must render the same verdicts, stats and shadow
/// as the identity layout on benign and hostile streams.
#[test]
fn pgo_layout_preserves_verdicts() {
    for kind in [DeviceKind::Fdc, DeviceKind::Pcnet, DeviceKind::Sdhci] {
        let spec = train(kind, QemuVersion::Patched, 40);
        let identity = Arc::new(CompiledSpec::compile(Arc::new(spec.clone())));

        // Warm a sinked checker on a short benign stream to accumulate
        // block heat, then recompile with the profile — the same
        // feedback loop `SpecRegistry::optimize_from_obs` runs.
        let hub = Arc::new(ObsHub::new());
        let device = build_device(kind, QemuVersion::Patched);
        let mut warm = sedspec::checker::EsChecker::new(spec.clone(), device.control.clone());
        warm.set_sink(Some(hub.sink(ScopeInfo::device(kind.to_string()))));
        let mut ctx = VmContext::new(0x200000, 8192);
        for step in &eval_case(kind, InteractionMode::all()[0], 0.0, 0x5eed) {
            if let Some(req) = apply_step(step, &mut ctx) {
                if let Some(pi) = device.route(req) {
                    warm.walk_round_fast(pi, req, &mut NoSync);
                    warm.abort_round();
                }
            }
        }
        let profile = hub.heat_profile(&kind.to_string());
        let pgo = Arc::new(CompiledSpec::compile_with(
            Arc::new(spec),
            &CompileOptions { profile: Some(&profile) },
        ));

        for seed in [0u64, 1, 3] {
            let rare = if seed == 0 { 0.0 } else { 0.25 };
            let steps = eval_case(kind, InteractionMode::all()[(seed % 3) as usize], rare, seed);
            for mode in [WorkingMode::Protection, WorkingMode::Enhancement] {
                let drive = |compiled: &Arc<CompiledSpec>| {
                    let mut dev = build_device(kind, QemuVersion::Patched);
                    dev.set_limits(ExecLimits { max_steps: 50_000, ..ExecLimits::default() });
                    let mut enf = EnforcingDevice::new_compiled(dev, Arc::clone(compiled), mode);
                    let mut ctx = VmContext::new(0x200000, 8192);
                    let mut verdicts = Vec::new();
                    for step in &steps {
                        if let Some(req) = apply_step(step, &mut ctx) {
                            verdicts.push(enf.handle_io(&mut ctx, req));
                        }
                    }
                    (verdicts, enf.stats, enf.is_halted())
                };
                let (vi, si, hi) = drive(&identity);
                let (vp, sp, hp) = drive(&pgo);
                assert_eq!(vi, vp, "{kind} {mode:?}: PGO layout changed verdicts");
                assert_eq!(si, sp, "{kind} {mode:?}: PGO layout changed stats");
                assert_eq!(hi, hp, "{kind} {mode:?}: PGO layout changed halt latch");
            }
        }
    }
}
