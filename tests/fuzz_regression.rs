//! Replays the committed fuzz corpus (`ci/fuzz-corpus/`) and asserts
//! every artifact still produces its recorded verdict, exactly.
//!
//! Each artifact carries the `(device, version)` it targets, the step
//! stream, and the [`Classification`] the producing campaign observed.
//! The oracle deploys the canonical training recipe (same constants as
//! the campaign and CLI), so a mismatch here means device models, spec
//! construction or checker semantics drifted — the failing file names
//! the witness input.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

use sedspec::compiled::CompiledSpec;
use sedspec_repro::fuzz::{
    load_dir, parse_kind, parse_version, trained_compiled, FindingClass, Oracle,
};

fn corpus_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("ci/fuzz-corpus")
}

#[test]
fn corpus_is_present_and_covers_every_device() {
    let root = corpus_root();
    for slug in ["fdc", "usb-ehci", "pcnet", "sdhci", "scsi"] {
        let dir = root.join(slug);
        assert!(dir.is_dir(), "missing committed corpus dir {}", dir.display());
        let entries = load_dir(&dir).expect("corpus dir loads");
        assert!(!entries.is_empty(), "{slug}: corpus dir is empty");
    }
}

#[test]
fn every_artifact_replays_to_its_recorded_verdict() {
    let root = corpus_root();
    let mut specs: BTreeMap<(String, String), Arc<CompiledSpec>> = BTreeMap::new();
    let mut replayed = 0usize;
    for slug in ["fdc", "usb-ehci", "pcnet", "sdhci", "scsi"] {
        for (path, artifact) in load_dir(&root.join(slug)).expect("corpus dir loads") {
            assert_eq!(artifact.device, slug, "{}: artifact in wrong dir", path.display());
            let kind = parse_kind(&artifact.device)
                .unwrap_or_else(|| panic!("{}: unknown device", path.display()));
            let version = parse_version(&artifact.version)
                .unwrap_or_else(|| panic!("{}: unknown version", path.display()));
            let compiled = specs
                .entry((artifact.device.clone(), artifact.version.clone()))
                .or_insert_with(|| trained_compiled(kind, version));
            let oracle = Oracle::new(kind, version, Arc::clone(compiled));
            let (got, coverage) = oracle.run(&artifact.steps);
            assert_eq!(got, artifact.expected, "{}: verdict drifted", path.display());
            assert!(coverage.covered() > 0, "{}: replay covered nothing", path.display());
            replayed += 1;
        }
    }
    assert!(replayed >= 30, "suspiciously small corpus: {replayed} artifacts");
}

#[test]
fn committed_findings_include_the_known_spec_gap() {
    // CVE-2016-4439 is the committed false negative: real device damage
    // the deployed spec misses. The corpus must keep witnessing it so a
    // future spec improvement flips the artifact (and this test) loudly.
    let entries = load_dir(&corpus_root().join("scsi")).expect("scsi corpus loads");
    let gap = entries
        .iter()
        .find(|(p, _)| p.ends_with("cve-cve-2016-4439.json"))
        .map(|(_, a)| a.expected.class);
    assert_eq!(gap, Some(FindingClass::FalseNegative));
}
