//! API-guideline conformance checks (C-SEND-SYNC, C-GOOD-ERR,
//! C-DEBUG-NONEMPTY): the types users hold across threads must be Send
//! and Sync, error types must implement `Error + Display`, and Debug
//! output is never empty.

use std::error::Error;

use sedspec::checker::{EsChecker, Violation};
use sedspec::enforce::EnforcingDevice;
use sedspec::spec::ExecutionSpecification;
use sedspec_repro::devices::{build_device, Device, DeviceKind, QemuVersion};
use sedspec_repro::vmm::VmContext;

fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn core_types_are_send_and_sync() {
    assert_send_sync::<Device>();
    assert_send_sync::<ExecutionSpecification>();
    assert_send_sync::<EsChecker>();
    assert_send_sync::<EnforcingDevice>();
    assert_send_sync::<VmContext>();
    assert_send_sync::<sedspec_dbl::ir::Program>();
    assert_send_sync::<sedspec_dbl::state::CsState>();
    assert_send_sync::<sedspec_trace::itc_cfg::ItcCfg>();
    assert_send_sync::<sedspec_vmm::IrqLine>();
    assert_send_sync::<Violation>();
}

#[test]
fn error_types_behave() {
    fn check<E: Error + Send + Sync + 'static>(e: E) {
        let msg = e.to_string();
        assert!(!msg.is_empty());
        assert!(!msg.ends_with('.'), "error messages are unpunctuated: {msg:?}");
        let boxed: Box<dyn Error + Send + Sync> = Box::new(e);
        let _ = boxed.to_string();
    }
    check(sedspec_vmm::VmmError::UnmappedIo { addr: 0x1234 });
    check(sedspec_dbl::verify::VerifyError::NoEntry);
    check(sedspec_dbl::interp::Fault::StepLimit { limit: 7 });
    check(sedspec_dbl::state::ArenaOutOfBounds { offset: -1, size: 8 });
    check(sedspec_trace::packet::WireError::Truncated);
    check(sedspec_trace::decode::DecodeError::MissingPge);
    check(sedspec::pipeline::TrainError::EmptyTraining);
    check(sedspec::merge::MergeError::ParamMismatch);
}

#[test]
fn debug_output_is_never_empty() {
    let device = build_device(DeviceKind::Fdc, QemuVersion::Patched);
    assert!(!format!("{device:?}").is_empty());
    assert!(!format!("{:?}", sedspec_dbl::value::OverflowFlags::clear()).is_empty());
    assert!(!format!("{:?}", sedspec_vmm::IoResult::default()).is_empty());
    assert!(!format!("{:?}", sedspec_trace::itc_cfg::ItcCfg::new()).is_empty());
}

#[test]
fn enforcement_works_across_threads() {
    // The whole enforcement stack can be moved to a worker thread (the
    // shape a per-device I/O thread in a VMM would use).
    use sedspec::checker::WorkingMode;
    use sedspec::pipeline::{deploy, train, TrainingConfig};
    use sedspec_vmm::{AddressSpace, IoRequest};

    let mut device = build_device(DeviceKind::Fdc, QemuVersion::Patched);
    let mut ctx = VmContext::new(0x10000, 64);
    let spec = train(
        &mut device,
        &mut ctx,
        &[vec![IoRequest::read(AddressSpace::Pmio, 0x3f4, 1)]],
        &TrainingConfig::default(),
    )
    .unwrap();
    let mut enforcer = deploy(device, spec, WorkingMode::Protection);

    let handle = std::thread::spawn(move || {
        let mut ctx = VmContext::new(0x10000, 64);
        let v = enforcer.handle_io(&mut ctx, &IoRequest::read(AddressSpace::Pmio, 0x3f4, 1));
        matches!(v, sedspec::enforce::IoVerdict::Allowed(_))
    });
    assert!(handle.join().unwrap());
}
