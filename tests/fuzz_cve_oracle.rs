//! The CVE oracle: PoC-seeded differential replay rediscovers the
//! paper's Table III divergences on vulnerable builds and stays silent
//! (no false negatives) on patched builds.
//!
//! This is the fuzzer's end-to-end calibration. Each PoC prefix seeds
//! the oracle exactly the way a committed corpus entry would; a
//! `Detected` verdict means the bare device damaged itself *and* the
//! enforced walk flagged the stream no later than the damage round.

use sedspec_repro::devices::QemuVersion;
use sedspec_repro::fuzz::{run_campaign, trained_compiled, FindingClass, FuzzOptions, Oracle};
use sedspec_repro::workloads::attacks::{poc, Cve};

/// Vulnerable builds: every Table III PoC must register a divergence,
/// and at least 6/8 must be fully `Detected` (damage flagged in time).
#[test]
fn table_iii_divergences_rediscovered_on_vulnerable_builds() {
    let mut detected = 0usize;
    for cve in Cve::all() {
        let p = poc(cve);
        let oracle =
            Oracle::new(p.device, p.qemu_version, trained_compiled(p.device, p.qemu_version));
        let (c, _) = oracle.run(&p.steps);
        assert_ne!(
            c.class,
            FindingClass::Clean,
            "{}: PoC registered no divergence on vulnerable build ({c:?})",
            cve.id()
        );
        if c.class == FindingClass::Detected {
            detected += 1;
        } else {
            // The only tolerated shortfall is the committed spec gap.
            assert_eq!(cve, Cve::Cve2016_4439, "{}: unexpected {c:?}", cve.id());
        }
    }
    assert!(detected >= 6, "only {detected}/8 CVEs fully detected");
}

/// Patched builds: replaying every PoC produces zero false negatives —
/// the patched devices take no damage the spec then misses.
#[test]
fn poc_replay_on_patched_builds_has_no_false_negatives() {
    for cve in Cve::all_with_known_miss() {
        let p = poc(cve);
        let oracle = Oracle::new(
            p.device,
            QemuVersion::Patched,
            trained_compiled(p.device, QemuVersion::Patched),
        );
        let (c, _) = oracle.run(&p.steps);
        assert_ne!(
            c.class,
            FindingClass::FalseNegative,
            "{}: false negative on patched build ({c:?})",
            cve.id()
        );
    }
}

/// A bounded campaign seeded with the Venom PoC prefix keeps the
/// divergence visible in its report (fuzzing must not lose findings
/// the seeds already witness).
#[test]
fn campaign_seeded_with_poc_keeps_the_finding() {
    let p = poc(Cve::Cve2015_3456);
    let dir = std::env::temp_dir().join("sedspec-fuzz-cve-seed");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    // Stage the PoC as a seed artifact the campaign will load.
    let oracle = Oracle::new(p.device, p.qemu_version, trained_compiled(p.device, p.qemu_version));
    let (expected, _) = oracle.run(&p.steps);
    assert_eq!(expected.class, FindingClass::Detected);
    let artifact = sedspec_repro::fuzz::Artifact {
        device: sedspec_repro::fuzz::kind_slug(p.device).to_string(),
        version: p.qemu_version.to_string(),
        steps: p.steps.clone(),
        expected: expected.clone(),
    };
    std::fs::write(dir.join("seed-venom.json"), artifact.to_json()).unwrap();

    let out = run_campaign(&FuzzOptions {
        device: p.device,
        version: p.qemu_version,
        seed: 7,
        rounds: 1500,
        corpus_dir: Some(dir.clone()),
    })
    .unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    let keys: Vec<String> = out.findings.iter().map(|f| f.classification.dedup_key()).collect();
    assert!(
        keys.contains(&expected.dedup_key()),
        "campaign lost the seeded Venom finding: {keys:?}"
    );
}
