//! Offline stand-in for `crossbeam`: multi-producer multi-consumer
//! channels with the `crossbeam::channel` API shape, built on
//! `std::sync::mpsc` with an `Arc<Mutex<Receiver>>` to make the
//! receiving side cloneable. Throughput is lower than real crossbeam,
//! but semantics (FIFO per sender, disconnect on drop) match.

/// MPMC channels.
pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders disconnected.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived in time.
        Timeout,
        /// All senders disconnected.
        Disconnected,
    }

    /// The sending half (cloneable).
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender { inner: self.inner.clone() }
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `value`.
        ///
        /// # Errors
        ///
        /// Returns the value back when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// The receiving half (cloneable: receivers share one queue).
    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver { inner: Arc::clone(&self.inner) }
        }
    }

    impl<T> Receiver<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, mpsc::Receiver<T>> {
            self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
        }

        /// Blocks until a message arrives.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] when the channel is empty and every
        /// sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.lock().recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] when no message is queued,
        /// [`TryRecvError::Disconnected`] when every sender is gone.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.lock().try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocks up to `timeout` for a message.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError::Timeout`] when nothing arrived in time,
        /// [`RecvTimeoutError::Disconnected`] when every sender is gone.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.lock().recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Drains currently queued messages without blocking.
        pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.try_recv().ok())
        }

        /// Iterates until the channel disconnects.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.recv().ok())
        }
    }

    /// An unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: Arc::new(Mutex::new(rx)) })
    }

    /// A bounded channel. The std backend bounds only rendezvous
    /// behaviour loosely: `cap` maps onto `sync_channel`'s buffer.
    pub fn bounded<T>(cap: usize) -> (SyncSender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (SyncSender { inner: tx }, Receiver { inner: Arc::new(Mutex::new(rx)) })
    }

    /// The sending half of a bounded channel (cloneable).
    pub struct SyncSender<T> {
        inner: mpsc::SyncSender<T>,
    }

    impl<T> Clone for SyncSender<T> {
        fn clone(&self) -> Self {
            SyncSender { inner: self.inner.clone() }
        }
    }

    impl<T> SyncSender<T> {
        /// Enqueues `value`, blocking while the buffer is full.
        ///
        /// # Errors
        ///
        /// Returns the value back when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }
}
