//! Offline stand-in for `parking_lot`: the same non-poisoning lock API,
//! implemented by unwrapping `std::sync` poison errors (a panic while
//! holding a lock aborts the protected invariant anyway in this
//! workspace's usage).

use std::sync;
use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock without lock poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// A new lock holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock without lock poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// A new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}
