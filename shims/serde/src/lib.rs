//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal serde-compatible framework. It keeps the parts of
//! the real API this repository uses — `Serialize`/`Deserialize` derive
//! macros, generic `Serializer`/`Deserializer` bounds (for
//! `#[serde(with = "...")]` modules), and a `serde_json`-style facade —
//! but collapses the data model to one owned [`Value`] tree instead of
//! the visitor machinery. Formats other than JSON are out of scope.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;
use std::hash::Hash;
use std::sync::Arc;

/// The universal data-model value all (de)serialization goes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A negative integer (stored when the value does not fit `u64`).
    I64(i64),
    /// A non-negative integer.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (insertion order preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Deserialization (and generic serialization) error: a plain message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// An error carrying `msg`.
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError(msg.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Mirror of `serde::ser::Error` / `serde::de::Error`: constructible
/// from any displayable message.
pub trait ErrorTrait: Sized {
    /// Builds the error from a message.
    fn custom(msg: impl fmt::Display) -> Self;
}

impl ErrorTrait for DeError {
    fn custom(msg: impl fmt::Display) -> Self {
        DeError::custom(msg)
    }
}

/// A sink consuming one [`Value`] tree.
pub trait Serializer: Sized {
    /// Success payload.
    type Ok;
    /// Failure payload.
    type Error: ErrorTrait;
    /// Consumes the serialized value.
    fn serialize_value(self, v: Value) -> Result<Self::Ok, Self::Error>;
}

/// A source yielding one [`Value`] tree.
pub trait Deserializer<'de>: Sized {
    /// Failure payload.
    type Error: ErrorTrait;
    /// Produces the value to deserialize from.
    fn take_value(self) -> Result<Value, Self::Error>;
}

/// Types serializable into the value data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;

    /// serde-compatible entry point.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(self.to_value())
    }
}

/// Types reconstructible from the value data model.
pub trait Deserialize<'de>: Sized {
    /// Rebuilds `Self` from a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;

    /// serde-compatible entry point.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let v = deserializer.take_value()?;
        Self::from_value(&v).map_err(<D::Error as ErrorTrait>::custom)
    }
}

/// A [`Serializer`] that simply hands the value tree back.
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = DeError;
    fn serialize_value(self, v: Value) -> Result<Value, DeError> {
        Ok(v)
    }
}

/// A [`Deserializer`] over an owned value tree.
pub struct ValueDeserializer(pub Value);

impl ValueDeserializer {
    /// Wraps `v`.
    pub fn new(v: Value) -> Self {
        ValueDeserializer(v)
    }
}

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = DeError;
    fn take_value(self) -> Result<Value, DeError> {
        Ok(self.0)
    }
}

// ---------------------------------------------------------------------
// Support helpers used by the derive expansion.
// ---------------------------------------------------------------------

/// Runs a `#[serde(with = "...")]` serialize fn against [`ValueSerializer`].
pub fn with_to_value<F>(f: F) -> Value
where
    F: FnOnce(ValueSerializer) -> Result<Value, DeError>,
{
    f(ValueSerializer).unwrap_or(Value::Null)
}

/// The value of field `name` in map `v` (Null when absent).
pub fn field_value(v: &Value, name: &str) -> Value {
    v.get(name).cloned().unwrap_or(Value::Null)
}

/// Deserializes field `name` out of map `v`.
pub fn field_from_value<T: for<'x> Deserialize<'x>>(v: &Value, name: &str) -> Result<T, DeError> {
    match v.get(name) {
        Some(fv) => T::from_value(fv).map_err(|e| DeError(format!("field `{name}`: {e}"))),
        None => T::from_value(&Value::Null).map_err(|_| DeError(format!("missing field `{name}`"))),
    }
}

/// The elements of a sequence value, or an error naming `what`.
pub fn seq_elements<'v>(v: &'v Value, what: &str) -> Result<&'v [Value], DeError> {
    match v {
        Value::Seq(items) => Ok(items),
        other => Err(DeError(format!("{what}: expected sequence, got {}", other.type_name()))),
    }
}

/// The single `(variant, payload)` entry of an externally tagged enum map.
pub fn enum_parts<'v>(v: &'v Value, what: &str) -> Result<(&'v str, Option<&'v Value>), DeError> {
    match v {
        Value::Str(name) => Ok((name, None)),
        Value::Map(entries) if entries.len() == 1 => {
            Ok((entries[0].0.as_str(), Some(&entries[0].1)))
        }
        other => Err(DeError(format!(
            "{what}: expected variant string or single-entry map, got {}",
            other.type_name()
        ))),
    }
}

// ---------------------------------------------------------------------
// Primitive impls.
// ---------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError(format!("expected bool, got {}", other.type_name()))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    other => {
                        return Err(DeError(format!(
                            concat!("expected ", stringify!($t), ", got {}"),
                            other.type_name()
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError(format!(concat!("integer {} out of range for ", stringify!($t)), raw)))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw: i64 = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| DeError(format!("integer {n} out of range for i64")))?,
                    Value::F64(f) if f.fract() == 0.0 => *f as i64,
                    other => {
                        return Err(DeError(format!(
                            concat!("expected ", stringify!($t), ", got {}"),
                            other.type_name()
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError(format!(concat!("integer {} out of range for ", stringify!($t)), raw)))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::F64(f) => Ok(*f as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    other => Err(DeError(format!(
                        concat!("expected ", stringify!($t), ", got {}"),
                        other.type_name()
                    ))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<'de> Deserialize<'de> for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError(format!("expected char, got {}", other.type_name()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError(format!("expected string, got {}", other.type_name()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Arc<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Arc::new)
    }
}

// The generic `Arc<T>` impls above are implicitly `T: Sized`; shared
// byte slices need their own (serialized like `Vec<u8>`).
impl Serialize for Arc<[u8]> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de> Deserialize<'de> for Arc<[u8]> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::<u8>::from_value(v).map(Arc::from)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

// ---------------------------------------------------------------------
// Sequences.
// ---------------------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        seq_elements(v, "Vec")?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = seq_elements(v, "array")?;
        if items.len() != N {
            return Err(DeError(format!("expected array of {N}, got {}", items.len())));
        }
        let vec: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        vec.try_into().map_err(|_| DeError("array length mismatch".into()))
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        seq_elements(v, "VecDeque")?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        seq_elements(v, "BTreeSet")?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize + Eq + Hash> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de> + Eq + Hash> Deserialize<'de> for HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        seq_elements(v, "HashSet")?.iter().map(T::from_value).collect()
    }
}

// ---------------------------------------------------------------------
// Maps: any (de)serializable key travels as a string, like serde_json
// does for integer keys.
// ---------------------------------------------------------------------

fn key_to_string<K: Serialize>(k: &K) -> String {
    match k.to_value() {
        Value::Str(s) => s,
        Value::U64(n) => n.to_string(),
        Value::I64(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        other => crate::json::to_compact_string(&other),
    }
}

fn key_from_string<K: for<'x> Deserialize<'x>>(s: &str) -> Result<K, DeError> {
    // String-like keys first; fall back to parsing the key as JSON
    // (covers the integer keys this repo actually uses).
    if let Ok(k) = K::from_value(&Value::Str(s.to_string())) {
        return Ok(k);
    }
    let parsed = crate::json::parse(s).map_err(|e| DeError(format!("bad map key `{s}`: {e}")))?;
    K::from_value(&parsed)
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (key_to_string(k), v.to_value())).collect())
    }
}

impl<'de, K, V> Deserialize<'de> for BTreeMap<K, V>
where
    K: for<'x> Deserialize<'x> + Ord,
    V: Deserialize<'de>,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, val)| Ok((key_from_string(k)?, V::from_value(val)?)))
                .collect(),
            other => Err(DeError(format!("expected map, got {}", other.type_name()))),
        }
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (key_to_string(k), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<'de, K, V> Deserialize<'de> for HashMap<K, V>
where
    K: for<'x> Deserialize<'x> + Eq + Hash,
    V: Deserialize<'de>,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, val)| Ok((key_from_string(k)?, V::from_value(val)?)))
                .collect(),
            other => Err(DeError(format!("expected map, got {}", other.type_name()))),
        }
    }
}

// ---------------------------------------------------------------------
// Tuples.
// ---------------------------------------------------------------------

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl<'de> Deserialize<'de> for () {
    fn from_value(_: &Value) -> Result<Self, DeError> {
        Ok(())
    }
}

macro_rules! impl_tuple {
    ($len:literal: $($t:ident . $idx:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = seq_elements(v, "tuple")?;
                if items.len() != $len {
                    return Err(DeError(format!(
                        "expected tuple of {}, got {}", $len, items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$idx])?,)+))
            }
        }
    };
}

impl_tuple!(1: A.0);
impl_tuple!(2: A.0, B.1);
impl_tuple!(3: A.0, B.1, C.2);
impl_tuple!(4: A.0, B.1, C.2, D.3);
impl_tuple!(5: A.0, B.1, C.2, D.3, E.4);
impl_tuple!(6: A.0, B.1, C.2, D.3, E.4, F.5);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------------------
// JSON text encoding (used by the serde_json facade and map keys).
// ---------------------------------------------------------------------

/// JSON writer/parser over [`Value`] trees.
pub mod json {
    use super::Value;

    /// Serializes a value as compact JSON.
    pub fn to_compact_string(v: &Value) -> String {
        let mut out = String::new();
        write_value(&mut out, v, None, 0);
        out
    }

    /// Serializes a value as two-space-indented JSON.
    pub fn to_pretty_string(v: &Value) -> String {
        let mut out = String::new();
        write_value(&mut out, v, Some(2), 0);
        out
    }

    fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
        match v {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::I64(n) => out.push_str(&n.to_string()),
            Value::U64(n) => out.push_str(&n.to_string()),
            Value::F64(f) => {
                if f.is_finite() {
                    let s = f.to_string();
                    out.push_str(&s);
                    // Keep floats distinguishable from integers.
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_string(out, s),
            Value::Seq(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent, depth + 1);
                    write_value(out, item, indent, depth + 1);
                }
                newline(out, indent, depth);
                out.push(']');
            }
            Value::Map(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, val)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent, depth + 1);
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    write_value(out, val, indent, depth + 1);
                }
                newline(out, indent, depth);
                out.push('}');
            }
        }
    }

    fn newline(out: &mut String, indent: Option<usize>, depth: usize) {
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * depth));
        }
    }

    fn write_string(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
    }

    /// Parses JSON text into a [`Value`] tree.
    pub fn parse(s: &str) -> Result<Value, String> {
        let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at offset {}", p.pos));
        }
        Ok(v)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl<'a> Parser<'a> {
        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn skip_ws(&mut self) {
            while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.pos += 1;
            }
        }

        fn expect(&mut self, b: u8) -> Result<(), String> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(format!("expected `{}` at offset {}", b as char, self.pos))
            }
        }

        fn literal(&mut self, word: &str) -> bool {
            if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                true
            } else {
                false
            }
        }

        fn value(&mut self) -> Result<Value, String> {
            self.skip_ws();
            match self.peek() {
                Some(b'n') if self.literal("null") => Ok(Value::Null),
                Some(b't') if self.literal("true") => Ok(Value::Bool(true)),
                Some(b'f') if self.literal("false") => Ok(Value::Bool(false)),
                Some(b'"') => self.string().map(Value::Str),
                Some(b'[') => self.seq(),
                Some(b'{') => self.map(),
                Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
                Some(c) => Err(format!("unexpected `{}` at offset {}", c as char, self.pos)),
                None => Err("unexpected end of input".to_string()),
            }
        }

        fn seq(&mut self) -> Result<Value, String> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Seq(items));
            }
            loop {
                items.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => {
                        self.pos += 1;
                    }
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Seq(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at offset {}", self.pos)),
                }
            }
        }

        fn map(&mut self) -> Result<Value, String> {
            self.expect(b'{')?;
            let mut entries = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Map(entries));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                entries.push((key, self.value()?));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => {
                        self.pos += 1;
                    }
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Map(entries));
                    }
                    _ => return Err(format!("expected `,` or `}}` at offset {}", self.pos)),
                }
            }
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek() {
                    None => return Err("unterminated string".to_string()),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.peek() {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b'r') => out.push('\r'),
                            Some(b't') => out.push('\t'),
                            Some(b'b') => out.push('\u{8}'),
                            Some(b'f') => out.push('\u{c}'),
                            Some(b'u') => {
                                let hex = self
                                    .bytes
                                    .get(self.pos + 1..self.pos + 5)
                                    .ok_or("truncated \\u escape")?;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                    16,
                                )
                                .map_err(|_| "bad \\u escape")?;
                                out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                                self.pos += 4;
                            }
                            _ => return Err("bad escape".to_string()),
                        }
                        self.pos += 1;
                    }
                    Some(_) => {
                        // Consume one UTF-8 scalar.
                        let rest = std::str::from_utf8(&self.bytes[self.pos..])
                            .map_err(|_| "invalid UTF-8")?;
                        let c = rest.chars().next().unwrap();
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }

        fn number(&mut self) -> Result<Value, String> {
            let start = self.pos;
            if self.peek() == Some(b'-') {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            let mut is_float = false;
            if self.peek() == Some(b'.') {
                is_float = true;
                self.pos += 1;
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            if matches!(self.peek(), Some(b'e' | b'E')) {
                is_float = true;
                self.pos += 1;
                if matches!(self.peek(), Some(b'+' | b'-')) {
                    self.pos += 1;
                }
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            let text =
                std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| "invalid number")?;
            if !is_float {
                if let Some(stripped) = text.strip_prefix('-') {
                    if let Ok(n) = stripped.parse::<u64>() {
                        if n <= i64::MAX as u64 {
                            return Ok(Value::I64(-(n as i64)));
                        }
                    }
                } else if let Ok(n) = text.parse::<u64>() {
                    return Ok(Value::U64(n));
                }
            }
            text.parse::<f64>().map(Value::F64).map_err(|_| format!("bad number `{text}`"))
        }
    }
}
