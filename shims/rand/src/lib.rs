//! Offline stand-in for `rand` 0.8.
//!
//! Implements the slices of the API this workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, and the `Rng` extension methods
//! (`gen`, `gen_bool`, `gen_range` over integer ranges) — on top of a
//! deterministic xoshiro256** generator seeded through SplitMix64.
//! Streams are reproducible across runs but are NOT the streams the
//! real `rand` crate would produce for the same seed.

use std::ops::{Range, RangeInclusive};

/// Core generator interface.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator from OS entropy. The shim derives the seed
    /// from the system clock instead.
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        Self::seed_from_u64(nanos)
    }
}

/// Types producible uniformly at random (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        f64::sample(rng) as f32
    }
}

/// Integer types drawable uniformly from a bounded range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Widens to `i128` for span arithmetic.
    fn to_i128(self) -> i128;
    /// Narrows back after span arithmetic.
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }
            fn from_i128(v: i128) -> Self {
                v as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges drawable by [`Rng::gen_range`]. Blanket impls over
/// [`SampleUniform`] (matching the real crate's shape) let the element
/// type unify with the call site's expected type.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        let (lo, hi) = (self.start.to_i128(), self.end.to_i128());
        let span = (hi - lo) as u128;
        let offset = (rng.next_u64() as u128) % span;
        T::from_i128(lo + offset as i128)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start().to_i128(), self.end().to_i128());
        assert!(lo <= hi, "gen_range: empty range");
        let span = (hi - lo) as u128 + 1;
        let offset = (rng.next_u64() as u128) % span;
        T::from_i128(lo + offset as i128)
    }
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }

    /// Uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Fills a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256** with SplitMix64 seeding.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the xoshiro authors recommend.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// A process-global draw (clock-seeded in this shim).
pub fn random<T: Standard>() -> T {
    use rngs::StdRng;
    let mut rng = StdRng::from_entropy();
    T::sample(&mut rng)
}

/// Returns a clock-seeded generator, mirroring `rand::thread_rng`.
pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::from_entropy()
}
