//! Offline stand-in for `proptest`.
//!
//! Supports the API surface this workspace's property tests use:
//! `proptest!` (with optional `#![proptest_config(...)]`), `any::<T>()`,
//! range strategies, tuple strategies, `Just`, `prop_oneof!`,
//! `.prop_map`, `proptest::collection::vec`, `prop_assert!` /
//! `prop_assert_eq!`, and `TestCaseError`. Cases are generated from a
//! deterministic per-case seed; failing inputs are reported but NOT
//! shrunk (the real crate's minimization machinery is out of scope).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The generator handed to strategies.
pub type TestRng = StdRng;

/// Why a test case failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case rejected its input (filtered); it does not count as a
    /// failure.
    Reject(String),
    /// The case failed an assertion.
    Fail(String),
}

impl TestCaseError {
    /// A failure with `msg`.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with `msg`.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// Test-runner knobs. Only `cases` is meaningful in the shim; the rest
/// exist so `..ProptestConfig::default()` updates compile.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
    /// Accepted for compatibility; unused.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 0 }
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe alias used by [`BoxedStrategy`].
trait DynStrategy {
    type Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A heap-allocated, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Strategy returning a clone of a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform strategy over every value of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// See [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a canonical uniform generator.
pub trait Arbitrary {
    /// Draws one value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed alternatives (built by `prop_oneof!`).
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.0.len());
        self.0[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty float range strategy");
                let unit: f64 = rng.gen();
                self.start + (self.end - self.start) * unit as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty float range strategy");
                let unit: f64 = rng.gen();
                lo + (hi - lo) * unit as $t
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Length bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange { min: r.start, max: r.end.max(r.start + 1) }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max: *r.end() + 1 }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    /// `Vec<T>` strategy with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
    /// Namespace alias matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Runs one property function over `cases` deterministic inputs.
/// Called by the expansion of [`proptest!`].
pub fn run_property<F>(name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    // Deterministic seed per property name so failures reproduce.
    let name_hash =
        name.bytes().fold(0xcbf29ce484222325u64, |h, b| (h ^ b as u64).wrapping_mul(0x100000001b3));
    let mut rejected = 0u32;
    let mut run = 0u32;
    let mut attempts = 0u32;
    let max_attempts = config.cases.saturating_mul(8).max(64);
    while run < config.cases && attempts < max_attempts {
        let seed = name_hash ^ (attempts as u64).wrapping_mul(0x9e3779b97f4a7c15);
        let mut rng = TestRng::seed_from_u64(seed);
        attempts += 1;
        match case(&mut rng) {
            Ok(()) => run += 1,
            Err(TestCaseError::Reject(_)) => rejected += 1,
            Err(TestCaseError::Fail(msg)) => {
                panic!("property `{name}` failed at case {run} (seed {seed:#x}): {msg}");
            }
        }
    }
    if run < config.cases {
        panic!("property `{name}`: too many rejected cases ({rejected} rejections, {run} runs)");
    }
}

/// Declares property tests. See the crate docs for the supported shape.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! {
            config = ($crate::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Expansion backend for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = ($config:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                $crate::run_property(stringify!($name), &config, |__rng| {
                    $(let $pat = $crate::Strategy::generate(&($strategy), __rng);)+
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// Uniform choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Asserts inside a property, failing the case (not panicking) on false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`", l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}", l, r, format!($($fmt)*)
            )));
        }
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l == r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                l, r
            )));
        }
    }};
}
