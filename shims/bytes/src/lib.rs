//! Offline stand-in for the `bytes` crate: owned byte containers with
//! the little slice of the `Buf`/`BufMut` cursor API this repository's
//! trace wire format uses.

use std::sync::Arc;

/// Read cursor over a byte container.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Whether any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Advances the cursor by `n` bytes.
    fn advance(&mut self, n: usize);

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Reads one byte.
    ///
    /// # Panics
    ///
    /// Panics when no bytes remain.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut buf = [0u8; 2];
        buf.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(buf)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut buf = [0u8; 4];
        buf.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(buf)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut buf = [0u8; 8];
        buf.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(buf)
    }
}

/// Write cursor over a growable byte container.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, b: u8);

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);
}

/// A cheaply cloneable immutable byte buffer with a read cursor.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    pos: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes { data: Arc::from(&[][..]), pos: 0 }
    }

    /// Wraps a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes { data: Arc::from(bytes), pos: 0 }
    }

    /// Unread length.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether the unread portion is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The unread bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    /// Copies the unread bytes into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v.into_boxed_slice()), pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes { data: Arc::from(v), pos: 0 }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of Bytes");
        self.pos += n;
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, b: u8) {
        self.data.push(b);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, b: u8) {
        self.push(b);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}
