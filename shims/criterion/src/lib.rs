//! Offline stand-in for `criterion`.
//!
//! Implements the measurement API shape this workspace's benches use —
//! `criterion_group!` / `criterion_main!`, `benchmark_group`,
//! `bench_function`, `Bencher::iter` / `iter_batched`, `black_box` —
//! with a simple calibrated wall-clock sampler: per sample the routine
//! runs enough iterations to cover a minimum window, and the harness
//! reports the median, min and max nanoseconds per iteration. There is
//! no statistical outlier analysis or HTML report.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost. The shim re-runs setup per
/// batch element either way; the variants only exist for API parity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// The per-benchmark measurement driver.
pub struct Bencher {
    samples: usize,
    /// Filled by the measurement loop: median/min/max ns per iteration.
    result: Option<Measurement>,
}

/// One benchmark's summary statistics (nanoseconds per iteration).
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Median over samples.
    pub median_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
}

const MIN_SAMPLE_WINDOW: Duration = Duration::from_millis(8);

impl Bencher {
    /// Measures `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow the per-sample iteration count until one
        // sample spans the minimum window.
        let mut iters_per_sample: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= MIN_SAMPLE_WINDOW || iters_per_sample >= 1 << 24 {
                break;
            }
            iters_per_sample = iters_per_sample.saturating_mul(2);
        }

        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            per_iter.push(start.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.result = Some(Measurement {
            median_ns: per_iter[per_iter.len() / 2],
            min_ns: per_iter[0],
            max_ns: per_iter[per_iter.len() - 1],
        });
    }

    /// Measures `routine` over fresh inputs built by `setup`; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut iters_per_sample: u64 = 1;
        loop {
            let inputs: Vec<I> = (0..iters_per_sample).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let elapsed = start.elapsed();
            if elapsed >= MIN_SAMPLE_WINDOW || iters_per_sample >= 1 << 20 {
                break;
            }
            iters_per_sample = iters_per_sample.saturating_mul(2);
        }

        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let inputs: Vec<I> = (0..iters_per_sample).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            per_iter.push(start.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.result = Some(Measurement {
            median_ns: per_iter[per_iter.len() / 2],
            min_ns: per_iter[0],
            max_ns: per_iter[per_iter.len() - 1],
        });
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Runs one benchmark and prints its summary line.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { samples: self.sample_size, result: None };
        f(&mut bencher);
        let full = format!("{}/{}", self.name, id);
        match bencher.result {
            Some(m) => {
                println!(
                    "{full:<44} time: [{} {} {}]",
                    format_ns(m.min_ns),
                    format_ns(m.median_ns),
                    format_ns(m.max_ns)
                );
                self.criterion.results.push((full, m));
            }
            None => println!("{full:<44} (no measurement taken)"),
        }
        self
    }

    /// Ends the group (printing is incremental; nothing to flush).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry object.
#[derive(Default)]
pub struct Criterion {
    /// Completed measurements, for callers that post-process results.
    pub results: Vec<(String, Measurement)>,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), criterion: self, sample_size: 20 }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.to_string();
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
