//! Offline stand-in for `serde_derive`.
//!
//! Expands `#[derive(Serialize)]` / `#[derive(Deserialize)]` against the
//! value-tree data model of the vendored `serde` shim. The item grammar
//! is parsed by hand from the raw `TokenStream` (no `syn`): non-generic
//! structs (named / tuple / unit) and enums (unit / tuple / struct
//! variants, with or without discriminants), plus the one field
//! attribute this repository uses, `#[serde(with = "module")]`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone)]
struct Field {
    /// Named field name, or tuple index rendered as a string.
    name: String,
    /// `#[serde(with = "module")]` payload.
    with: Option<String>,
}

#[derive(Debug)]
enum Body {
    Unit,
    Tuple(Vec<Field>),
    Named(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    body: Body,
}

#[derive(Debug)]
enum Item {
    Struct { name: String, body: Body },
    Enum { name: String, variants: Vec<Variant> },
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, body } => serialize_struct(name, body),
        Item::Enum { name, variants } => serialize_enum(name, variants),
    };
    code.parse().expect("serialize expansion parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, body } => deserialize_struct(name, body),
        Item::Enum { name, variants } => deserialize_enum(name, variants),
    };
    code.parse().expect("deserialize expansion parses")
}

// ---------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;

    skip_attributes(&tokens, &mut pos);
    skip_visibility(&tokens, &mut pos);

    let keyword = expect_ident(&tokens, &mut pos);
    let name = expect_ident(&tokens, &mut pos);
    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive: generic type `{name}` is not supported");
    }

    match keyword.as_str() {
        "struct" => {
            let body = match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Body::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Body::Tuple(parse_tuple_fields(g.stream()))
                }
                _ => Body::Unit,
            };
            Item::Struct { name, body }
        }
        "enum" => {
            let Some(TokenTree::Group(g)) = tokens.get(pos) else {
                panic!("serde shim derive: enum `{name}` has no body");
            };
            Item::Enum { name, variants: parse_variants(g.stream()) }
        }
        other => panic!("serde shim derive: unsupported item kind `{other}`"),
    }
}

/// Skips `#[...]` / `#![...]` runs, returning the `serde(with = "...")`
/// payload if one of them carries it.
fn skip_attributes(tokens: &[TokenTree], pos: &mut usize) -> Option<String> {
    let mut with = None;
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 1;
                if matches!(tokens.get(*pos), Some(TokenTree::Punct(p)) if p.as_char() == '!') {
                    *pos += 1;
                }
                if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                    if let Some(w) = extract_with(g.stream()) {
                        with = Some(w);
                    }
                    *pos += 1;
                }
            }
            _ => return with,
        }
    }
}

/// Pulls the module path out of `serde(with = "path")` attribute tokens.
fn extract_with(attr: TokenStream) -> Option<String> {
    let tokens: Vec<TokenTree> = attr.into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) if id.to_string() == "serde" => {
            let inner: Vec<TokenTree> = args.stream().into_iter().collect();
            let mut i = 0;
            while i < inner.len() {
                if let TokenTree::Ident(key) = &inner[i] {
                    if key.to_string() == "with"
                        && matches!(inner.get(i + 1), Some(TokenTree::Punct(p)) if p.as_char() == '=')
                    {
                        if let Some(TokenTree::Literal(lit)) = inner.get(i + 2) {
                            let text = lit.to_string();
                            return Some(text.trim_matches('"').to_string());
                        }
                    }
                }
                i += 1;
            }
            None
        }
        _ => None,
    }
}

fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(tokens.get(*pos), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *pos += 1;
        // pub(crate), pub(super), ...
        if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *pos += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(id)) => {
            *pos += 1;
            id.to_string()
        }
        other => panic!("serde shim derive: expected identifier, found {other:?}"),
    }
}

/// Skips one type (or any token run) up to a top-level `,`, tracking
/// angle-bracket depth so `Vec<(u64, u64)>` stays one field.
fn skip_to_comma(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(tok) = tokens.get(*pos) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *pos += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        let with = skip_attributes(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut pos);
        let name = expect_ident(&tokens, &mut pos);
        // `:`
        pos += 1;
        skip_to_comma(&tokens, &mut pos);
        pos += 1; // the comma itself
        fields.push(Field { name, with });
    }
    fields
}

fn parse_tuple_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        let with = skip_attributes(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut pos);
        skip_to_comma(&tokens, &mut pos);
        pos += 1;
        fields.push(Field { name: fields.len().to_string(), with });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        skip_attributes(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut pos);
        let body = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                Body::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                Body::Tuple(parse_tuple_fields(g.stream()))
            }
            _ => Body::Unit,
        };
        // Skip an optional `= discriminant` up to the separating comma.
        skip_to_comma(&tokens, &mut pos);
        pos += 1;
        variants.push(Variant { name, body });
    }
    variants
}

// ---------------------------------------------------------------------
// Codegen.
// ---------------------------------------------------------------------

fn field_to_value(access: &str, field: &Field) -> String {
    match &field.with {
        Some(module) => {
            format!("::serde::with_to_value(|__s| {module}::serialize(&{access}, __s))")
        }
        None => format!("::serde::Serialize::to_value(&{access})"),
    }
}

fn field_from_value(source: &str, field: &Field, label: &str) -> String {
    match &field.with {
        Some(module) => {
            format!("{module}::deserialize(::serde::ValueDeserializer::new({source}))?")
        }
        None => format!(
            "::serde::Deserialize::from_value(&{source}).map_err(|e| \
             ::serde::DeError(format!(\"{label}: {{e}}\")))?"
        ),
    }
}

fn serialize_struct(name: &str, body: &Body) -> String {
    let to_value = match body {
        Body::Unit => "::serde::Value::Null".to_string(),
        Body::Tuple(fields) if fields.len() == 1 => field_to_value("self.0", &fields[0]),
        Body::Tuple(fields) => {
            let items: Vec<String> =
                fields.iter().map(|f| field_to_value(&format!("self.{}", f.name), f)).collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Body::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{}\"), {})",
                        f.name,
                        field_to_value(&format!("self.{}", f.name), f)
                    )
                })
                .collect();
            format!("::serde::Value::Map(vec![{}])", entries.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {to_value} }}\n\
         }}"
    )
}

fn deserialize_struct(name: &str, body: &Body) -> String {
    let from_value = match body {
        Body::Unit => format!("Ok({name})"),
        Body::Tuple(fields) if fields.len() == 1 => {
            let inner = field_from_value("(*__v).clone()", &fields[0], &format!("{name}.0"));
            let inner = if fields[0].with.is_some() {
                inner
            } else {
                // Plain newtype: read straight from the borrowed value.
                format!(
                    "::serde::Deserialize::from_value(__v).map_err(|e| \
                     ::serde::DeError(format!(\"{name}: {{e}}\")))?"
                )
            };
            format!("Ok({name}({inner}))")
        }
        Body::Tuple(fields) => {
            let n = fields.len();
            let items: Vec<String> = fields
                .iter()
                .enumerate()
                .map(|(i, f)| {
                    field_from_value(&format!("__items[{i}].clone()"), f, &format!("{name}.{i}"))
                })
                .collect();
            format!(
                "let __items = ::serde::seq_elements(__v, \"{name}\")?;\n\
                 if __items.len() != {n} {{\n\
                     return Err(::serde::DeError(format!(\
                         \"{name}: expected {n} elements, got {{}}\", __items.len())));\n\
                 }}\n\
                 Ok({name}({items}))",
                items = items.join(", ")
            )
        }
        Body::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| match &f.with {
                    Some(module) => format!(
                        "{field}: {module}::deserialize(::serde::ValueDeserializer::new(\
                         ::serde::field_value(__v, \"{field}\")))?",
                        field = f.name
                    ),
                    None => format!(
                        "{field}: ::serde::field_from_value(__v, \"{field}\")?",
                        field = f.name
                    ),
                })
                .collect();
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 {from_value}\n\
             }}\n\
         }}"
    )
}

fn serialize_enum(name: &str, variants: &[Variant]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|v| {
            let vname = &v.name;
            match &v.body {
                Body::Unit => format!(
                    "{name}::{vname} => ::serde::Value::Str(\
                     ::std::string::String::from(\"{vname}\")),"
                ),
                Body::Tuple(fields) if fields.len() == 1 => format!(
                    "{name}::{vname}(__a0) => ::serde::Value::Map(vec![(\
                     ::std::string::String::from(\"{vname}\"), {})]),",
                    field_to_value("*__a0", &fields[0])
                ),
                Body::Tuple(fields) => {
                    let binders: Vec<String> =
                        (0..fields.len()).map(|i| format!("__a{i}")).collect();
                    let items: Vec<String> = fields
                        .iter()
                        .enumerate()
                        .map(|(i, f)| field_to_value(&format!("*__a{i}"), f))
                        .collect();
                    format!(
                        "{name}::{vname}({binds}) => ::serde::Value::Map(vec![(\
                         ::std::string::String::from(\"{vname}\"), \
                         ::serde::Value::Seq(vec![{items}]))]),",
                        binds = binders.join(", "),
                        items = items.join(", ")
                    )
                }
                Body::Named(fields) => {
                    let binders: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                    let entries: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from(\"{field}\"), {})",
                                field_to_value(&format!("*{}", f.name), f),
                                field = f.name
                            )
                        })
                        .collect();
                    format!(
                        "{name}::{vname} {{ {binds} }} => ::serde::Value::Map(vec![(\
                         ::std::string::String::from(\"{vname}\"), \
                         ::serde::Value::Map(vec![{entries}]))]),",
                        binds = binders.join(", "),
                        entries = entries.join(", ")
                    )
                }
            }
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{\n{}\n}}\n\
             }}\n\
         }}",
        arms.join("\n")
    )
}

fn deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|v| {
            let vname = &v.name;
            match &v.body {
                Body::Unit => {
                    format!("(\"{vname}\", _) => Ok({name}::{vname}),")
                }
                Body::Tuple(fields) if fields.len() == 1 => {
                    let inner = match &fields[0].with {
                        Some(module) => format!(
                            "{module}::deserialize(::serde::ValueDeserializer::new(\
                             __payload.clone()))?"
                        ),
                        None => format!(
                            "::serde::Deserialize::from_value(__payload).map_err(|e| \
                             ::serde::DeError(format!(\"{name}::{vname}: {{e}}\")))?"
                        ),
                    };
                    format!(
                        "(\"{vname}\", Some(__payload)) => Ok({name}::{vname}({inner})),"
                    )
                }
                Body::Tuple(fields) => {
                    let n = fields.len();
                    let items: Vec<String> = fields
                        .iter()
                        .enumerate()
                        .map(|(i, f)| {
                            field_from_value(
                                &format!("__items[{i}].clone()"),
                                f,
                                &format!("{name}::{vname}.{i}"),
                            )
                        })
                        .collect();
                    format!(
                        "(\"{vname}\", Some(__payload)) => {{\n\
                             let __items = ::serde::seq_elements(__payload, \"{name}::{vname}\")?;\n\
                             if __items.len() != {n} {{\n\
                                 return Err(::serde::DeError(format!(\
                                     \"{name}::{vname}: expected {n} elements, got {{}}\", \
                                     __items.len())));\n\
                             }}\n\
                             Ok({name}::{vname}({items}))\n\
                         }}",
                        items = items.join(", ")
                    )
                }
                Body::Named(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| match &f.with {
                            Some(module) => format!(
                                "{field}: {module}::deserialize(::serde::ValueDeserializer::new(\
                                 ::serde::field_value(__payload, \"{field}\")))?",
                                field = f.name
                            ),
                            None => format!(
                                "{field}: ::serde::field_from_value(__payload, \"{field}\")?",
                                field = f.name
                            ),
                        })
                        .collect();
                    format!(
                        "(\"{vname}\", Some(__payload)) => Ok({name}::{vname} {{ {} }}),",
                        inits.join(", ")
                    )
                }
            }
        })
        .collect();
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 let (__variant, __payload) = ::serde::enum_parts(__v, \"{name}\")?;\n\
                 match (__variant, __payload) {{\n{}\n\
                     (other, _) => Err(::serde::DeError(format!(\
                         \"{name}: unknown variant `{{other}}`\"))),\n\
                 }}\n\
             }}\n\
         }}",
        arms.join("\n")
    )
}
