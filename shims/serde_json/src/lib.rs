//! Offline stand-in for `serde_json`, backed by the vendored `serde`
//! shim's [`Value`] tree and JSON text codec.

use std::fmt;

pub use serde::Value;

/// JSON (de)serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Builds an error from any displayable message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

impl serde::ErrorTrait for Error {
    fn custom(msg: impl fmt::Display) -> Self {
        Error::custom(msg)
    }
}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Infallible in this shim; the `Result` mirrors the real API.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(serde::json::to_compact_string(&value.to_value()))
}

/// Serializes `value` as two-space-indented JSON.
///
/// # Errors
///
/// Infallible in this shim; the `Result` mirrors the real API.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(serde::json::to_pretty_string(&value.to_value()))
}

/// Parses a `T` from JSON text.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: for<'de> serde::Deserialize<'de>>(s: &str) -> Result<T, Error> {
    let value = serde::json::parse(s).map_err(Error)?;
    T::from_value(&value).map_err(Error::from)
}

/// Parses JSON text into a loosely typed [`Value`].
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON.
pub fn from_str_value(s: &str) -> Result<Value, Error> {
    serde::json::parse(s).map_err(Error)
}
