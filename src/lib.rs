//! Umbrella crate for the SEDSpec reproduction workspace.
//!
//! Hosts the cross-crate integration tests (`tests/`) and the runnable
//! examples (`examples/`). Library users should depend on the individual
//! crates directly; the re-exports below exist so examples and tests can
//! reach everything through one dependency.

pub use sedspec;
pub use sedspec_chaos as chaos;
pub use sedspec_dbl as dbl;
pub use sedspec_devices as devices;
pub use sedspec_fleet as fleet;
pub use sedspec_fuzz as fuzz;
pub use sedspec_obs as obs;
pub use sedspec_trace as trace;
pub use sedspec_vmm as vmm;
pub use sedspec_workloads as workloads;
