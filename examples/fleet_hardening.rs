//! Fleet-scale hardening on the `sedspec-fleet` runtime: independently
//! trained specifications are *merged* and *published* to a registry,
//! tenants deploy from it on a sharded pool, a *hot-swap* retargets
//! them without downtime, and a Venom-compromised tenant is detected,
//! rolled back, then *quarantined* — all while its shard-mates keep
//! serving. An observability hub watches the whole run: the final
//! section prints the quarantined tenant's flight-recorder forensics —
//! the walked ES-block path and the shadow-state diff of the fatal
//! round.
//!
//! ```text
//! cargo run --example fleet_hardening
//! ```

use std::sync::Arc;

use sedspec::merge::merge;
use sedspec::pipeline::{train_script, TrainingConfig};
use sedspec_repro::devices::{build_device, DeviceKind, QemuVersion};
use sedspec_repro::fleet::pool::{EnforcementPool, TenantConfig, TenantId};
use sedspec_repro::fleet::registry::SpecRegistry;
use sedspec_repro::fleet::FleetReport;
use sedspec_repro::obs::ObsHub;
use sedspec_repro::vmm::VmContext;
use sedspec_repro::workloads::attacks::{poc, Cve};
use sedspec_repro::workloads::generators::{eval_case, training_suite};
use sedspec_repro::workloads::InteractionMode;

fn train(
    kind: DeviceKind,
    version: QemuVersion,
    suite: &[Vec<sedspec::collect::TrainStep>],
) -> sedspec::spec::ExecutionSpecification {
    let mut device = build_device(kind, version);
    let mut ctx = VmContext::new(0x200000, 8192);
    train_script(&mut device, &mut ctx, suite, &TrainingConfig::default()).unwrap()
}

fn main() {
    let kind = DeviceKind::Fdc;
    let version = QemuVersion::V2_3_0;

    // Two parties train independently: a developer on one sample mix, a
    // tester on another (including commands the developer never used).
    let dev_suite = training_suite(kind, 30, 1);
    let mut dev_spec = train(kind, version, &dev_suite);
    let tester_spec = {
        let mut suite = training_suite(kind, 30, 2);
        for seed in 0..6 {
            suite.push(eval_case(kind, InteractionMode::Random, 0.5, seed));
        }
        train(kind, version, &suite)
    };

    // The merged spec ships to the fleet's registry...
    let report = merge(&mut dev_spec, &tester_spec).expect("same device, same version");
    println!(
        "merged tester spec into developer spec: +{} blocks, +{} edges, +{} commands",
        report.new_blocks, report.new_edges, report.new_commands
    );
    let registry = Arc::new(SpecRegistry::new());
    let first =
        registry.publish(kind, version, dev_spec.clone()).expect("merged spec passes the gate").key;
    println!("published {first}");

    // ...and three tenants deploy from it on a two-shard pool with an
    // observability hub attached. Tenants 0 and 2 share shard 0;
    // tenant 1 runs alone on shard 1.
    let hub = Arc::new(ObsHub::new());
    let mut pool = EnforcementPool::with_obs(2, Arc::clone(&registry), &hub);
    for t in 0..3u64 {
        pool.add_tenant(TenantConfig::new(t).with_devices(vec![(kind, version)])).unwrap();
    }

    // Production traffic: every tenant replays benign cases.
    let mut rounds = 0u64;
    for case in dev_suite.iter().take(4) {
        let mut tickets = Vec::new();
        for t in 0..3u64 {
            tickets.push(pool.submit_steps(TenantId(t), case.clone()).unwrap());
        }
        for ticket in tickets {
            let r = pool.wait(ticket).unwrap();
            assert_eq!(r.flagged, 0, "merged spec must not flag covered traffic");
            rounds += r.rounds;
        }
    }
    println!("{rounds} production rounds clean across 3 tenants");

    // Operations publishes a grown revision; every tenant picks it up
    // at its next batch, no restart needed.
    let mut grown = dev_spec;
    grown.stats.training_rounds += 1; // stand-in for further training
    let second = registry.publish(kind, version, grown).expect("grown spec passes the gate").key;
    let ticket = pool.submit_steps(TenantId(0), dev_suite[4].clone()).unwrap();
    assert_eq!(pool.wait(ticket).unwrap().flagged, 0);
    let status = pool.report();
    let tenant0 = &status.tenants()[0];
    assert_eq!(tenant0.specs, vec![second]);
    println!("hot-swapped {} -> {} on the fly", first.digest, second.digest);

    // An attacker strikes tenant 0 with Venom. The first halt is
    // absorbed by a snapshot rollback; the attacker persists, so the
    // tenant is quarantined.
    let attack = poc(Cve::Cve2015_3456);
    for round in 0..2 {
        let ticket = pool.submit_steps(TenantId(0), attack.steps.clone()).unwrap();
        let r = pool.wait(ticket).unwrap();
        println!(
            "attack round {round}: flagged {}, rollbacks {}, quarantined {}",
            r.flagged, r.rollbacks, r.quarantined
        );
    }
    print!("{}", FleetReport::render_alerts(&pool.drain_alerts()));

    // The shard-mate (tenant 2) and the other shard (tenant 1) never
    // noticed.
    for t in [1u64, 2] {
        let ticket = pool.submit_steps(TenantId(t), dev_suite[5].clone()).unwrap();
        let r = pool.wait(ticket).unwrap();
        assert!(!r.rejected && r.flagged == 0);
    }
    let report = pool.report();
    assert_eq!(report.quarantined_count(), 1);
    print!("{}", report.render());

    // The flight recorder froze the quarantined tenant's fatal rounds:
    // the walked block path and the shadow diff tell the operator what
    // the attack did before a single byte of device state was kept.
    let records = hub.forensics();
    let fatal = records
        .iter()
        .rev()
        .find(|r| r.scope.tenant == Some(0))
        .expect("the quarantined tenant left forensics");
    print!("{}", fatal.render());
}
