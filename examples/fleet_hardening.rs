//! The paper's §VIII operational story, end to end: specifications
//! trained by different parties are *merged* to kill false positives,
//! alerts are *classified* by severity, and a detected exploitation is
//! answered with a *rollback* to a pre-attack snapshot instead of a
//! plain halt.
//!
//! ```text
//! cargo run --example fleet_hardening
//! ```

use sedspec::checker::WorkingMode;
use sedspec::collect::apply_step;
use sedspec::enforce::IoVerdict;
use sedspec::merge::merge;
use sedspec::pipeline::{deploy, train_script, TrainingConfig};
use sedspec::response::{highest_alert, SnapshotRing};
use sedspec_repro::devices::{build_device, DeviceKind, QemuVersion};
use sedspec_repro::vmm::VmContext;
use sedspec_repro::workloads::attacks::{poc, Cve};
use sedspec_repro::workloads::generators::{eval_case, training_suite};
use sedspec_repro::workloads::InteractionMode;

fn main() {
    let kind = DeviceKind::Fdc;
    let version = QemuVersion::V2_3_0;

    // Two parties train independently: a developer on one sample mix, a
    // tester on another (including commands the developer never used).
    let mut dev_spec = {
        let mut device = build_device(kind, version);
        let mut ctx = VmContext::new(0x200000, 8192);
        train_script(&mut device, &mut ctx, &training_suite(kind, 30, 1), &TrainingConfig::default())
            .unwrap()
    };
    let tester_spec = {
        let mut device = build_device(kind, version);
        let mut ctx = VmContext::new(0x200000, 8192);
        // The tester's evaluation harness exercises the rare tail too.
        let mut suite = training_suite(kind, 30, 2);
        for seed in 0..6 {
            suite.push(eval_case(kind, InteractionMode::Random, 0.5, seed));
        }
        train_script(&mut device, &mut ctx, &suite, &TrainingConfig::default()).unwrap()
    };

    let report = merge(&mut dev_spec, &tester_spec).expect("same device, same version");
    println!(
        "merged tester spec into developer spec: +{} blocks, +{} edges, +{} commands",
        report.new_blocks, report.new_edges, report.new_commands
    );

    // Deploy the merged specification with snapshots every few rounds.
    let mut enforcer = deploy(build_device(kind, version), dev_spec, WorkingMode::Protection);
    let mut ctx = VmContext::new(0x200000, 8192);
    let mut ring = SnapshotRing::new(8);

    // Production traffic, including the rare commands the developer
    // alone would have flagged.
    let mut rounds = 0u64;
    for seed in 100..106u64 {
        let case = eval_case(kind, InteractionMode::Sequential, 0.3, seed);
        for step in &case {
            let Some(req) = apply_step(step, &mut ctx) else { continue };
            let verdict = enforcer.handle_io(&mut ctx, req);
            assert!(!verdict.flagged(), "merged spec must not flag tester-covered traffic");
            rounds += 1;
            if rounds.is_multiple_of(64) {
                ring.capture(&enforcer);
            }
        }
    }
    ring.capture(&enforcer);
    println!("{rounds} production rounds clean; {} snapshots banked", ring.len());

    // An attacker strikes with Venom.
    let attack = poc(Cve::Cve2015_3456);
    let mut alert = None;
    for step in &attack.steps {
        let Some(req) = apply_step(step, &mut ctx) else { continue };
        if let IoVerdict::Halted { violations, .. } = enforcer.handle_io(&mut ctx, req) {
            alert = highest_alert(&violations);
            println!(
                "attack detected: {:?} (alert level {:?})",
                violations.first().map(|v| v.strategy()),
                alert
            );
            break;
        }
    }
    assert!(alert.is_some(), "Venom must be detected");

    // Instead of leaving the VM dead, roll back to the last snapshot.
    assert!(ring.rollback_latest(&mut enforcer));
    let status = enforcer.handle_io(
        &mut ctx,
        &sedspec_vmm::IoRequest::read(sedspec_vmm::AddressSpace::Pmio, 0x3f4, 1),
    );
    println!("after rollback, status poll -> {status:?}");
    assert!(matches!(status, IoVerdict::Allowed(_)));
}
