//! Quickstart: train an execution specification for an emulated device
//! and enforce it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use sedspec::checker::WorkingMode;
use sedspec::enforce::IoVerdict;
use sedspec::pipeline::{deploy, train_script, TrainingConfig};
use sedspec_repro::devices::{build_device, DeviceKind, QemuVersion};
use sedspec_repro::vmm::VmContext;
use sedspec_repro::workloads::generators::training_suite;
use sedspec_vmm::{AddressSpace, IoRequest};

fn main() {
    // 1. Build an emulated device — the QEMU 2.3.0 floppy controller,
    //    complete with the Venom vulnerability.
    let mut device = build_device(DeviceKind::Fdc, QemuVersion::V2_3_0);
    let mut ctx = VmContext::new(0x10000, 1024);

    // 2. Train an execution specification from benign guest traffic.
    let samples = training_suite(DeviceKind::Fdc, 40, 42);
    let spec = train_script(&mut device, &mut ctx, &samples, &TrainingConfig::default())
        .expect("training succeeds");
    println!(
        "trained specification: {} ES blocks, {} edges, {} commands, {} sync points",
        spec.block_count(),
        spec.edge_count(),
        spec.cmd_table.len(),
        spec.stats.recovery.sync_points,
    );

    // 3. Deploy the ES-Checker in front of the device.
    let mut enforcer = deploy(device, spec, WorkingMode::Protection);

    // 4. Benign traffic passes...
    let status = enforcer.handle_io(&mut ctx, &IoRequest::read(AddressSpace::Pmio, 0x3f4, 1));
    println!("benign status read -> {status:?}");

    // 5. ...the Venom exploit does not.
    let _ = enforcer.handle_io(&mut ctx, &IoRequest::write(AddressSpace::Pmio, 0x3f5, 1, 0x8e));
    for i in 0..600 {
        let verdict =
            enforcer.handle_io(&mut ctx, &IoRequest::write(AddressSpace::Pmio, 0x3f5, 1, 0x01));
        if let IoVerdict::Halted { violations, executed } = verdict {
            println!(
                "Venom halted at byte {i}: executed={executed}, first violation: {:?}",
                violations.first()
            );
            return;
        }
    }
    panic!("Venom was not detected");
}
