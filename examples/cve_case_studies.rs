//! Runs all eight CVE proof-of-concepts from the paper's Table III,
//! first against the unprotected vulnerable device (showing the damage),
//! then under SEDSpec protection.
//!
//! ```text
//! cargo run --example cve_case_studies
//! ```

use sedspec::checker::WorkingMode;
use sedspec::collect::apply_step;
use sedspec::enforce::{EnforcingDevice, IoVerdict};
use sedspec::pipeline::{train_script, TrainingConfig};
use sedspec_dbl::interp::ExecLimits;
use sedspec_repro::devices::build_device;
use sedspec_repro::vmm::VmContext;
use sedspec_repro::workloads::attacks::{poc, Cve};
use sedspec_repro::workloads::generators::training_suite;

fn main() {
    for cve in Cve::all() {
        let p = poc(cve);
        print!("{:<15} {:<9} ({}) — ", p.cve.id(), p.device.to_string(), p.qemu_version);

        // Unprotected: observe the ground-truth damage.
        let mut device = build_device(p.device, p.qemu_version);
        device.set_limits(ExecLimits { max_steps: 50_000, ..ExecLimits::default() });
        let mut ctx = VmContext::new(0x100000, 4096);
        let mut spills = 0;
        let mut fault = None;
        for step in &p.steps {
            let Some(req) = apply_step(step, &mut ctx) else { continue };
            match device.handle_io(&mut ctx, req) {
                Ok(out) => spills += out.spills,
                Err(f) => {
                    fault = Some(f);
                    break;
                }
            }
        }
        match &fault {
            Some(f) => print!("unprotected: {f}; "),
            None => print!("unprotected: {spills} corrupted bytes; "),
        }

        // Protected: train on the same vulnerable version, enforce.
        let mut device = build_device(p.device, p.qemu_version);
        device.set_limits(ExecLimits { max_steps: 50_000, ..ExecLimits::default() });
        let mut ctx = VmContext::new(0x200000, 8192);
        let suite = training_suite(p.device, 60, 0x7a11);
        let spec = train_script(&mut device, &mut ctx, &suite, &TrainingConfig::default())
            .expect("training succeeds");
        let mut enforcer = EnforcingDevice::new(device, spec, WorkingMode::Protection);
        let mut ctx = VmContext::new(0x200000, 8192);
        let mut detected = None;
        for step in &p.steps {
            let Some(req) = apply_step(step, &mut ctx) else { continue };
            if let IoVerdict::Halted { violations, executed } = enforcer.handle_io(&mut ctx, req) {
                detected = Some((violations, executed));
                break;
            }
        }
        match detected {
            Some((violations, executed)) => {
                let strategies: Vec<_> =
                    violations.iter().map(|v| format!("{:?}", v.strategy())).collect();
                println!(
                    "SEDSpec: HALTED ({}){}",
                    strategies.join(", "),
                    if executed { " post-hoc via sync point" } else { " before execution" },
                );
            }
            None => println!("SEDSpec: NOT DETECTED"),
        }
    }
}
