//! Inspects a trained execution specification: the selected device-state
//! parameters (paper Table I), the ES-CFG structure, the command access
//! table, and the serialized form — the artifact a device developer
//! would ship alongside the device (paper §VIII).
//!
//! ```text
//! cargo run --example spec_inspection [fdc|ehci|pcnet|sdhci|scsi]
//! ```

use sedspec::escfg::Nbtd;
use sedspec::pipeline::{train_script, TrainingConfig};
use sedspec_repro::devices::{build_device, DeviceKind, QemuVersion};
use sedspec_repro::vmm::VmContext;
use sedspec_repro::workloads::generators::training_suite;

fn main() {
    let kind = match std::env::args().nth(1).as_deref() {
        Some("ehci") => DeviceKind::UsbEhci,
        Some("pcnet") => DeviceKind::Pcnet,
        Some("sdhci") => DeviceKind::Sdhci,
        Some("scsi") => DeviceKind::Scsi,
        _ => DeviceKind::Fdc,
    };
    let mut device = build_device(kind, QemuVersion::Patched);
    let mut ctx = VmContext::new(0x200000, 8192);
    let suite = training_suite(kind, 60, 0x7a11);
    let spec = train_script(&mut device, &mut ctx, &suite, &TrainingConfig::default())
        .expect("training succeeds");

    println!("=== Execution specification for {} ({}) ===\n", spec.device, spec.version);
    println!("Device state parameters ({} selected):", spec.params.selected_var_count());
    for (v, reasons) in &spec.params.vars {
        println!("  {:<16} {:?}", device.control.var_decl(*v).name, reasons);
    }
    println!("\nMonitored buffers:");
    for b in &spec.params.buffers {
        let d = device.control.buf_decl(*b);
        println!("  {:<16} {} bytes", d.name, d.len);
    }

    println!("\nES-CFGs:");
    for cfg in &spec.cfgs {
        let sync_blocks = cfg
            .blocks
            .iter()
            .filter(|b| {
                matches!(
                    b.nbtd,
                    Nbtd::Branch { needs_sync: true, .. } | Nbtd::Switch { needs_sync: true, .. }
                )
            })
            .count();
        println!(
            "  {:<18} {:>3} blocks, {:>3} edges, {} indirect targets, {} sync conditions",
            cfg.name,
            cfg.blocks.len(),
            cfg.edge_count(),
            cfg.fn_targets.len(),
            sync_blocks,
        );
    }

    println!("\nCommand access table ({} entries):", spec.cmd_table.len());
    for entry in spec.cmd_table.entries.iter().take(12) {
        println!(
            "  cmd {:#04x} @ decision {:>10}: {} accessible blocks",
            entry.cmd,
            entry.decision,
            entry.allowed.len()
        );
    }
    if spec.cmd_table.len() > 12 {
        println!("  … {} more", spec.cmd_table.len() - 12);
    }

    println!(
        "\nTraining: {} rounds, reduction merged {} branches, {} sync points / {} pure conditions",
        spec.stats.training_rounds,
        spec.stats.reduce.merged_branches,
        spec.stats.recovery.sync_points,
        spec.stats.recovery.pure_conditions,
    );

    let json = spec.to_json();
    println!("\nSerialized specification: {} bytes of JSON", json.len());
    let roundtrip = sedspec::spec::ExecutionSpecification::from_json(&json).unwrap();
    assert_eq!(roundtrip, spec);
    println!("round-trip: OK");
}
