//! Regenerates the committed fuzz regression corpus.
//!
//! ```text
//! cargo run --release --example regen_fuzz_corpus
//! ```
//!
//! For every device this runs a short coverage-guided campaign against
//! the patched build and writes the minimized corpus plus every
//! divergence witness under `ci/fuzz-corpus/<device>/`, then adds one
//! artifact per CVE PoC against its vulnerable build (the
//! quarantine-class divergences CI re-asserts). Output is a pure
//! function of the constants below — rerunning produces identical
//! files, so a diff under `ci/fuzz-corpus/` always means device,
//! spec-construction or checker semantics actually changed.

use std::path::Path;

use sedspec_devices::DeviceKind;
use sedspec_fuzz::{kind_slug, run_campaign, trained_compiled, Artifact, FuzzOptions, Oracle};
use sedspec_workloads::attacks::{poc, Cve};

/// Campaign seed for every device (the CI smoke uses the same).
const SEED: u64 = 7;

/// Round budget per device campaign: enough for full ES-block coverage
/// on every current spec while keeping regeneration under a minute.
const ROUNDS: u64 = 4000;

fn main() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("ci/fuzz-corpus");
    for kind in DeviceKind::all() {
        let slug = kind_slug(kind);
        let dir = root.join(slug);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create corpus dir");

        let opts = FuzzOptions {
            device: kind,
            version: sedspec_devices::QemuVersion::Patched,
            seed: SEED,
            rounds: ROUNDS,
            corpus_dir: None,
        };
        let out = run_campaign(&opts).expect("campaign");
        for (name, body) in out.export_artifacts() {
            std::fs::write(dir.join(&name), body).expect("write artifact");
        }
        println!(
            "{slug}: {} corpus entries, {} findings, coverage {}/{}",
            out.corpus.len(),
            out.findings.len(),
            out.report.covered_blocks,
            out.report.total_blocks
        );

        for cve in Cve::all_with_known_miss() {
            let p = poc(cve);
            if p.device != kind {
                continue;
            }
            let oracle =
                Oracle::new(p.device, p.qemu_version, trained_compiled(p.device, p.qemu_version));
            let (expected, _) = oracle.run(&p.steps);
            let artifact = Artifact {
                device: slug.to_string(),
                version: p.qemu_version.to_string(),
                steps: p.steps,
                expected,
            };
            let name = format!("cve-{}.json", cve.id().to_ascii_lowercase());
            std::fs::write(dir.join(&name), artifact.to_json()).expect("write cve artifact");
            println!("  {name}: {:?}", artifact.expected.class);
        }
    }
}
