//! Static audit of trained specs for all five devices.
//!
//! Trains a benign spec per device (patched behaviour), runs the full
//! `sedspec-analysis` pass pipeline against the device build and the
//! compiled form, and prints a per-device command-coverage table plus a
//! findings summary. Also demonstrates the analyzer *rediscovering* the
//! CVE-2016-1568 analog: the same audit against the vulnerable SCSI
//! build flags the ESP RESET command for leaving transfer state stale.
//!
//! Run with: `cargo run --release --example spec_audit`

use sedspec::compiled::CompiledSpec;
use sedspec::pipeline::{train_script, TrainingConfig};
use sedspec_analysis::{analyze, AnalysisContext, Severity};
use sedspec_devices::{build_device, DeviceKind, QemuVersion};
use sedspec_vmm::VmContext;
use sedspec_workloads::generators::training_suite;

fn main() {
    println!("== static spec audit: five devices, benign training, patched builds ==\n");
    println!(
        "{:<10} {:>6} {:>6} {:>8} {:>7} {:>9} {:>9}",
        "device", "blocks", "edges", "cmds", "trained", "errors", "warnings"
    );
    for kind in DeviceKind::all() {
        let mut device = build_device(kind, QemuVersion::Patched);
        let mut ctx = VmContext::new(0x200000, 8192);
        let suite = training_suite(kind, 60, 0x7a11);
        let spec = train_script(&mut device, &mut ctx, &suite, &TrainingConfig::default())
            .expect("training produced rounds");
        let compiled = CompiledSpec::compile(std::sync::Arc::new(spec.clone()));
        let report = analyze(&spec, &AnalysisContext::full(&device, &compiled));
        let static_cmds: usize = report.coverage.iter().map(|c| c.static_cmds).sum();
        let trained_cmds: usize = report.coverage.iter().map(|c| c.trained_cmds).sum();
        println!(
            "{:<10} {:>6} {:>6} {:>8} {:>7} {:>9} {:>9}",
            kind.name(),
            spec.block_count(),
            spec.edge_count(),
            static_cmds,
            trained_cmds,
            report.error_count(),
            report.warning_count()
        );
        for c in &report.coverage {
            if !c.untrained.is_empty() {
                let vals: Vec<String> = c.untrained.iter().map(|v| format!("{v:#x}")).collect();
                println!("           blind spot at '{}': {}", c.label, vals.join(", "));
            }
        }
        for d in report.diagnostics.iter().filter(|d| d.severity >= Severity::Warning) {
            if d.code != "SA201" {
                println!("           {}", d.render());
            }
        }
        assert!(
            !report.has_errors(),
            "benign spec must be error-clean:\n{}",
            report.render_human()
        );
    }

    println!("\n== rediscovering CVE-2016-1568 (ESP RESET leaves transfer state stale) ==\n");
    let mut device = build_device(DeviceKind::Scsi, QemuVersion::V2_4_0);
    let mut ctx = VmContext::new(0x200000, 8192);
    let suite = training_suite(DeviceKind::Scsi, 60, 0x7a11);
    let spec = train_script(&mut device, &mut ctx, &suite, &TrainingConfig::default())
        .expect("training produced rounds");
    let report = analyze(&spec, &AnalysisContext::for_device(&device));
    let findings = report.with_code("SA203");
    assert!(!findings.is_empty(), "the vulnerable build must trip SA203");
    for d in findings {
        println!("  {}", d.render());
    }
    println!("\nThe patched build reinitializes pending_op/xfer_count in RESET; this audit");
    println!("of v2.4.0 surfaces the omission statically, before any PoC runs.");
}
