//! Measures SEDSpec's runtime overhead on storage and network devices
//! (the workloads behind Figures 3–5) and prints a compact report.
//!
//! ```text
//! cargo run --release --example overhead_report
//! ```

use sedspec::pipeline::{train_script, TrainingConfig};
use sedspec_repro::devices::{build_device, DeviceKind, QemuVersion};
use sedspec_repro::vmm::VmContext;
use sedspec_repro::workloads::generators::training_suite;
use sedspec_repro::workloads::perf::{
    network_bench, ping_bench, storage_bench, IoDir, NetDir, Transport,
};

fn spec_for(kind: DeviceKind) -> sedspec::spec::ExecutionSpecification {
    let mut device = build_device(kind, QemuVersion::Patched);
    let mut ctx = VmContext::new(0x200000, 8192);
    let suite = training_suite(kind, 60, 0x7a11);
    train_script(&mut device, &mut ctx, &suite, &TrainingConfig::default())
        .expect("training succeeds")
}

fn main() {
    println!("{:<10} {:>14} {:>14} {:>10}", "device", "native MB/s", "SEDSpec MB/s", "overhead");
    for kind in DeviceKind::all().into_iter().filter(|k| k.is_storage()) {
        let spec = spec_for(kind);
        let raw = storage_bench(kind, None, IoDir::Read, 64 << 10, 1 << 20);
        let enf = storage_bench(kind, Some(spec), IoDir::Read, 64 << 10, 1 << 20);
        println!(
            "{:<10} {:>14.1} {:>14.1} {:>9.1}%",
            kind.to_string(),
            raw.throughput() / 1e6,
            enf.throughput() / 1e6,
            (1.0 - enf.throughput() / raw.throughput()) * 100.0
        );
    }

    let spec = spec_for(DeviceKind::Pcnet);
    let raw = network_bench(None, Transport::Udp, NetDir::Downstream, 200);
    let enf = network_bench(Some(spec.clone()), Transport::Udp, NetDir::Downstream, 200);
    println!(
        "{:<10} {:>12.1}Mb {:>12.1}Mb {:>9.1}%",
        "PCNet rx",
        raw.throughput() * 8.0 / 1e6,
        enf.throughput() * 8.0 / 1e6,
        (1.0 - enf.throughput() / raw.throughput()) * 100.0
    );

    let raw_ping = ping_bench(None, 100);
    let enf_ping = ping_bench(Some(spec), 100);
    println!(
        "\nping: native {:.2} us, SEDSpec {:.2} us (+{:.1}%)",
        raw_ping.latency_ns() / 1e3,
        enf_ping.latency_ns() / 1e3,
        (enf_ping.latency_ns() / raw_ping.latency_ns() - 1.0) * 100.0
    );
}
