//! Measures SEDSpec's runtime overhead on storage and network devices
//! (the workloads behind Figures 3–5) and prints a compact report.
//!
//! ```text
//! cargo run --release --example overhead_report
//! ```

use std::time::Instant;

use sedspec::checker::{EsChecker, NoSync};
use sedspec::collect::TrainStep;
use sedspec::pipeline::{train_script, TrainingConfig};
use sedspec_repro::devices::{build_device, DeviceKind, QemuVersion};
use sedspec_repro::vmm::{IoDirection, IoRequest, VmContext};
use sedspec_repro::workloads::generators::training_suite;
use sedspec_repro::workloads::perf::{
    network_bench, ping_bench, storage_bench, IoDir, NetDir, Transport,
};

fn spec_for(kind: DeviceKind) -> sedspec::spec::ExecutionSpecification {
    let mut device = build_device(kind, QemuVersion::Patched);
    let mut ctx = VmContext::new(0x200000, 8192);
    let suite = training_suite(kind, 60, 0x7a11);
    train_script(&mut device, &mut ctx, &suite, &TrainingConfig::default())
        .expect("training succeeds")
}

/// First trained read that the device routes: a benign steady-state
/// round to repeat when timing the bare specification walk.
fn probe_for(kind: DeviceKind) -> IoRequest {
    let device = build_device(kind, QemuVersion::Patched);
    training_suite(kind, 2, 0x7a11)
        .into_iter()
        .flatten()
        .find_map(|step| match step {
            TrainStep::Io(req)
                if req.direction == IoDirection::Read && device.route(&req).is_some() =>
            {
                Some(req)
            }
            _ => None,
        })
        .expect("training suite contains a routable read")
}

/// Median ns/op over `samples` batches of `iters` calls.
fn median_ns(samples: usize, iters: u32, mut op: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                op();
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    times[times.len() / 2]
}

/// Per-round specification walk cost: the interpreted reference walk
/// (clones the shadow each round) against the compiled hot path
/// (in-place journaled walk + rollback). The same comparison behind
/// `sedspec bench-checker` / BENCH_checker.json, in miniature.
fn walk_cost_report() {
    println!("\n{:<10} {:>16} {:>14} {:>9}", "device", "interpreted ns", "compiled ns", "speedup");
    for kind in DeviceKind::all() {
        let spec = spec_for(kind);
        let device = build_device(kind, QemuVersion::Patched);
        let req = probe_for(kind);
        let pi = device.route(&req).expect("probe routes");
        let interp = EsChecker::new(spec.clone(), device.control.clone());
        let interp_ns = median_ns(9, 2000, || drop(interp.walk_round(pi, &req, &mut NoSync)));
        let mut fast = EsChecker::new(spec, device.control.clone());
        let compiled_ns = median_ns(9, 2000, || {
            fast.walk_round_fast(pi, &req, &mut NoSync);
            fast.abort_round();
        });
        println!(
            "{:<10} {:>16.1} {:>14.1} {:>8.2}x",
            kind.to_string(),
            interp_ns,
            compiled_ns,
            interp_ns / compiled_ns
        );
    }
}

fn main() {
    println!("{:<10} {:>14} {:>14} {:>10}", "device", "native MB/s", "SEDSpec MB/s", "overhead");
    for kind in DeviceKind::all().into_iter().filter(|k| k.is_storage()) {
        let spec = spec_for(kind);
        let raw = storage_bench(kind, None, IoDir::Read, 64 << 10, 1 << 20);
        let enf = storage_bench(kind, Some(spec), IoDir::Read, 64 << 10, 1 << 20);
        println!(
            "{:<10} {:>14.1} {:>14.1} {:>9.1}%",
            kind.to_string(),
            raw.throughput() / 1e6,
            enf.throughput() / 1e6,
            (1.0 - enf.throughput() / raw.throughput()) * 100.0
        );
    }

    let spec = spec_for(DeviceKind::Pcnet);
    let raw = network_bench(None, Transport::Udp, NetDir::Downstream, 200);
    let enf = network_bench(Some(spec.clone()), Transport::Udp, NetDir::Downstream, 200);
    println!(
        "{:<10} {:>12.1}Mb {:>12.1}Mb {:>9.1}%",
        "PCNet rx",
        raw.throughput() * 8.0 / 1e6,
        enf.throughput() * 8.0 / 1e6,
        (1.0 - enf.throughput() / raw.throughput()) * 100.0
    );

    let raw_ping = ping_bench(None, 100);
    let enf_ping = ping_bench(Some(spec), 100);
    println!(
        "\nping: native {:.2} us, SEDSpec {:.2} us (+{:.1}%)",
        raw_ping.latency_ns() / 1e3,
        enf_ping.latency_ns() / 1e3,
        (enf_ping.latency_ns() / raw_ping.latency_ns() - 1.0) * 100.0
    );

    walk_cost_report();
}
